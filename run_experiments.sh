#!/bin/sh
# Regenerates every table and figure of the paper into results/.
# Preflight: build + full test suite + chaos suite must be green before
# burning hours on experiment runs (and it produces target/release).
sh "$(dirname "$0")/scripts/check.sh" || exit 1

# A wired bench that silently produces no output file is a broken
# harness, not a slow one: fail the whole run loudly.
require_out() {
    if [ ! -s "$1" ]; then
        echo "ERROR: bench produced no output file: $1" >&2
        exit 1
    fi
}

set -x
B=./target/release
$B/table1_p2p --ops 1000 --trace results/BENCH_trace.json > results/table1.txt 2>&1
require_out results/BENCH_trace.json
$B/table2_reduce --procs 64 --ops 200 --check-shape --trace results/BENCH_trace_reduce.json > results/table2.txt 2>&1
require_out results/BENCH_trace_reduce.json
$B/bench_coll --assert --out results/BENCH_coll.json > results/bench_coll.txt 2>&1
require_out results/BENCH_coll.json
$B/fig1_dwi_growth --render              > results/fig1.txt   2>&1
$B/fig3_renders                          > results/fig3.txt   2>&1
$B/fig4_resize                           > results/fig4.txt   2>&1
$B/fig5_mandelbulb_weak --max-servers 8 --grid 20 --iters 6 > results/fig5.txt 2>&1
$B/fig6_grayscott_strong --max-servers 8 --grid 24 --clients 4 --iters 5 > results/fig6.txt 2>&1
$B/fig7_dwi_scaling                      > results/fig7.txt   2>&1
$B/fig8_frameworks --clients 8 --servers 8 --blocks-per-client 4 --iters 6 --grid 20 > results/fig8.txt 2>&1
$B/fig9_elastic_mandelbulb               > results/fig9.txt   2>&1
$B/fig10_elastic_dwi                     > results/fig10.txt  2>&1
$B/ablation_2pc                          > results/ablation_2pc.txt 2>&1
$B/bench_store --out results/BENCH_store.json > results/bench_store.txt 2>&1
require_out results/BENCH_store.json
$B/bench_recovery --out results/BENCH_recovery.json > results/bench_recovery.txt 2>&1
require_out results/BENCH_recovery.json
$B/bench_codec --assert --out results/BENCH_codec.json > results/bench_codec.txt 2>&1
require_out results/BENCH_codec.json
$B/bench_tenant --assert --out results/BENCH_tenant.json > results/bench_tenant.txt 2>&1
require_out results/BENCH_tenant.json
$B/bench_trigger --assert --out results/BENCH_trigger.json > results/bench_trigger.txt 2>&1
require_out results/BENCH_trigger.json
echo ALL_DONE
