//! Offline shim for `criterion`: the API surface the bench files use, with
//! a deliberately small measurement loop (a handful of timed iterations and
//! a mean) instead of criterion's statistical machinery. Good enough to keep
//! `cargo bench` runnable and to show relative numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark samples for (wall time).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _c: self,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&id.to_string(), 20, None, &mut f);
        self
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up.
        black_box(f());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench(label: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: TARGET_SAMPLE_TIME.min(Duration::from_millis(20) * sample_size as u32),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let mut line = format!("{label:<50} {:>12.3?} ({} samples)", mean, b.samples.len());
    if let Some(Throughput::Bytes(n)) = throughput {
        let gib_s = n as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
        line.push_str(&format!("  {gib_s:.2} GiB/s"));
    }
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
