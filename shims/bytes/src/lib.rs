//! Offline shim for `bytes`: a cheaply cloneable, sliceable `Bytes` backed
//! by `Arc<Vec<u8>>`, a `BytesMut` builder, and the `Buf`/`BufMut` traits at
//! the granularity this workspace uses them.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning and slicing are
/// O(1) and share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]` so codecs can
/// consume a slice in place via `(&mut slice).advance(n)`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append-only write sink with little-endian put helpers.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}
