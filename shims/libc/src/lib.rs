//! Offline shim for `libc`: just the declarations `hpcsim::cpu` needs to
//! read the per-thread CPU clock on Linux.

#![allow(non_camel_case_types)]

pub type time_t = i64;
pub type c_long = i64;
pub type c_int = i32;
pub type clockid_t = i32;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}
