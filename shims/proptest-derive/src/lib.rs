//! Offline shim for `proptest-derive`: `#[derive(Arbitrary)]`.
//!
//! Hand-rolled token parsing (no syn/quote in this container). Field
//! types are never parsed — generated code constructs the value with
//! `Arbitrary::arbitrary(__rng)` in each field position and lets type
//! inference do the rest. Generics and attributes are not supported;
//! none of the derive sites in this workspace use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Arbitrary, attributes(proptest))]
pub fn derive_arbitrary(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    // Skip outer attributes and visibility.
    while pos < toks.len() {
        match &toks[pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => pos += 2,
            TokenTree::Ident(i) if i.to_string() == "pub" => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = toks.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("Arbitrary: expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match toks.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("Arbitrary: expected type name".into()),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(pos) {
        if p.as_char() == '<' {
            return Err(format!("Arbitrary shim: generic type `{name}` not supported"));
        }
    }

    let body = match kind.as_str() {
        "struct" => {
            let ctor = match toks.get(pos) {
                Some(TokenTree::Group(g)) => constructor(&name, &parse_fields(g)?),
                _ => format!("{name}"), // unit struct `struct X;`
            };
            ctor
        }
        "enum" => {
            let variants = match toks.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g)?
                }
                _ => return Err("Arbitrary: expected enum body".into()),
            };
            if variants.is_empty() {
                return Err(format!("Arbitrary: enum `{name}` has no variants"));
            }
            let n = variants.len();
            let mut arms = String::new();
            for (i, (vname, vfields)) in variants.iter().enumerate() {
                let ctor = constructor(&format!("{name}::{vname}"), vfields);
                if i + 1 == n {
                    arms.push_str(&format!("_ => {ctor},\n"));
                } else {
                    arms.push_str(&format!("{i}usize => {ctor},\n"));
                }
            }
            format!("match ::proptest::test_runner::pick(__rng, {n}usize) {{ {arms} }}")
        }
        other => return Err(format!("Arbitrary: cannot derive for `{other}`")),
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl ::proptest::arbitrary::Arbitrary for {name} {{\n\
             fn arbitrary(__rng: &mut ::proptest::test_runner::TestRng) -> Self {{\n\
                 #[allow(unused_imports)]\n\
                 use ::proptest::arbitrary::Arbitrary as __Arb;\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse()
        .map_err(|e| format!("Arbitrary shim: generated code failed to parse: {e:?}"))
}

fn constructor(path: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: __Arb::arbitrary(__rng)"))
                .collect();
            format!("{path} {{ {} }}", inits.join(", "))
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n).map(|_| "__Arb::arbitrary(__rng)".into()).collect();
            format!("{path}({})", inits.join(", "))
        }
    }
}

/// Parses a struct/variant field group: `{ a: T, b: U }` or `(T, U)`.
fn parse_fields(g: &proc_macro::Group) -> Result<Fields, String> {
    match g.delimiter() {
        Delimiter::Brace => Ok(Fields::Named(named_field_names(g)?)),
        Delimiter::Parenthesis => Ok(Fields::Tuple(count_top_level_types(g))),
        _ => Err("Arbitrary: unexpected field delimiter".into()),
    }
}

fn named_field_names(g: &proc_macro::Group) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        // Skip attributes and visibility.
        while pos < toks.len() {
            match &toks[pos] {
                TokenTree::Punct(p) if p.as_char() == '#' => pos += 2,
                TokenTree::Ident(i) if i.to_string() == "pub" => {
                    pos += 1;
                    if let Some(TokenTree::Group(gg)) = toks.get(pos) {
                        if gg.delimiter() == Delimiter::Parenthesis {
                            pos += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if pos >= toks.len() {
            break;
        }
        let name = match &toks[pos] {
            TokenTree::Ident(i) => i.to_string(),
            t => return Err(format!("Arbitrary: expected field name, got `{t}`")),
        };
        names.push(name);
        pos += 1; // field name
        pos += 1; // ':'
        // Skip the type up to a top-level comma.
        let mut depth = 0i32;
        while pos < toks.len() {
            match &toks[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    Ok(names)
}

fn count_top_level_types(g: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut trailing = true; // whether the last top-level token was a comma
    for t in &toks {
        trailing = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing = true;
            }
            _ => {}
        }
    }
    if trailing {
        count -= 1;
    }
    count
}

/// Parses enum variants: name + optional field group, comma separated.
fn parse_variants(g: &proc_macro::Group) -> Result<Vec<(String, Fields)>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        // Skip attributes (e.g. doc comments).
        while pos + 1 < toks.len() {
            if let TokenTree::Punct(p) = &toks[pos] {
                if p.as_char() == '#' {
                    pos += 2;
                    continue;
                }
            }
            break;
        }
        if pos >= toks.len() {
            break;
        }
        let name = match &toks[pos] {
            TokenTree::Ident(i) => i.to_string(),
            t => return Err(format!("Arbitrary: expected variant name, got `{t}`")),
        };
        pos += 1;
        let fields = match toks.get(pos) {
            Some(TokenTree::Group(gg)) => {
                let f = parse_fields(gg)?;
                pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip discriminant (`= expr`) if present, then the comma.
        while pos < toks.len() {
            if let TokenTree::Punct(p) = &toks[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        out.push((name, fields));
    }
    Ok(out)
}
