//! Offline shim for `proptest`: the macro/strategy surface this workspace
//! uses, re-implemented as a small deterministic framework.
//!
//! Differences from real proptest, on purpose:
//! - no shrinking — a failing case reports its seed so it can be replayed;
//! - case seeds derive from a fixed base hashed with the test name, so
//!   every run explores the same inputs (bit-for-bit reproducible in CI);
//! - regex string strategies generate arbitrary printable strings rather
//!   than honoring the pattern (the only pattern used here is `\PC*`).

pub mod test_runner {
    pub use rand::rngs::SmallRng as TestRng;
    use rand::{Rng, SeedableRng};

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration. Only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Uniform index in `0..n` (helper for derived `Arbitrary` enums).
    pub fn pick(rng: &mut TestRng, n: usize) -> usize {
        rng.random_range(0..n.max(1))
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `config.cases` generated cases of `f`, deterministically.
    pub fn run_test<F>(config: ProptestConfig, name: &str, f: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name) ^ 0x9E37_79B9_7F4A_7C15;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        let max_attempts = config.cases as u64 * 50 + 100;
        while passed < config.cases {
            attempt += 1;
            if attempt > max_attempts {
                panic!(
                    "proptest shim: test `{name}` rejected too many cases \
                     ({passed}/{} passed after {attempt} attempts)",
                    config.cases
                );
            }
            let seed = base.wrapping_add(attempt.wrapping_mul(0xA076_1D64_78BD_642F));
            let mut rng = TestRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest shim: test `{name}` failed at case {} (seed {seed:#x}):\n{msg}",
                    passed + 1
                ),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values. Unlike real proptest there is no value tree
    /// and no shrinking: `generate` produces one value per call.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { strategy: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                strategy: self,
                f,
                whence,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.strategy.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.strategy.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("proptest shim: prop_filter `{}` rejected 1000 values", self.whence)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    // Integer range strategies.
    macro_rules! int_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.random::<f32>() * (self.end - self.start)
        }
    }

    // Tuples of strategies generate tuples of values.
    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    }

    /// A printable char, mostly ASCII with some multibyte coverage.
    pub(crate) fn printable_char(rng: &mut TestRng) -> char {
        if rng.random_range(0..8u32) == 0 {
            // Multibyte: pick from a few safe non-ASCII blocks.
            loop {
                let cp = rng.random_range(0xA1u32..0x2FA0);
                if let Some(c) = char::from_u32(cp) {
                    if !c.is_control() {
                        return c;
                    }
                }
            }
        } else {
            char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap()
        }
    }

    /// Regex patterns are approximated as arbitrary printable strings —
    /// the only pattern used in this workspace is `\PC*` ("any sequence
    /// of printable chars"), which this matches exactly.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.random_range(0..24usize);
            (0..len).map(|_| printable_char(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{printable_char, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A type with a canonical "generate any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            printable_char(rng)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, non-NaN: roundtrip tests compare with `==`.
            let m = rng.random::<f32>() * 2.0 - 1.0;
            let e = rng.random_range(-30i32..30);
            m * 2f32.powi(e)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let m = rng.random::<f64>() * 2.0 - 1.0;
            let e = rng.random_range(-200i32..200);
            m * 2f64.powi(e)
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = rng.random_range(0..16usize);
            (0..len).map(|_| printable_char(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rng.random() {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Vec<T> {
            let len = rng.random_range(0..8usize);
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    macro_rules! tuple_arbitrary {
        ($(($($t:ident),+))+) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )+};
    }

    tuple_arbitrary! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count bound for collection strategies (inclusive lo,
    /// exclusive hi).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    /// Float class strategies (`prop::num::f64::NORMAL | ZERO` style).
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Bitmask of float classes; `|` unions them and the result is
        /// itself a strategy over `f64`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct F64Class(u32);

        pub const NORMAL: F64Class = F64Class(1);
        pub const ZERO: F64Class = F64Class(2);
        pub const SUBNORMAL: F64Class = F64Class(4);
        pub const INFINITE: F64Class = F64Class(8);

        impl ::std::ops::BitOr for F64Class {
            type Output = F64Class;
            fn bitor(self, rhs: F64Class) -> F64Class {
                F64Class(self.0 | rhs.0)
            }
        }

        impl Strategy for F64Class {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                let classes: Vec<u32> = (0..4).filter(|b| self.0 & (1 << b) != 0).collect();
                assert!(!classes.is_empty(), "empty f64 class mask");
                let class = classes[rng.random_range(0..classes.len())];
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                match 1u32 << class {
                    1 => {
                        // Normal: mantissa in [0.5, 1), exponent well inside
                        // the normal range.
                        let m = 0.5 + rng.random::<f64>() * 0.5;
                        let e = rng.random_range(-500i32..500);
                        sign * m * 2f64.powi(e)
                    }
                    2 => sign * 0.0,
                    4 => sign * f64::MIN_POSITIVE * rng.random::<f64>() * 0.5,
                    _ => sign * f64::INFINITY,
                }
            }
        }
    }
}

/// `use proptest::prelude::*` gives tests the `prop::` path prefix.
pub mod prop {
    pub use crate::{collection, num, strategy};
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($a), stringify!($b), __left, __right,
                        ),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+), __left, __right,
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: {} != {} (both: {:?})",
                            stringify!($a), stringify!($b), __left,
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    // ---- internal: iterate test fns ----
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $crate::proptest!(@accum ($cfg) [$(#[$meta])*] $name [] [$($params)*] $body);
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // ---- internal: accumulate (pattern, strategy) pairs ----
    (@accum ($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] [] $body:block) => {
        $crate::proptest!(@emit ($cfg) [$($meta)*] $name [$($acc)*] $body);
    };
    (@accum ($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] [$p:ident in $s:expr, $($rest:tt)*] $body:block) => {
        $crate::proptest!(@accum ($cfg) [$($meta)*] $name [$($acc)* ($p, $s)] [$($rest)*] $body);
    };
    (@accum ($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] [$p:ident in $s:expr] $body:block) => {
        $crate::proptest!(@accum ($cfg) [$($meta)*] $name [$($acc)* ($p, $s)] [] $body);
    };
    (@accum ($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] [$p:ident: $t:ty, $($rest:tt)*] $body:block) => {
        $crate::proptest!(@accum ($cfg) [$($meta)*] $name
            [$($acc)* ($p, $crate::arbitrary::any::<$t>())] [$($rest)*] $body);
    };
    (@accum ($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*] [$p:ident: $t:ty] $body:block) => {
        $crate::proptest!(@accum ($cfg) [$($meta)*] $name
            [$($acc)* ($p, $crate::arbitrary::any::<$t>())] [] $body);
    };
    // ---- internal: emit one test fn ----
    (@emit ($cfg:expr) [$($meta:tt)*] $name:ident [$(($p:ident, $s:expr))*] $body:block) => {
        $($meta)*
        fn $name() {
            $crate::test_runner::run_test($cfg, stringify!($name), |__rng| {
                $(let $p = $crate::strategy::Strategy::generate(&($s), __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result
            });
        }
    };
    // ---- entry points ----
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
