//! Offline shim for `rand` 0.9: `SmallRng`/`StdRng` over xoshiro256++, the
//! `Rng`/`SeedableRng` traits with the `random`/`random_range` method names,
//! and nothing else. Fully deterministic — there is no entropy source in
//! the simulator, every RNG is seeded explicitly.

/// Core RNG state: xoshiro256++ (Blackman & Vigna), seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the 64-bit seed into 256 bits of state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly over its full domain via `Rng::random`.
pub trait Standard: Sized {
    fn sample(rng: &mut Xoshiro256) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut Xoshiro256) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut Xoshiro256) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut Xoshiro256) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut Xoshiro256) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample(rng: &mut Xoshiro256) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample(rng: &mut Xoshiro256) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable via `Rng::random_range`.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Xoshiro256) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Xoshiro256) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + start as i128;
                v as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Xoshiro256) -> f64 {
        self.start + <f64 as Standard>::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut Xoshiro256) -> f32 {
        self.start + <f32 as Standard>::sample(rng) * (self.end - self.start)
    }
}

pub trait Rng {
    fn core(&mut self) -> &mut Xoshiro256;

    fn random<T: Standard>(&mut self) -> T {
        T::sample(self.core())
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self.core())
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    fn next_u64(&mut self) -> u64 {
        self.core().next_u64()
    }
}

pub mod rngs {
    use super::*;

    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl Rng for SmallRng {
        fn core(&mut self) -> &mut Xoshiro256 {
            &mut self.0
        }
    }

    impl Rng for StdRng {
        fn core(&mut self) -> &mut Xoshiro256 {
            &mut self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = r.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }
}
