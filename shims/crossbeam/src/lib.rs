//! Offline shim for `crossbeam` providing the `channel` module surface this
//! workspace uses: MPMC `bounded`/`unbounded` channels with cloneable senders
//! *and* receivers, timeout receives, and a minimal `select!` macro.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel holding at most `cap` messages; `send` blocks when
    /// full. `cap == 0` is treated as capacity 1 (this shim has no
    /// rendezvous channels; nothing in the workspace uses them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug does not require `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self
                            .inner
                            .not_full
                            .wait_timeout(q, Duration::from_millis(50))
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                q = self
                    .inner
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.inner.not_full.notify_all();
            }
        }
    }

    pub use crate::select;
}

/// Minimal `select!`: supports the single-`recv` arm form used in this
/// workspace, which degenerates to a blocking `recv`.
#[macro_export]
macro_rules! select {
    (recv($rx:expr) -> $msg:pat => $body:expr $(,)?) => {{
        let $msg = $rx.recv();
        $body
    }};
}
