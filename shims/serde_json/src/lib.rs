//! Offline shim for `serde_json`: `from_str` and `to_string` only — the
//! surface this workspace uses (pipeline scripts and benches).
//!
//! Deserialization parses the text into the shared self-describing
//! `Content` tree from the serde shim and replays it through
//! `ContentDeserializer`, so struct/enum/option decoding matches what the
//! derive expects. Serialization is a direct single-pass writer.

use serde::__private::{Content, ContentDeserializer};
use serde::de::DeserializeOwned;
use serde::ser::{self, Serialize};
use std::fmt;

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Parses a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.expect_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(JsonSer { out: &mut out })?;
    Ok(out)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonSer<'a> {
    out: &'a mut String,
}

pub struct SeqSer<'a> {
    out: &'a mut String,
    first: bool,
    /// Closing bracket(s) to emit on `end` (tuple variants close `]}`).
    close: &'static str,
}

pub struct MapSer<'a> {
    out: &'a mut String,
    first: bool,
    close: &'static str,
}

impl<'a> ser::Serializer for JsonSer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqSer<'a>;
    type SerializeTuple = SeqSer<'a>;
    type SerializeTupleStruct = SeqSer<'a>;
    type SerializeTupleVariant = SeqSer<'a>;
    type SerializeMap = MapSer<'a>;
    type SerializeStruct = MapSer<'a>;
    type SerializeStructVariant = MapSer<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<()> {
        if !v.is_finite() {
            return Err(Error("non-finite float in JSON".into()));
        }
        self.out.push_str(&format!("{v:?}"));
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        if !v.is_finite() {
            return Err(Error("non-finite float in JSON".into()));
        }
        self.out.push_str(&format!("{v:?}"));
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        escape_into(self.out, v.encode_utf8(&mut [0u8; 4]));
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            ser::SerializeSeq::serialize_element(&mut seq, b)?;
        }
        ser::SerializeSeq::end(seq)
    }
    fn serialize_none(self) -> Result<()> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<()> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(JsonSer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<'a>> {
        self.out.push('[');
        Ok(SeqSer {
            out: self.out,
            first: true,
            close: "]",
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqSer<'a>> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<SeqSer<'a>> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<SeqSer<'a>> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(SeqSer {
            out: self.out,
            first: true,
            close: "]}",
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<'a>> {
        self.out.push('{');
        Ok(MapSer {
            out: self.out,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<MapSer<'a>> {
        self.serialize_map(None)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<MapSer<'a>> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(MapSer {
            out: self.out,
            first: true,
            close: "}}",
        })
    }
}

impl SeqSer<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl ser::SerializeSeq for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.sep();
        value.serialize(JsonSer { out: self.out })
    }
    fn end(self) -> Result<()> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeSeq::end(self)
    }
}

impl MapSer<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl ser::SerializeMap for MapSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        self.sep();
        key.serialize(KeySer { out: self.out })?;
        self.out.push(':');
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(JsonSer { out: self.out })
    }
    fn end(self) -> Result<()> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for MapSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, key: &'static str, value: &T) -> Result<()> {
        self.sep();
        escape_into(self.out, key);
        self.out.push(':');
        value.serialize(JsonSer { out: self.out })
    }
    fn end(self) -> Result<()> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for MapSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, key: &'static str, value: &T) -> Result<()> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeStruct::end(self)
    }
}

/// Serializer for map keys: only string-like keys are representable.
struct KeySer<'a> {
    out: &'a mut String,
}

macro_rules! key_as_string {
    ($($m:ident: $ty:ty),+ $(,)?) => {
        $(
            fn $m(self, v: $ty) -> Result<()> {
                escape_into(self.out, &v.to_string());
                Ok(())
            }
        )+
    };
}

impl<'a> ser::Serializer for KeySer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqSer<'a>;
    type SerializeTuple = SeqSer<'a>;
    type SerializeTupleStruct = SeqSer<'a>;
    type SerializeTupleVariant = SeqSer<'a>;
    type SerializeMap = MapSer<'a>;
    type SerializeStruct = MapSer<'a>;
    type SerializeStructVariant = MapSer<'a>;

    key_as_string!(
        serialize_bool: bool,
        serialize_i8: i8,
        serialize_i16: i16,
        serialize_i32: i32,
        serialize_i64: i64,
        serialize_u8: u8,
        serialize_u16: u16,
        serialize_u32: u32,
        serialize_u64: u64,
    );

    fn serialize_f32(self, _v: f32) -> Result<()> {
        Err(Error("float cannot be a JSON object key".into()))
    }
    fn serialize_f64(self, _v: f64) -> Result<()> {
        Err(Error("float cannot be a JSON object key".into()))
    }
    fn serialize_char(self, v: char) -> Result<()> {
        escape_into(self.out, v.encode_utf8(&mut [0u8; 4]));
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<()> {
        Err(Error("bytes cannot be a JSON object key".into()))
    }
    fn serialize_none(self) -> Result<()> {
        Err(Error("null cannot be a JSON object key".into()))
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        Err(Error("unit cannot be a JSON object key".into()))
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Err(Error("unit cannot be a JSON object key".into()))
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<()> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<()> {
        Err(Error("complex value cannot be a JSON object key".into()))
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<'a>> {
        Err(Error("sequence cannot be a JSON object key".into()))
    }
    fn serialize_tuple(self, _len: usize) -> Result<SeqSer<'a>> {
        Err(Error("tuple cannot be a JSON object key".into()))
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<SeqSer<'a>> {
        Err(Error("tuple cannot be a JSON object key".into()))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<SeqSer<'a>> {
        Err(Error("tuple cannot be a JSON object key".into()))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<'a>> {
        Err(Error("map cannot be a JSON object key".into()))
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<MapSer<'a>> {
        Err(Error("struct cannot be a JSON object key".into()))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<MapSer<'a>> {
        Err(Error("struct cannot be a JSON object key".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let t: (u8, f32) = from_str("[1, 2.5]").unwrap();
        assert_eq!(t, (1, 2.5));
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("42 43").is_err());
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }
}
