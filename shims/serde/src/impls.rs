//! `Serialize`/`Deserialize` impls for std types at the surface the
//! workspace uses.

use crate::de::{self, Deserialize, DeserializeSeed, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap as _, SerializeSeq as _, SerializeTuple as _, Serializer,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! primitive {
    ($ty:ty, $ser:ident, $deser:ident, $visit:ident, $visited:ty, $expect:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: de::Error>(self, v: $visited) -> Result<$ty, E> {
                        <$ty>::try_from(v)
                            .map_err(|_| E::custom(format_args!("{v} out of range for {}", $expect)))
                    }
                }
                deserializer.$deser(V)
            }
        }
    };
}

primitive!(i8, serialize_i8, deserialize_i8, visit_i64, i64, "i8");
primitive!(i16, serialize_i16, deserialize_i16, visit_i64, i64, "i16");
primitive!(i32, serialize_i32, deserialize_i32, visit_i64, i64, "i32");
primitive!(i64, serialize_i64, deserialize_i64, visit_i64, i64, "i64");
primitive!(u8, serialize_u8, deserialize_u8, visit_u64, u64, "u8");
primitive!(u16, serialize_u16, deserialize_u16, visit_u64, u64, "u16");
primitive!(u32, serialize_u32, deserialize_u32, visit_u64, u64, "u32");
primitive!(u64, serialize_u64, deserialize_u64, visit_u64, u64, "u64");

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| de::Error::custom(format_args!("{v} out of range for usize")))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| de::Error::custom(format_args!("{v} out of range for isize")))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(*self)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f32;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("f32")
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<f32, E> {
                Ok(v as f32)
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<f32, E> {
                Ok(v as f32)
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<f32, E> {
                Ok(v as f32)
            }
        }
        deserializer.deserialize_f32(V)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f64;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("f64")
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<f64, E> {
                Ok(v as f64)
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<f64, E> {
                Ok(v as f64)
            }
        }
        deserializer.deserialize_f64(V)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("bool")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(V)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("char")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<char, E> {
                u32::try_from(v)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| E::custom("invalid char code point"))
            }
        }
        deserializer.deserialize_char(V)
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = &'de str;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a borrowed string")
            }
            fn visit_borrowed_str<E: de::Error>(self, v: &'de str) -> Result<&'de str, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_str(V)
    }
}

impl<'de> Deserialize<'de> for &'de [u8] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = &'de [u8];
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("borrowed bytes")
            }
            fn visit_borrowed_bytes<E: de::Error>(self, v: &'de [u8]) -> Result<&'de [u8], E> {
                Ok(v)
            }
            fn visit_borrowed_str<E: de::Error>(self, v: &'de str) -> Result<&'de [u8], E> {
                Ok(v.as_bytes())
            }
        }
        deserializer.deserialize_bytes(V)
    }
}

// ---------------------------------------------------------------------------
// References and unit
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

// ---------------------------------------------------------------------------
// Option
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impls {
    ($($len:expr => ($($n:tt $t:ident)+))+) => {
        $(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tup = serializer.serialize_tuple($len)?;
                    $( tup.serialize_element(&self.$n)?; )+
                    tup.end()
                }
            }

            impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V<$($t),+>(PhantomData<($($t,)+)>);
                    impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                        type Value = ($($t,)+);
                        fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                            write!(f, "a tuple of length {}", $len)
                        }
                        fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                            Ok(($(
                                seq.next_element::<$t>()?
                                    .ok_or_else(|| de::Error::invalid_length($n, "a full tuple"))?,
                            )+))
                        }
                    }
                    deserializer.deserialize_tuple($len, V(PhantomData))
                }
            }
        )+
    };
}

tuple_impls! {
    1 => (0 T0)
    2 => (0 T0 1 T1)
    3 => (0 T0 1 T1 2 T2)
    4 => (0 T0 1 T1 2 T2 3 T3)
    5 => (0 T0 1 T1 2 T2 3 T3 4 T4)
    6 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5)
    7 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6)
    8 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7)
}

// ---------------------------------------------------------------------------
// Arrays
// ---------------------------------------------------------------------------

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut items = Vec::with_capacity(N);
                while items.len() < N {
                    match seq.next_element::<T>()? {
                        Some(v) => items.push(v),
                        None => {
                            return Err(de::Error::invalid_length(
                                items.len(),
                                "a full-length array",
                            ))
                        }
                    }
                }
                items
                    .try_into()
                    .map_err(|_| de::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

// ---------------------------------------------------------------------------
// Vec
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut items = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(v) = seq.next_element::<T>()? {
                    items.push(v);
                }
                Ok(items)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
        {
            type Value = HashMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::new();
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// PhantomData
// ---------------------------------------------------------------------------

impl<T> Serialize for PhantomData<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit_struct("PhantomData")
    }
}

impl<'de, T> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T> Visitor<'de> for V<T> {
            type Value = PhantomData<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(PhantomData)
            }
        }
        deserializer.deserialize_unit_struct("PhantomData", V(PhantomData))
    }
}

// Silence an unused-import lint path: DeserializeSeed is re-exported for the
// derive shim even though this module's impls only use it transitively.
#[allow(unused)]
fn _seed_is_object_safe_enough<'de, S: DeserializeSeed<'de>>(_: S) {}
