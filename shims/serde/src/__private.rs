//! Support machinery for the derive shim: a self-describing `Content`
//! value that internally-tagged enums buffer into and replay out of, plus
//! a seed that decodes enum variant identifiers from either an index or a
//! name.

use crate::de::{
    self, Deserialize, DeserializeSeed, Deserializer, EnumAccess, MapAccess, SeqAccess,
    VariantAccess, Visitor,
};
use std::fmt;
use std::marker::PhantomData;

/// A buffered self-describing value (the subset of the serde data model a
/// human-readable format produces).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = Content;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("any value")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<Content, E> {
                Ok(Content::Bool(v))
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<Content, E> {
                Ok(Content::I64(v))
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<Content, E> {
                Ok(Content::U64(v))
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<Content, E> {
                Ok(Content::F64(v))
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<Content, E> {
                Ok(Content::Str(v.to_owned()))
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<Content, E> {
                Ok(Content::Str(v))
            }
            fn visit_none<E: de::Error>(self) -> Result<Content, E> {
                Ok(Content::Null)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Content, E> {
                Ok(Content::Null)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Content, D::Error> {
                Content::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Content, A::Error> {
                let mut items = Vec::new();
                while let Some(v) = seq.next_element::<Content>()? {
                    items.push(v);
                }
                Ok(Content::Seq(items))
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Content, A::Error> {
                let mut entries = Vec::new();
                while let Some((k, v)) = map.next_entry::<Content, Content>()? {
                    entries.push((k, v));
                }
                Ok(Content::Map(entries))
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// Removes and returns the entry with string key `key` from a buffered map.
pub fn take_content_entry(entries: &mut Vec<(Content, Content)>, key: &str) -> Option<Content> {
    let idx = entries
        .iter()
        .position(|(k, _)| matches!(k, Content::Str(s) if s == key))?;
    Some(entries.remove(idx).1)
}

/// Replays a buffered [`Content`] through the deserialization data model.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E: de::Error> ContentDeserializer<E> {
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

struct ContentSeqAccess<E> {
    iter: std::vec::IntoIter<Content>,
    marker: PhantomData<E>,
}

impl<'de, E: de::Error> SeqAccess<'de> for ContentSeqAccess<E> {
    type Error = E;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, E> {
        match self.iter.next() {
            Some(content) => seed.deserialize(ContentDeserializer::new(content)).map(Some),
            None => Ok(None),
        }
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct ContentMapAccess<E> {
    iter: std::vec::IntoIter<(Content, Content)>,
    pending_value: Option<Content>,
    marker: PhantomData<E>,
}

impl<'de, E: de::Error> MapAccess<'de> for ContentMapAccess<E> {
    type Error = E;
    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>, E> {
        match self.iter.next() {
            Some((k, v)) => {
                self.pending_value = Some(v);
                seed.deserialize(ContentDeserializer::new(k)).map(Some)
            }
            None => Ok(None),
        }
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, E> {
        let v = self
            .pending_value
            .take()
            .ok_or_else(|| E::custom("next_value called before next_key"))?;
        seed.deserialize(ContentDeserializer::new(v))
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct ContentEnumAccess<E> {
    variant: Content,
    payload: Option<Content>,
    marker: PhantomData<E>,
}

impl<'de, E: de::Error> EnumAccess<'de> for ContentEnumAccess<E> {
    type Error = E;
    type Variant = ContentVariantAccess<E>;
    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self::Variant), E> {
        let tag = seed.deserialize(ContentDeserializer::new(self.variant))?;
        Ok((
            tag,
            ContentVariantAccess {
                payload: self.payload,
                marker: PhantomData,
            },
        ))
    }
}

struct ContentVariantAccess<E> {
    payload: Option<Content>,
    marker: PhantomData<E>,
}

impl<'de, E: de::Error> VariantAccess<'de> for ContentVariantAccess<E> {
    type Error = E;
    fn unit_variant(self) -> Result<(), E> {
        Ok(())
    }
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, E> {
        let payload = self.payload.unwrap_or(Content::Null);
        seed.deserialize(ContentDeserializer::new(payload))
    }
    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        match self.payload {
            Some(Content::Seq(items)) => visitor.visit_seq(ContentSeqAccess {
                iter: items.into_iter(),
                marker: PhantomData,
            }),
            _ => Err(E::custom("expected a sequence for tuple variant")),
        }
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        match self.payload {
            Some(Content::Map(entries)) => visitor.visit_map(ContentMapAccess {
                iter: entries.into_iter(),
                pending_value: None,
                marker: PhantomData,
            }),
            _ => Err(E::custom("expected a map for struct variant")),
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        match self.content {
            Content::Null => visitor.visit_unit(),
            Content::Bool(v) => visitor.visit_bool(v),
            Content::U64(v) => visitor.visit_u64(v),
            Content::I64(v) => visitor.visit_i64(v),
            Content::F64(v) => visitor.visit_f64(v),
            Content::Str(v) => visitor.visit_string(v),
            Content::Seq(items) => visitor.visit_seq(ContentSeqAccess {
                iter: items.into_iter(),
                marker: PhantomData,
            }),
            Content::Map(entries) => visitor.visit_map(ContentMapAccess {
                iter: entries.into_iter(),
                pending_value: None,
                marker: PhantomData,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        match self.content {
            Content::Null => visitor.visit_none(),
            content => visitor.visit_some(ContentDeserializer::new(content)),
        }
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        let (variant, payload) = match self.content {
            Content::Str(s) => (Content::Str(s), None),
            Content::Map(mut entries) => {
                if entries.len() != 1 {
                    return Err(E::custom("expected a single-entry map for enum"));
                }
                let (k, v) = entries.remove(0);
                (k, Some(v))
            }
            Content::U64(v) => (Content::U64(v), None),
            _ => return Err(E::custom("invalid content for enum")),
        };
        visitor.visit_enum(ContentEnumAccess {
            variant,
            payload,
            marker: PhantomData,
        })
    }

    fn deserialize_bool<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_i8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_i32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_f64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_char<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_str<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_string<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_unit<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        v: V,
    ) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _: usize, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: usize,
        v: V,
    ) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_map<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        v: V,
    ) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> {
        self.deserialize_any(v)
    }
}

/// Decodes an enum variant identifier, accepting either a numeric index
/// (binary formats) or the variant name (human-readable formats).
pub struct VariantIdSeed {
    pub names: &'static [&'static str],
}

impl<'de> DeserializeSeed<'de> for VariantIdSeed {
    type Value = usize;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<usize, D::Error> {
        struct V {
            names: &'static [&'static str],
        }
        impl<'de> Visitor<'de> for V {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a variant identifier")
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<usize, E> {
                let idx = v as usize;
                if idx < self.names.len() {
                    Ok(idx)
                } else {
                    Err(E::custom(format_args!(
                        "variant index {idx} out of range (max {})",
                        self.names.len()
                    )))
                }
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<usize, E> {
                self.names
                    .iter()
                    .position(|n| *n == v)
                    .ok_or_else(|| E::unknown_variant(v, &[]))
            }
        }
        deserializer.deserialize_identifier(V { names: self.names })
    }
}

/// Decodes a struct field key as an index into `names`; unknown keys map to
/// `None` so the caller can skip them with `IgnoredAny`.
pub struct FieldIdSeed {
    pub names: &'static [&'static str],
}

impl<'de> DeserializeSeed<'de> for FieldIdSeed {
    type Value = Option<usize>;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Option<usize>, D::Error> {
        struct V {
            names: &'static [&'static str],
        }
        impl<'de> Visitor<'de> for V {
            type Value = Option<usize>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a field identifier")
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<Option<usize>, E> {
                let idx = v as usize;
                Ok(if idx < self.names.len() { Some(idx) } else { None })
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<Option<usize>, E> {
                Ok(self.names.iter().position(|n| *n == v))
            }
        }
        deserializer.deserialize_identifier(V { names: self.names })
    }
}
