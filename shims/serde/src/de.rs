//! The deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;

    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }

    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown field `{field}`, expected one of {expected:?}"
        ))
    }

    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format_args!("invalid type: {unexpected}, expected {expected}"))
    }
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A `Deserialize` not borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point (serde's seed abstraction).
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// Receiver of deserialized values, driven by the format.
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool {v}: {}", Expecting(&self))))
    }

    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer {v}: {}", Expecting(&self))))
    }

    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer {v}: {}", Expecting(&self))))
    }

    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected float {v}: {}", Expecting(&self))))
    }

    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}: {}", Expecting(&self))))
    }

    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bytes: {}", Expecting(&self))))
    }

    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected none: {}", Expecting(&self))))
    }

    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom(format_args!("unexpected some: {}", Expecting(&self))))
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected unit: {}", Expecting(&self))))
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom(format_args!(
            "unexpected newtype struct: {}",
            Expecting(&self)
        )))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(format_args!("unexpected sequence: {}", Expecting(&self))))
    }

    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(format_args!("unexpected map: {}", Expecting(&self))))
    }

    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(format_args!("unexpected enum: {}", Expecting(&self))))
    }
}

/// Renders a visitor's `expecting` message for error text.
struct Expecting<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected ")?;
        self.0.expecting(f)
    }
}

/// A data format that can drive a [`Visitor`].
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T)
        -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a primitive into a deserializer of itself (used for
/// variant indices and tags).
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = value::U32Deserializer<E>;
    fn into_deserializer(self) -> value::U32Deserializer<E> {
        value::U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u64 {
    type Deserializer = value::U64Deserializer<E>;
    fn into_deserializer(self) -> value::U64Deserializer<E> {
        value::U64Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for &'de str {
    type Deserializer = value::StrDeserializer<'de, E>;
    fn into_deserializer(self) -> value::StrDeserializer<'de, E> {
        value::StrDeserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for String {
    type Deserializer = value::StringDeserializer<E>;
    fn into_deserializer(self) -> value::StringDeserializer<E> {
        value::StringDeserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

/// Deserializers over single primitive values.
pub mod value {
    use super::*;

    macro_rules! forward_all {
        ($visit:ident, $field:ident $(. $conv:ident ())?) => {
            fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.$visit(self.$field $(. $conv ())?)
            }

            fn deserialize_bool<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_i8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_i16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_i32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_i64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_u8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_u16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_u32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_u64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_f32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_f64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_char<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_str<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_string<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_bytes<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_byte_buf<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_option<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_unit<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_unit_struct<V: Visitor<'de>>(self, _: &'static str, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_newtype_struct<V: Visitor<'de>>(self, _: &'static str, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_seq<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_tuple<V: Visitor<'de>>(self, _: usize, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_tuple_struct<V: Visitor<'de>>(self, _: &'static str, _: usize, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_map<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_struct<V: Visitor<'de>>(self, _: &'static str, _: &'static [&'static str], v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_enum<V: Visitor<'de>>(self, _: &'static str, _: &'static [&'static str], v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_identifier<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
            fn deserialize_ignored_any<V: Visitor<'de>>(self, v: V) -> Result<V::Value, E> { self.deserialize_any(v) }
        };
    }

    pub struct U32Deserializer<E> {
        pub(crate) value: u32,
        pub(crate) marker: PhantomData<E>,
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;
        forward_all!(visit_u32, value);
    }

    pub struct U64Deserializer<E> {
        pub(crate) value: u64,
        pub(crate) marker: PhantomData<E>,
    }

    impl<'de, E: Error> Deserializer<'de> for U64Deserializer<E> {
        type Error = E;
        forward_all!(visit_u64, value);
    }

    pub struct StrDeserializer<'de, E> {
        pub(crate) value: &'de str,
        pub(crate) marker: PhantomData<E>,
    }

    impl<'de, E: Error> Deserializer<'de> for StrDeserializer<'de, E> {
        type Error = E;
        forward_all!(visit_borrowed_str, value);
    }

    pub struct StringDeserializer<E> {
        pub(crate) value: String,
        pub(crate) marker: PhantomData<E>,
    }

    impl<'de, E: Error> Deserializer<'de> for StringDeserializer<E> {
        type Error = E;
        forward_all!(visit_string, value);
    }
}

/// A sink that accepts and discards any single value.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_newtype_struct<D: Deserializer<'de>>(
                self,
                d: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_entry::<IgnoredAny, IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(V)
    }
}
