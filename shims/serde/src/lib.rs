//! Offline shim for `serde`: the serialization/deserialization data model
//! at the surface this workspace uses (the `wire` binary format, the
//! `serde_json` shim, and the hand-rolled `serde_derive` shim).
//!
//! Faithful to real serde where it matters: the 29-method `Serializer`
//! visitor, the `Deserializer`/`Visitor` pairing with seq/map/enum access
//! traits, borrowed-data visits for zero-copy decoding, and
//! `IntoDeserializer` for variant indices. Omitted: 128-bit ints, rc/cell
//! impls, and the exotic corners of the derive attribute language.

pub mod de;
pub mod ser;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod impls;
