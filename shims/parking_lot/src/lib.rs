//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The workspace builds in an environment with no crates.io access, so the
//! handful of external crates it uses are vendored as minimal shims. This one
//! maps the `parking_lot` lock API (no poisoning, `Condvar::wait(&mut guard)`)
//! onto the standard library primitives. Poisoned std locks are recovered
//! transparently, matching parking_lot's panic-neutral behaviour.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while blocking, then put it back — parking_lot waits on `&mut guard`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}
