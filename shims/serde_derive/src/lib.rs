//! Offline shim for `serde_derive`: a hand-rolled derive with no syn/quote
//! dependency. Parses `proc_macro::TokenTree`s directly and emits the impl
//! as a string.
//!
//! Supported shapes — exactly what this workspace derives on: concrete
//! (non-generic) named structs, newtype/tuple structs, and enums with
//! unit/newtype/tuple/struct variants. Supported attributes:
//! `#[serde(tag = "...")]` (internally tagged enums),
//! `#[serde(rename_all = "snake_case"|"lowercase")]`, `#[serde(rename)]`,
//! `#[serde(default)]` and `#[serde(default = "path")]` on fields.
//! Generic types get a `compile_error!` telling you to write the impl by
//! hand. Generated deserializers accept both positional sequences (the
//! `wire` binary format) and string-keyed maps (`serde_json`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let container = match parse_container(input) {
        Ok(c) => c,
        Err(msg) => return compile_error(&msg),
    };
    let code = match mode {
        Mode::Ser => gen_serialize(&container),
        Mode::De => gen_deserialize(&container),
    };
    match code {
        Ok(src) => src
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim derive generated bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Container {
    name: String,
    tag: Option<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Clone)]
struct Field {
    name: String,
    ser_name: String,
    default: Option<DefaultAttr>,
}

#[derive(Clone)]
enum DefaultAttr {
    Std,
    Path(String),
}

struct Variant {
    name: String,
    ser_name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Default)]
struct Attrs {
    tag: Option<String>,
    rename_all: Option<String>,
    rename: Option<String>,
    default: Option<DefaultAttr>,
    unsupported: Option<String>,
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_attrs(cur: &mut Cursor) -> Attrs {
    let mut attrs = Attrs::default();
    while cur.at_punct('#') {
        cur.next();
        let Some(TokenTree::Group(g)) = cur.next() else {
            break;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let is_serde = matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue; // doc comments, #[default], other derives' helpers
        }
        if let Some(TokenTree::Group(args)) = inner.get(1) {
            parse_serde_args(args.stream(), &mut attrs);
        }
    }
    attrs
}

fn parse_serde_args(ts: TokenStream, attrs: &mut Attrs) {
    let mut cur = Cursor::new(ts);
    while let Some(tt) = cur.next() {
        let key = tt.to_string();
        let mut val = None;
        if cur.eat_punct('=') {
            if let Some(TokenTree::Literal(l)) = cur.next() {
                val = Some(unquote(&l.to_string()));
            }
        }
        match key.as_str() {
            "tag" => attrs.tag = val,
            "rename_all" => attrs.rename_all = val,
            "rename" => attrs.rename = val,
            "default" => {
                attrs.default = Some(match val {
                    Some(p) => DefaultAttr::Path(p),
                    None => DefaultAttr::Std,
                })
            }
            "deny_unknown_fields" => {}
            other => attrs.unsupported = Some(other.to_string()),
        }
        cur.eat_punct(',');
    }
}

fn skip_vis(cur: &mut Cursor) {
    if matches!(cur.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        cur.next();
        if matches!(cur.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            cur.next();
        }
    }
}

/// Consumes type tokens up to (not including) a top-level comma. Angle
/// brackets are depth-tracked; delimited groups are atomic token trees.
fn skip_type(cur: &mut Cursor) -> usize {
    let mut depth = 0i32;
    let mut consumed = 0;
    while let Some(tt) = cur.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return consumed,
                _ => {}
            }
        }
        cur.next();
        consumed += 1;
    }
    consumed
}

fn apply_rename(name: &str, rename_all: Option<&str>) -> Result<String, String> {
    match rename_all {
        None => Ok(name.to_string()),
        Some("snake_case") => Ok(to_snake(name)),
        Some("lowercase") => Ok(name.to_lowercase()),
        Some(other) => Err(format!("serde shim derive: unsupported rename_all = {other:?}")),
    }
}

fn to_snake(s: &str) -> String {
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if c.is_uppercase() {
            if i != 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn parse_named_fields(ts: TokenStream, rename_all: Option<&str>) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(ts);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = parse_attrs(&mut cur);
        if let Some(u) = attrs.unsupported {
            return Err(format!(
                "serde shim derive: unsupported field attribute `{u}`; write the impl by hand"
            ));
        }
        skip_vis(&mut cur);
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !cur.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        skip_type(&mut cur);
        cur.eat_punct(',');
        let ser_name = match attrs.rename {
            Some(r) => r,
            None => apply_rename(&name, rename_all)?,
        };
        fields.push(Field {
            name,
            ser_name,
            default: attrs.default,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut cur = Cursor::new(ts);
    let mut n = 0;
    while cur.peek().is_some() {
        let _ = parse_attrs(&mut cur);
        skip_vis(&mut cur);
        if skip_type(&mut cur) > 0 {
            n += 1;
        }
        cur.eat_punct(',');
    }
    n
}

fn parse_variants(ts: TokenStream, rename_all: Option<&str>) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(ts);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let attrs = parse_attrs(&mut cur);
        if let Some(u) = attrs.unsupported {
            return Err(format!(
                "serde shim derive: unsupported variant attribute `{u}`"
            ));
        }
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let payload = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                Payload::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), None)?;
                cur.next();
                Payload::Struct(fields)
            }
            _ => Payload::Unit,
        };
        cur.eat_punct(',');
        let ser_name = match attrs.rename {
            Some(r) => r,
            None => apply_rename(&name, rename_all)?,
        };
        variants.push(Variant {
            name,
            ser_name,
            payload,
        });
    }
    Ok(variants)
}

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let mut cur = Cursor::new(input);
    let cattrs = parse_attrs(&mut cur);
    if let Some(u) = cattrs.unsupported {
        return Err(format!(
            "serde shim derive: unsupported container attribute `{u}`"
        ));
    }
    skip_vis(&mut cur);
    let kw = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if cur.at_punct('<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`; implement Serialize/Deserialize by hand"
        ));
    }
    let rename_all = cattrs.rename_all.as_deref();
    let kind = match kw.as_str() {
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream(), rename_all)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream(), rename_all)?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("serde shim derive: cannot derive for `{other}`")),
    };
    if cattrs.tag.is_some() && !matches!(kind, Kind::Enum(_)) {
        return Err("serde shim derive: tag attribute is only supported on enums".into());
    }
    Ok(Container {
        name,
        tag: cattrs.tag,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(c: &Container) -> Result<String, String> {
    let name = &c.name;
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let mut out = format!(
                "let mut __s = ::serde::ser::Serializer::serialize_struct(__serializer, {name:?}, {})?;\n",
                fields.len()
            );
            for f in fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __s, {:?}, &self.{})?;\n",
                    f.ser_name, f.name
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__s)\n");
            out
        }
        Kind::TupleStruct(1) => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(__serializer, {name:?}, &self.0)\n"
        ),
        Kind::TupleStruct(n) => {
            let mut out = format!(
                "let mut __s = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, {name:?}, {n})?;\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __s, &self.{i})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__s)\n");
            out
        }
        Kind::UnitStruct => {
            format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, {name:?})\n")
        }
        Kind::Enum(variants) => match &c.tag {
            None => gen_serialize_enum_external(name, variants),
            Some(tag) => gen_serialize_enum_tagged(name, tag, variants)?,
        },
    };
    Ok(format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    ))
}

fn gen_serialize_enum_external(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let (vname, sname) = (&v.name, &v.ser_name);
        match &v.payload {
            Payload::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, {name:?}, {idx}u32, {sname:?}),\n"
            )),
            Payload::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__v0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, {name:?}, {idx}u32, {sname:?}, __v0),\n"
            )),
            Payload::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut __s = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, {name:?}, {idx}u32, {sname:?}, {n})?;\n",
                    binds.join(", ")
                );
                for b in &binds {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __s, {b})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeTupleVariant::end(__s)\n},\n");
                arms.push_str(&arm);
            }
            Payload::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __s = ::serde::ser::Serializer::serialize_struct_variant(__serializer, {name:?}, {idx}u32, {sname:?}, {})?;\n",
                    binds.join(", "),
                    fields.len()
                );
                for f in fields {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __s, {:?}, {})?;\n",
                        f.ser_name, f.name
                    ));
                }
                arm.push_str("::serde::ser::SerializeStructVariant::end(__s)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!("match self {{\n{arms}}}\n")
}

fn gen_serialize_enum_tagged(
    name: &str,
    tag: &str,
    variants: &[Variant],
) -> Result<String, String> {
    let mut arms = String::new();
    for v in variants {
        let (vname, sname) = (&v.name, &v.ser_name);
        match &v.payload {
            Payload::Unit => arms.push_str(&format!(
                "{name}::{vname} => {{\n\
                 let mut __s = ::serde::ser::Serializer::serialize_map(__serializer, ::std::option::Option::Some(1))?;\n\
                 ::serde::ser::SerializeMap::serialize_entry(&mut __s, {tag:?}, {sname:?})?;\n\
                 ::serde::ser::SerializeMap::end(__s)\n}},\n"
            )),
            Payload::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __s = ::serde::ser::Serializer::serialize_map(__serializer, ::std::option::Option::Some({}))?;\n\
                     ::serde::ser::SerializeMap::serialize_entry(&mut __s, {tag:?}, {sname:?})?;\n",
                    binds.join(", "),
                    fields.len() + 1
                );
                for f in fields {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeMap::serialize_entry(&mut __s, {:?}, {})?;\n",
                        f.ser_name, f.name
                    ));
                }
                arm.push_str("::serde::ser::SerializeMap::end(__s)\n},\n");
                arms.push_str(&arm);
            }
            Payload::Tuple(_) => {
                return Err(format!(
                    "serde shim derive: tuple variant `{vname}` not supported in internally tagged enum"
                ))
            }
        }
    }
    Ok(format!("match self {{\n{arms}}}\n"))
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Generates `let __f{i} = ...` bindings for `visit_seq`.
fn gen_seq_lets(fields: &[Field], expect: &str) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        let missing = match &f.default {
            None => format!(
                "return ::std::result::Result::Err(::serde::de::Error::invalid_length({i}usize, {expect:?}))"
            ),
            Some(DefaultAttr::Std) => "::std::default::Default::default()".to_string(),
            Some(DefaultAttr::Path(p)) => format!("{p}()"),
        };
        out.push_str(&format!(
            "let __f{i} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::std::option::Option::Some(__v) => __v,\n\
             ::std::option::Option::None => {missing},\n\
             }};\n"
        ));
    }
    out
}

/// Generates the map-mode body: option lets, key-match loop, unwraps.
fn gen_map_body(fields: &[Field], fields_const: &str) -> String {
    let mut opts = String::new();
    let mut arms = String::new();
    let mut unwraps = String::new();
    for (i, f) in fields.iter().enumerate() {
        opts.push_str(&format!("let mut __f{i} = ::std::option::Option::None;\n"));
        arms.push_str(&format!(
            "::std::option::Option::Some({i}usize) => {{\n\
             if __f{i}.is_some() {{ return ::std::result::Result::Err(::serde::de::Error::duplicate_field({:?})); }}\n\
             __f{i} = ::std::option::Option::Some(::serde::de::MapAccess::next_value(&mut __map)?);\n\
             }},\n",
            f.ser_name
        ));
        let missing = match &f.default {
            None => format!(
                "return ::std::result::Result::Err(::serde::de::Error::missing_field({:?}))",
                f.ser_name
            ),
            Some(DefaultAttr::Std) => "::std::default::Default::default()".to_string(),
            Some(DefaultAttr::Path(p)) => format!("{p}()"),
        };
        unwraps.push_str(&format!(
            "let __f{i} = match __f{i} {{\n\
             ::std::option::Option::Some(__v) => __v,\n\
             ::std::option::Option::None => {missing},\n\
             }};\n"
        ));
    }
    let body = format!(
        "{opts}\
         while let ::std::option::Option::Some(__k) = ::serde::de::MapAccess::next_key_seed(&mut __map, ::serde::__private::FieldIdSeed {{ names: {fields_const} }})? {{\n\
         match __k {{\n\
         {arms}\
         _ => {{ let __ig: ::serde::de::IgnoredAny = ::serde::de::MapAccess::next_value(&mut __map)?; let _ = __ig; }}\n\
         }}\n\
         }}\n\
         {unwraps}"
    );
    body
}

fn field_inits(fields: &[Field]) -> String {
    fields
        .iter()
        .enumerate()
        .map(|(i, f)| format!("{}: __f{i}", f.name))
        .collect::<Vec<_>>()
        .join(", ")
}

/// A full `struct __V; impl Visitor` block decoding `constructor { fields }`
/// from either a sequence or a map.
fn gen_struct_visitor(
    visitor: &str,
    value_ty: &str,
    constructor: &str,
    fields: &[Field],
    fields_const: &str,
    expect: &str,
) -> String {
    let seq_lets = gen_seq_lets(fields, expect);
    let map_body = gen_map_body(fields, fields_const);
    let inits = field_inits(fields);
    format!(
        "struct {visitor};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor} {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                 __f.write_str({expect:?})\n\
             }}\n\
             #[allow(unused_mut, unused_variables)]\n\
             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 {seq_lets}\
                 ::std::result::Result::Ok({constructor} {{ {inits} }})\n\
             }}\n\
             #[allow(unused_mut, unused_variables)]\n\
             fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 {map_body}\
                 ::std::result::Result::Ok({constructor} {{ {inits} }})\n\
             }}\n\
         }}\n"
    )
}

fn fields_const_decl(const_name: &str, fields: &[Field]) -> String {
    let names: Vec<String> = fields.iter().map(|f| format!("{:?}", f.ser_name)).collect();
    format!(
        "const {const_name}: &'static [&'static str] = &[{}];\n",
        names.join(", ")
    )
}

fn gen_deserialize(c: &Container) -> Result<String, String> {
    let name = &c.name;
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let consts = fields_const_decl("__FIELDS", fields);
            let visitor = gen_struct_visitor(
                "__Visitor",
                name,
                name,
                fields,
                "__FIELDS",
                &format!("struct {name}"),
            );
            format!(
                "{consts}{visitor}\
                 ::serde::de::Deserializer::deserialize_struct(__deserializer, {name:?}, __FIELDS, __Visitor)\n"
            )
        }
        Kind::TupleStruct(1) => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                     __f.write_str({:?})\n\
                 }}\n\
                 fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(self, __d: __D2) -> ::std::result::Result<Self::Value, __D2::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))\n\
                 }}\n\
                 #[allow(unused_mut)]\n\
                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                     match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                         ::std::option::Option::Some(__v) => ::std::result::Result::Ok({name}(__v)),\n\
                         ::std::option::Option::None => ::std::result::Result::Err(::serde::de::Error::invalid_length(0usize, {:?})),\n\
                     }}\n\
                 }}\n\
             }}\n\
             ::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, {name:?}, __Visitor)\n",
            format!("tuple struct {name}"),
            format!("tuple struct {name}"),
        ),
        Kind::TupleStruct(n) => {
            let expect = format!("tuple struct {name}");
            let mut lets = String::new();
            for i in 0..*n {
                lets.push_str(&format!(
                    "let __f{i} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                     ::std::option::Option::Some(__v) => __v,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(::serde::de::Error::invalid_length({i}usize, {expect:?})),\n\
                     }};\n"
                ));
            }
            let inits: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                         __f.write_str({expect:?})\n\
                     }}\n\
                     #[allow(unused_mut)]\n\
                     fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                         {lets}\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, {name:?}, {n}, __Visitor)\n",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                     __f.write_str({:?})\n\
                 }}\n\
                 fn visit_unit<__E: ::serde::de::Error>(self) -> ::std::result::Result<Self::Value, __E> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             ::serde::de::Deserializer::deserialize_unit_struct(__deserializer, {name:?}, __Visitor)\n",
            format!("unit struct {name}"),
        ),
        Kind::Enum(variants) => match &c.tag {
            None => gen_deserialize_enum_external(name, variants),
            Some(tag) => gen_deserialize_enum_tagged(name, tag, variants)?,
        },
    };
    Ok(format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) -> ::std::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    ))
}

fn gen_deserialize_enum_external(name: &str, variants: &[Variant]) -> String {
    let vnames: Vec<String> = variants.iter().map(|v| format!("{:?}", v.ser_name)).collect();
    let consts = format!(
        "const __VARIANTS: &'static [&'static str] = &[{}];\n",
        vnames.join(", ")
    );
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let arm_body = match &v.payload {
            Payload::Unit => format!(
                "{{ ::serde::de::VariantAccess::unit_variant(__variant)?; ::std::result::Result::Ok({name}::{vname}) }}"
            ),
            Payload::Tuple(1) => format!(
                "::std::result::Result::Ok({name}::{vname}(::serde::de::VariantAccess::newtype_variant(__variant)?))"
            ),
            Payload::Tuple(n) => {
                let expect = format!("tuple variant {name}::{vname}");
                let mut lets = String::new();
                for i in 0..*n {
                    lets.push_str(&format!(
                        "let __f{i} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                         ::std::option::Option::Some(__v) => __v,\n\
                         ::std::option::Option::None => return ::std::result::Result::Err(::serde::de::Error::invalid_length({i}usize, {expect:?})),\n\
                         }};\n"
                    ));
                }
                let inits: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                format!(
                    "{{\n\
                     struct __TV{idx};\n\
                     impl<'de> ::serde::de::Visitor<'de> for __TV{idx} {{\n\
                         type Value = {name};\n\
                         fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                             __f.write_str({expect:?})\n\
                         }}\n\
                         #[allow(unused_mut)]\n\
                         fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                             {lets}\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                         }}\n\
                     }}\n\
                     ::serde::de::VariantAccess::tuple_variant(__variant, {n}, __TV{idx})\n\
                     }}",
                    inits.join(", ")
                )
            }
            Payload::Struct(fields) => {
                let const_name = format!("__VF{idx}");
                let consts = fields_const_decl(&const_name, fields);
                let visitor = gen_struct_visitor(
                    &format!("__SV{idx}"),
                    name,
                    &format!("{name}::{vname}"),
                    fields,
                    &const_name,
                    &format!("struct variant {name}::{vname}"),
                );
                format!(
                    "{{\n{consts}{visitor}\
                     ::serde::de::VariantAccess::struct_variant(__variant, {const_name}, __SV{idx})\n\
                     }}"
                )
            }
        };
        arms.push_str(&format!("{idx}usize => {arm_body},\n"));
    }
    format!(
        "{consts}\
         struct __Visitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                 __f.write_str({:?})\n\
             }}\n\
             fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 let (__idx, __variant) = ::serde::de::EnumAccess::variant_seed(__data, ::serde::__private::VariantIdSeed {{ names: __VARIANTS }})?;\n\
                 match __idx {{\n\
                 {arms}\
                 _ => ::std::unreachable!(),\n\
                 }}\n\
             }}\n\
         }}\n\
         ::serde::de::Deserializer::deserialize_enum(__deserializer, {name:?}, __VARIANTS, __Visitor)\n",
        format!("enum {name}"),
    )
}

fn gen_deserialize_enum_tagged(
    name: &str,
    tag: &str,
    variants: &[Variant],
) -> Result<String, String> {
    let vnames: Vec<String> = variants.iter().map(|v| format!("{:?}", v.ser_name)).collect();
    let consts = format!(
        "const __VARIANTS: &'static [&'static str] = &[{}];\n",
        vnames.join(", ")
    );
    let mut arms = String::new();
    for v in variants {
        let (vname, sname) = (&v.name, &v.ser_name);
        let arm_body = match &v.payload {
            Payload::Unit => format!("::std::result::Result::Ok({name}::{vname})"),
            Payload::Struct(fields) => {
                let mut lets = String::new();
                for (i, f) in fields.iter().enumerate() {
                    let missing = match &f.default {
                        None => format!(
                            "return ::std::result::Result::Err(::serde::de::Error::missing_field({:?}))",
                            f.ser_name
                        ),
                        Some(DefaultAttr::Std) => "::std::default::Default::default()".to_string(),
                        Some(DefaultAttr::Path(p)) => format!("{p}()"),
                    };
                    lets.push_str(&format!(
                        "let __f{i} = match ::serde::__private::take_content_entry(&mut __entries, {:?}) {{\n\
                         ::std::option::Option::Some(__v) => ::serde::de::Deserialize::deserialize(::serde::__private::ContentDeserializer::<__D::Error>::new(__v))?,\n\
                         ::std::option::Option::None => {missing},\n\
                         }};\n",
                        f.ser_name
                    ));
                }
                let inits = field_inits(fields);
                format!(
                    "{{\n{lets}\
                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                     }}"
                )
            }
            Payload::Tuple(_) => {
                return Err(format!(
                    "serde shim derive: tuple variant `{vname}` not supported in internally tagged enum"
                ))
            }
        };
        arms.push_str(&format!("{sname:?} => {arm_body},\n"));
    }
    Ok(format!(
        "{consts}\
         let __content = <::serde::__private::Content as ::serde::de::Deserialize>::deserialize(__deserializer)?;\n\
         let mut __entries = match __content {{\n\
             ::serde::__private::Content::Map(__m) => __m,\n\
             _ => return ::std::result::Result::Err(::serde::de::Error::custom({:?})),\n\
         }};\n\
         let __tag = match ::serde::__private::take_content_entry(&mut __entries, {tag:?}) {{\n\
             ::std::option::Option::Some(::serde::__private::Content::Str(__s)) => __s,\n\
             _ => return ::std::result::Result::Err(::serde::de::Error::missing_field({tag:?})),\n\
         }};\n\
         match __tag.as_str() {{\n\
         {arms}\
         __other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(__other, __VARIANTS)),\n\
         }}\n",
        format!("expected a map for internally tagged enum {name}"),
    ))
}
