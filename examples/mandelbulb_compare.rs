//! Side-by-side: the same Mandelbulb pipeline through Colza with the
//! elastic MoNA communication layer and with the static-MPI baseline
//! (`Colza+MPI`), demonstrating that the dependency-injected layer swap
//! is invisible to the pipeline (paper §II-D, Fig. 5).
//!
//! Run: `cargo run --release --example mandelbulb_compare`

use std::sync::Arc;

use colza::daemon::launch_group;
use colza::{AdminClient, BlockMeta, ColzaClient, CommMode, DaemonConfig};
use margo::MargoInstance;
use na::Fabric;
use sims::mandelbulb::Mandelbulb;

fn main() {
    let servers = 2usize;
    let blocks = 4usize;
    let iterations = 3u64;
    for (mode, label) in [
        (CommMode::Mona, "Colza + MoNA (elastic)"),
        (
            CommMode::MpiStatic(minimpi::Profile::Vendor),
            "Colza + MPI (static baseline)",
        ),
    ] {
        let times = run_once(mode, servers, blocks, iterations);
        println!("{label}:");
        for (i, t) in times.iter().enumerate() {
            let note = if i == 0 { "  (includes pipeline init)" } else { "" };
            println!("  iteration {i}: {}{note}", hpcsim::stats::fmt_ns(*t));
        }
    }
    println!();
    println!("Same pipeline, same data, same API - only the injected");
    println!("communicator differs; execution times are on par (Fig. 5).");
}

fn run_once(mode: CommMode, servers: usize, blocks: usize, iterations: u64) -> Vec<u64> {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!("colza-compare-{mode:?}.addrs"));
    std::fs::remove_file(&conn).ok();
    let mut cfg = DaemonConfig::new(&conn);
    cfg.comm = mode;
    let daemons = launch_group(&cluster, &fabric, servers, 2, 0, &cfg);
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    let times = cluster
        .spawn("sim", 8, move || {
            let margo = MargoInstance::init(&f2);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let script = catalyst::PipelineScript::mandelbulb(256, 192).to_json();
            let view = client.view_from(contact).expect("view");
            admin
                .create_pipeline_on_all(&view, "catalyst", "viz", &script)
                .expect("deploy");
            let handle = client.distributed_handle(contact, "viz").expect("handle");
            let bulb = Mandelbulb {
                dims: [24, 24, 4 * blocks],
                ..Default::default()
            };
            let ctx = hpcsim::current();
            let mut times = Vec::new();
            for iteration in 0..iterations {
                handle.activate(iteration).expect("activate");
                for b in 0..blocks {
                    let payload =
                        colza::codec::dataset_to_bytes(&bulb.generate_block(b, blocks));
                    handle
                        .stage(
                            BlockMeta::new("bulb", b as u64, iteration, payload.len()),
                            &payload,
                        )
                        .expect("stage");
                }
                let before = ctx.now();
                handle.execute(iteration).expect("execute");
                times.push(ctx.now() - before);
                handle.deactivate(iteration).expect("deactivate");
            }
            margo.finalize();
            times
        })
        .join();
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
    times
}
