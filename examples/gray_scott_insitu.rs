//! The Gray–Scott simulation coupled to Colza, the way the paper runs it:
//! the simulation keeps using MPI for its own halo exchanges (unchanged,
//! unlike with Damaris), while each rank stages its slab to the elastic
//! staging area every few steps.
//!
//! Run: `cargo run --release --example gray_scott_insitu
//!       [grid] [clients] [servers]` (defaults 32, 4, 2)
//!
//! Set `COLZA_TRACE=/tmp/gs_trace.json` to record the whole coupled run —
//! halo exchanges, staging RDMA, 2PC, pipeline collectives — as a
//! Chrome-trace timeline viewable at <https://ui.perfetto.dev>.

use std::sync::Arc;

use colza::daemon::launch_group;
use colza::{AdminClient, BlockMeta, ColzaClient, DaemonConfig};
use margo::MargoInstance;
use na::Fabric;
use sims::gray_scott::{GrayScott, GrayScottParams};

fn main() {
    let mut argv = std::env::args().skip(1);
    let grid: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let clients: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let servers: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let steps_per_output = 10usize;
    let outputs = 3u64;

    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let trace_path = std::env::var("COLZA_TRACE").ok();
    if trace_path.is_some() {
        cluster.shared().tracer().set_enabled(true);
    }
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join("colza-grayscott.addrs");
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let daemons = launch_group(&cluster, &fabric, servers, 2, 0, &cfg);
    let contact = daemons[0].address();
    println!("{servers} staging servers up; running Gray-Scott {grid}^3 on {clients} ranks");

    let out = minimpi::MpiWorld::launch(
        &cluster,
        &fabric,
        clients,
        4,
        servers,
        minimpi::Profile::Vendor,
        move |comm| {
            // The simulation's own MPI usage is untouched; Colza's client
            // just shares the endpoint.
            let margo = MargoInstance::from_endpoint(Arc::clone(comm.endpoint()));
            let client = ColzaClient::new(Arc::clone(&margo));
            let rank = comm.rank();
            if rank == 0 {
                let admin = AdminClient::new(Arc::clone(&margo));
                let script = catalyst::PipelineScript::gray_scott(320, 240).to_json();
                let view = client.view_from(contact).expect("view");
                admin
                    .create_pipeline_on_all(&view, "catalyst", "gs", &script)
                    .expect("deploy");
            }
            comm.barrier().unwrap();
            let handle = client.distributed_handle(contact, "gs").expect("handle");

            let mut sim = GrayScott::new(grid, rank, comm.size(), GrayScottParams::default());
            let ctx = hpcsim::current();
            for iteration in 0..outputs {
                // Simulate (with MPI halo exchange), then stage the slab.
                sim.run(steps_per_output, Some(&comm)).expect("simulate");
                if rank == 0 {
                    handle.activate(iteration).expect("activate");
                }
                comm.barrier().unwrap();
                let payload = colza::codec::dataset_to_bytes(&sim.to_dataset());
                handle
                    .stage(
                        BlockMeta::new("gray-scott", rank as u64, iteration, payload.len()),
                        &payload,
                    )
                    .expect("stage");
                comm.barrier().unwrap();
                if rank == 0 {
                    let before = ctx.now();
                    handle.execute(iteration).expect("execute");
                    let span = ctx.now() - before;
                    handle.deactivate(iteration).expect("deactivate");
                    println!(
                        "iteration {iteration}: staged {} ranks, pipeline took {}",
                        comm.size(),
                        hpcsim::stats::fmt_ns(span)
                    );
                }
                comm.barrier().unwrap();
            }
            if rank == 0 {
                handle
                    .fetch_result()
                    .expect("fetch")
                    .map(|bytes| {
                        let img = vizkit::Image::from_bytes(&bytes);
                        let path = std::env::temp_dir().join("gray_scott_insitu.ppm");
                        img.write_ppm(&path).expect("write");
                        println!("final frame -> {}", path.display());
                    });
            }
            margo.finalize();
        },
    );
    drop(out);
    for d in daemons {
        d.stop();
    }
    if let Some(path) = trace_path {
        let snap = cluster.shared().trace_snapshot();
        match std::fs::write(&path, snap.to_chrome_json()) {
            Ok(()) => println!(
                "timeline ({} spans) -> {path} (open at https://ui.perfetto.dev)",
                snap.spans.len()
            ),
            Err(e) => eprintln!("failed to write trace {path}: {e}"),
        }
    }
    std::fs::remove_file(&conn).ok();
}
