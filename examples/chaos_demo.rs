//! Demonstrates the deterministic fault-injection plan and the RPC retry
//! layer at the public API: a client calls an echo server through 20%
//! message loss and prints the injector's fault trace.
//!
//! Run it twice with the same seed and the output is byte-identical —
//! the plan seed fully decides the chaos:
//!
//! ```sh
//! cargo run --release --offline --example chaos_demo
//! COLZA_CHAOS_SEED=7 cargo run --release --offline --example chaos_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use hpcsim::FaultPlan;
use margo::{CallCtx, MargoInstance, RetryConfig};
use na::Fabric;

fn main() {
    let seed = std::env::var("COLZA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let plan = FaultPlan::seeded(seed)
        .with_loss(0.20)
        .with_delay(0.3, 10_000, 80_000)
        .scope_tags(na::tags::RPC_BASE, na::tags::MONA_BASE - 1);
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        faults: plan,
        ..hpcsim::ClusterConfig::aries()
    });
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 1, move || {
        let margo = MargoInstance::init(&f2);
        margo.register("echo", |x: u64, _: &CallCtx| Ok(x + 1));
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let dst = addr_rx.recv().unwrap();

    let f3 = fabric.clone();
    let end_ns = cluster
        .spawn("client", 0, move || {
            let margo = MargoInstance::init(&f3);
            let cfg = RetryConfig {
                per_try_timeout: Duration::from_millis(100),
                deadline: Some(Duration::from_secs(30)),
                ..Default::default()
            };
            for i in 0..20u64 {
                let r: u64 = margo.forward_retry(dst, "echo", &i, &cfg).unwrap();
                assert_eq!(r, i + 1);
            }
            let now = hpcsim::current().now();
            margo.finalize();
            now
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();

    println!("seed {seed}: 20 echo RPCs completed through 20% loss");
    println!("client virtual end time: {end_ns} ns");
    for r in cluster.shared().faults().trace() {
        println!(
            "  {:?} on link {}->{} seq {} (+{} ns)",
            r.kind, r.src, r.dst, r.seq, r.delay_ns
        );
    }
}
