//! Quickstart: the smallest end-to-end Colza session.
//!
//! Starts a simulated cluster, a 2-process staging area, deploys a
//! Catalyst pipeline, stages one data block from a "simulation" process,
//! executes, fetches the rendered image, and scales the staging area up
//! by one server before a second iteration.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use colza::daemon::{launch_group, settle_views};
use colza::{AdminClient, BlockMeta, ColzaClient, ColzaDaemon, DaemonConfig};
use margo::MargoInstance;
use na::Fabric;

fn main() {
    // 1. A simulated cluster (the hpcsim stand-in for a real machine)
    //    and its network fabric.
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    // 2. A staging area of two Colza daemons, bootstrapped through a
    //    connection file exactly as the real deployment does.
    let conn = std::env::temp_dir().join("colza-quickstart.addrs");
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let mut daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();
    println!("staging area up: {:?}", daemons.iter().map(|d| d.address().to_string()).collect::<Vec<_>>());

    // 3. A simulation process: deploys the pipeline, stages a block,
    //    executes, and pulls the rendered image back.
    let f2 = fabric.clone();
    let cfg2 = cfg.clone();
    let (grow_tx, grow_rx) = crossbeam::channel::bounded::<()>(1);
    let (grown_tx, grown_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("simulation", 10, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));

        // Deploy a Mandelbulb isosurface pipeline on every server.
        let script = catalyst::PipelineScript::mandelbulb(320, 240).to_json();
        let view = client.view_from(contact).expect("staging area reachable");
        admin
            .create_pipeline_on_all(&view, "catalyst", "viz", &script)
            .expect("deploy pipeline");

        let handle = client.distributed_handle(contact, "viz").expect("handle");
        let bulb = sims::mandelbulb::Mandelbulb::default();

        for iteration in 0..2u64 {
            if iteration == 1 {
                // Ask the host to grow the staging area mid-run, then
                // deploy the pipeline on the newcomers.
                grow_tx.send(()).unwrap();
                grown_rx.recv().unwrap();
                let view = handle.refresh_view().expect("grown view");
                admin
                    .create_pipeline_on_all(&view, "catalyst", "viz", &script)
                    .expect("deploy on grown view");
                println!("staging area grew to {} servers", view.len());
            }

            handle.activate(iteration).expect("activate (2PC)");
            for block in 0..4u64 {
                let ds = bulb.generate_block(block as usize, 4);
                let payload = colza::codec::dataset_to_bytes(&ds);
                handle
                    .stage(
                        BlockMeta::new("mandelbulb", block, iteration, payload.len()),
                        &payload,
                    )
                    .expect("stage");
            }
            handle.execute(iteration).expect("execute");
            let image = handle
                .fetch_result()
                .expect("fetch")
                .expect("rendered image at the root");
            handle.deactivate(iteration).expect("deactivate");

            let img = vizkit::Image::from_bytes(&image);
            let path = std::env::temp_dir().join(format!("quickstart_iter{iteration}.ppm"));
            img.write_ppm(&path).expect("write image");
            println!(
                "iteration {iteration}: rendered {}x{} image ({:.1}% coverage) -> {}",
                img.width,
                img.height,
                img.coverage() * 100.0,
                path.display()
            );
        }
        margo.finalize();
    });

    // 4. The host grows the staging area when asked (the paper's job-
    //    script trigger).
    grow_rx.recv().unwrap();
    let newcomer = ColzaDaemon::spawn(&cluster, &fabric, 2, cfg2);
    daemons.push(newcomer);
    settle_views(&daemons, 3);
    grown_tx.send(()).unwrap();

    sim.join();
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
    println!("done.");
}
