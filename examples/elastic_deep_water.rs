//! The paper's headline scenario (Fig. 10): the Deep Water Impact proxy
//! feeds a staging area that *grows while the run progresses*, keeping
//! rendering time bounded as the data gets heavier. Also demonstrates
//! scale-down through the admin interface at the end of the run.
//!
//! Run: `cargo run --release --example elastic_deep_water`

use std::sync::Arc;

use colza_repro::colza::daemon::{launch_group, settle_views};
use colza_repro::colza::{AdminClient, BlockMeta, ColzaClient, ColzaDaemon, DaemonConfig};
use colza_repro::margo::MargoInstance;
use colza_repro::na::Fabric;
use colza_repro::sims::dwi::DwiSeries;

fn main() {
    let blocks = 8usize;
    let iterations = 12u64;
    let grow_every = 3u64; // grow by one server every 3 iterations

    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join("colza-elastic-dwi.addrs");
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let mut daemons = launch_group(&cluster, &fabric, 1, 2, 0, &cfg);
    let contact = daemons[0].address();
    println!("starting with 1 staging server; data will outgrow it...");

    let (grow_tx, grow_rx) = crossbeam::channel::bounded::<u64>(4);
    let (grown_tx, grown_rx) = crossbeam::channel::bounded::<Vec<na::Address>>(4);

    let f2 = fabric.clone();
    let sim = cluster.spawn("dwi-proxy", 10, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let script = catalyst::PipelineScript::deep_water_impact(320, 240).to_json();
        let view = client.view_from(contact).expect("view");
        admin
            .create_pipeline_on_all(&view, "catalyst", "dwi", &script)
            .expect("deploy");
        let handle = client.distributed_handle(contact, "dwi").expect("handle");
        let series = DwiSeries::scaled_down(blocks);
        let ctx = hpcsim::current();

        for iteration in 0..iterations {
            if iteration > 0 && iteration % grow_every == 0 {
                grow_tx.send(iteration).unwrap();
                let fresh = grown_rx.recv().expect("grown");
                for addr in &fresh {
                    admin
                        .create_pipeline(*addr, "catalyst", "dwi", &script)
                        .expect("deploy on newcomer");
                }
                handle.refresh_view().expect("refresh");
            }
            handle.activate(iteration).expect("activate");
            let servers = handle.members().len();
            for b in 0..blocks {
                let ds = vizkit::DataSet::UGrid(series.generate_block(iteration + 1, b));
                let cells = ds.num_cells();
                let payload = colza_repro::colza::codec::dataset_to_bytes(&ds);
                let _ = cells;
                handle
                    .stage(
                        BlockMeta::new("dwi", b as u64, iteration, payload.len()),
                        &payload,
                    )
                    .expect("stage");
            }
            let before = ctx.now();
            handle.execute(iteration).expect("execute");
            let span = ctx.now() - before;
            handle.deactivate(iteration).expect("deactivate");
            println!(
                "iteration {iteration:>2}: ~{:>9} cells on {servers} server(s), render {}",
                series.cells_at(iteration + 1),
                hpcsim::stats::fmt_ns(span)
            );
        }

        // Scale down: politely ask the extra servers to leave.
        let view = handle.refresh_view().expect("view");
        for addr in view.iter().skip(1) {
            admin.request_leave(*addr).expect("leave request");
        }
        println!("asked {} server(s) to leave the staging area", view.len() - 1);
        margo.finalize();
    });

    // Host side: serve growth requests.
    loop {
        crossbeam::channel::select! {
            recv(grow_rx) -> msg => match msg {
                Ok(iteration) => {
                    let node = 1 + daemons.len() / 2;
                    let d = ColzaDaemon::spawn(&cluster, &fabric, node, cfg.clone());
                    let fresh = vec![d.address()];
                    daemons.push(d);
                    settle_views(&daemons, daemons.len());
                    println!("  [host] +1 server before iteration {iteration} (now {})", daemons.len());
                    grown_tx.send(fresh).unwrap();
                }
                Err(_) => break,
            }
        }
    }

    sim.join();
    // Daemons asked to leave exit by themselves; stop the rest.
    for d in daemons.drain(..) {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
    println!("done.");
}
