//! Property tests: the staged-dataset codec roundtrips arbitrary grids.

use proptest::prelude::*;
use vizkit::data::{DataArray, ImageData};

fn arb_grid(n: usize) -> impl Strategy<Value = ImageData> {
    proptest::collection::vec(-10.0f32..10.0, n * n * n).prop_map(move |vals| {
        let mut g = ImageData::new([n, n, n]);
        g.point_data.set("f", DataArray::F32(vals));
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dataset_codec_roundtrips_grids(grid in arb_grid(4)) {
        let ds = vizkit::DataSet::Image(grid);
        let bytes = colza::codec::dataset_to_bytes(&ds);
        let back = colza::codec::dataset_from_bytes(&bytes).unwrap();
        let (vizkit::DataSet::Image(a), vizkit::DataSet::Image(b)) = (&ds, &back) else {
            panic!("variant changed");
        };
        prop_assert_eq!(&a.point_data, &b.point_data);
        prop_assert_eq!(a.dims, b.dims);
    }

    #[test]
    fn codec_rejects_garbage_without_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = colza::codec::dataset_from_bytes(&bytes);
    }
}
