//! Property tests: the staged-dataset codec roundtrips arbitrary grids,
//! and every staging codec (DESIGN.md §13) preserves its contract on
//! random payloads — lossless codecs bit-identically, the lossy codec
//! within its error bound, and delta chains of any length.

use bytes::Bytes;
use proptest::prelude::*;
use vizkit::data::{CellType, DataArray, ImageData, PolyData, UnstructuredGrid};

use colza::codec::{self, CodecId, CodecSpec};

fn arb_grid(n: usize) -> impl Strategy<Value = ImageData> {
    proptest::collection::vec(-10.0f32..10.0, n * n * n).prop_map(move |vals| {
        let mut g = ImageData::new([n, n, n]);
        g.point_data.set("f", DataArray::F32(vals));
        g
    })
}

/// An image block with two attribute arrays, like the Gray–Scott export.
fn arb_image_payload() -> impl Strategy<Value = Bytes> {
    (1usize..5, 1usize..5, 1usize..4)
        .prop_flat_map(|(nx, ny, nz)| {
            let n = nx * ny * nz;
            (
                Just([nx, ny, nz]),
                proptest::collection::vec(-100.0f32..100.0, n),
                proptest::collection::vec(-1.0f64..1.0, n),
            )
        })
        .prop_map(|(dims, u, v)| {
            let mut g = ImageData::new(dims);
            g.point_data.set("u", DataArray::F32(u));
            g.point_data.set("v", DataArray::F64(v));
            codec::dataset_to_bytes(&vizkit::DataSet::Image(g))
        })
}

/// A tetrahedral unstructured grid with point and cell attributes.
fn arb_ugrid_payload() -> impl Strategy<Value = Bytes> {
    (1usize..6)
        .prop_flat_map(|cells| {
            let pts = cells * 4;
            (
                Just(cells),
                proptest::collection::vec(-10.0f32..10.0, pts * 3),
                proptest::collection::vec(-10.0f32..10.0, pts),
                proptest::collection::vec(-10.0f64..10.0, cells),
            )
        })
        .prop_map(|(cells, coords, pd, cd)| {
            let mut g = UnstructuredGrid::new();
            for c in coords.chunks_exact(3) {
                g.points.push([c[0], c[1], c[2]]);
            }
            for c in 0..cells {
                let base = (c * 4) as u32;
                g.connectivity.extend([base, base + 1, base + 2, base + 3]);
                g.offsets.push(((c + 1) * 4) as u32);
                g.cell_types.push(CellType::Tetra);
            }
            g.point_data.set("p", DataArray::F32(pd));
            g.cell_data.set("c", DataArray::F64(cd));
            codec::dataset_to_bytes(&vizkit::DataSet::UGrid(g))
        })
}

/// A triangle soup with per-point attributes.
fn arb_poly_payload() -> impl Strategy<Value = Bytes> {
    (1usize..6)
        .prop_flat_map(|tris| {
            let pts = tris * 3;
            (
                Just(tris),
                proptest::collection::vec(-10.0f32..10.0, pts * 3),
                proptest::collection::vec(-10.0f32..10.0, pts),
            )
        })
        .prop_map(|(tris, coords, pd)| {
            let mut p = PolyData::new();
            for c in coords.chunks_exact(3) {
                p.add_point([c[0], c[1], c[2]], None);
            }
            for t in 0..tris {
                let b = (t * 3) as u32;
                p.triangles.push([b, b + 1, b + 2]);
            }
            p.point_data.set("s", DataArray::F32(pd));
            codec::dataset_to_bytes(&vizkit::DataSet::Poly(p))
        })
}

/// Any serialized dataset payload.
fn arb_payload() -> impl Strategy<Value = Bytes> {
    prop_oneof![arb_image_payload(), arb_ugrid_payload(), arb_poly_payload()]
}

/// Decode via the round-trip path a server takes: metadata codec id plus
/// the frame (plus the chain base where the codec needs one).
fn roundtrip(spec: CodecSpec, payload: &Bytes) -> Bytes {
    let enc = codec::encode_block(spec, payload, None).expect("encode");
    codec::decode_block(enc.codec, &enc.frame, None).expect("decode")
}

/// Max elementwise |a - b| across all attribute arrays of two serialized
/// datasets of the same shape.
fn max_attr_err(a: &Bytes, b: &Bytes) -> f64 {
    fn attrs(ds: &vizkit::DataSet) -> Vec<&vizkit::Attributes> {
        match ds {
            vizkit::DataSet::Image(d) => vec![&d.point_data, &d.cell_data],
            vizkit::DataSet::UGrid(d) => vec![&d.point_data, &d.cell_data],
            vizkit::DataSet::Poly(d) => vec![&d.point_data],
        }
    }
    let da = codec::dataset_from_bytes(a).expect("parse a");
    let db = codec::dataset_from_bytes(b).expect("parse b");
    let mut max = 0f64;
    for (at_a, at_b) in attrs(&da).into_iter().zip(attrs(&db)) {
        for (name, arr_a) in at_a.iter() {
            let arr_b = at_b.get(name).expect("attribute survives");
            assert_eq!(arr_a.len(), arr_b.len());
            for i in 0..arr_a.len() {
                let d = (arr_a.get(i) - arr_b.get(i)).abs();
                if d.is_finite() {
                    max = max.max(d);
                }
            }
        }
    }
    max
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dataset_codec_roundtrips_grids(grid in arb_grid(4)) {
        let ds = vizkit::DataSet::Image(grid);
        let bytes = colza::codec::dataset_to_bytes(&ds);
        let back = colza::codec::dataset_from_bytes(&bytes).unwrap();
        let (vizkit::DataSet::Image(a), vizkit::DataSet::Image(b)) = (&ds, &back) else {
            panic!("variant changed");
        };
        prop_assert_eq!(&a.point_data, &b.point_data);
        prop_assert_eq!(a.dims, b.dims);
    }

    #[test]
    fn codec_rejects_garbage_without_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = colza::codec::dataset_from_bytes(&bytes);
    }

    #[test]
    fn shuffle_lz_is_bit_identical_on_any_dataset(payload in arb_payload()) {
        let back = roundtrip(CodecSpec::ShuffleLz, &payload);
        prop_assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn shuffle_lz_is_bit_identical_on_raw_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let payload = Bytes::from(data);
        let back = roundtrip(CodecSpec::ShuffleLz, &payload);
        prop_assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn delta_full_anchor_is_bit_identical(payload in arb_payload()) {
        // No base: the chain anchors with a self-contained full frame.
        let enc = codec::encode_block(CodecSpec::Delta, &payload, None).unwrap();
        prop_assert_eq!(enc.codec, CodecId::DeltaFull);
        let back = codec::decode_block(enc.codec, &enc.frame, None).unwrap();
        prop_assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn lossy_respects_bound_elementwise(payload in arb_image_payload(), bound in 1e-4f32..1e-1) {
        let back = roundtrip(CodecSpec::Lossy { error_bound: bound }, &payload);
        // Quantized lattice points round to the nearest representable
        // float, so allow ~ulp slack on top of the bound.
        let tol = bound as f64 * (1.0 + 1e-3) + 1e-4;
        prop_assert!(max_attr_err(&payload, &back) <= tol);
    }

    #[test]
    fn lossy_preserves_geometry_exactly(payload in arb_ugrid_payload()) {
        let back = roundtrip(CodecSpec::Lossy { error_bound: 0.5 }, &payload);
        let (Ok(vizkit::DataSet::UGrid(a)), Ok(vizkit::DataSet::UGrid(b))) =
            (codec::dataset_from_bytes(&payload), codec::dataset_from_bytes(&back))
        else {
            panic!("ugrid expected");
        };
        prop_assert_eq!(&a.points, &b.points);
        prop_assert_eq!(&a.connectivity, &b.connectivity);
        prop_assert_eq!(&a.offsets, &b.offsets);
    }
}

proptest! {
    // Chains re-encode the payload per link, so keep the case count lower.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn delta_chains_decode_link_by_link(
        base_vals in proptest::collection::vec(-100.0f32..100.0, 27),
        steps in proptest::collection::vec(proptest::collection::vec(-0.5f32..0.5, 27), 1..6),
    ) {
        // A chain of slowly varying grids: iteration i+1 = iteration i + step.
        let mut vals = base_vals;
        let mut chain: Vec<Bytes> = Vec::new();
        chain.push({
            let mut g = ImageData::new([3, 3, 3]);
            g.point_data.set("f", DataArray::F32(vals.clone()));
            codec::dataset_to_bytes(&vizkit::DataSet::Image(g))
        });
        for step in &steps {
            for (v, d) in vals.iter_mut().zip(step) {
                *v += d;
            }
            let mut g = ImageData::new([3, 3, 3]);
            g.point_data.set("f", DataArray::F32(vals.clone()));
            chain.push(codec::dataset_to_bytes(&vizkit::DataSet::Image(g)));
        }

        // Encode exactly as the client does: each link's base is the
        // previous *plain* payload; decode with the same base and demand
        // bit-identity at every link.
        let mut prev: Option<Bytes> = None;
        for (i, payload) in chain.iter().enumerate() {
            let base = prev.as_ref().map(|p| (p, i as u64 - 1));
            let enc = codec::encode_block(CodecSpec::Delta, payload, base).unwrap();
            if i == 0 {
                prop_assert_eq!(enc.codec, CodecId::DeltaFull);
            } else {
                prop_assert_eq!(enc.codec, CodecId::DeltaDiff);
            }
            let back = codec::decode_block(enc.codec, &enc.frame, prev.as_ref()).unwrap();
            prop_assert_eq!(&back[..], &payload[..]);
            prev = Some(back);
        }
    }

    #[test]
    fn frame_info_reports_the_encoding(payload in arb_payload()) {
        for spec in [CodecSpec::ShuffleLz, CodecSpec::Lossy { error_bound: 1e-2 }, CodecSpec::Delta] {
            let enc = codec::encode_block(spec, &payload, None).unwrap();
            let info = codec::frame_info(&enc.frame).unwrap();
            prop_assert_eq!(info.codec, enc.codec);
            prop_assert_eq!(info.decoded_len as usize, payload.len());
        }
    }

    #[test]
    fn truncated_frames_never_panic(payload in arb_image_payload(), cut in 0usize..100) {
        let enc = codec::encode_block(CodecSpec::ShuffleLz, &payload, None).unwrap();
        let cut = cut.min(enc.frame.len());
        let truncated = enc.frame.slice(0..cut);
        // Must be a typed error (or, for tiny cuts, still parse the
        // header) — never a panic or a wrong-length success.
        if let Ok(back) = codec::decode_block(enc.codec, &truncated, None) {
            prop_assert_eq!(&back[..], &payload[..]);
        }
    }
}
