//! End-to-end reactive triggers (DESIGN.md §15): a triggered DWI pipeline
//! skips quiet iterations and runs interesting ones, every server reaches
//! the same decision (the client's divergence check makes disagreement a
//! hard error), and the whole schedule is a pure function of the seed.

use std::sync::Arc;
use std::time::Duration;

use colza::{AdminClient, BlockMeta, ColzaClient, ColzaDaemon, DaemonConfig, ExecOutcome};
use margo::MargoInstance;
use na::Fabric;

/// Runs a DWI pipeline with the given script on two servers and returns
/// the per-iteration decisions and `execute` spans.
///
/// Gossip is harness-driven (`tick_interval` pinned far out, serialized
/// `tick_sync`) so SWIM's real-time rounds can't perturb the virtual
/// clocks — the same discipline the chaos suite uses for byte-identical
/// replay.
fn dwi_run(seed: u64, tag: &str, script: String) -> (Vec<ExecOutcome>, Vec<u64>) {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed,
        ..hpcsim::ClusterConfig::aries()
    });
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!(
        "trigger-e2e-{tag}-{seed}-{}.addrs",
        std::process::id()
    ));
    std::fs::remove_file(&conn).ok();
    let mut cfg = DaemonConfig::new(&conn);
    cfg.tick_interval = Duration::from_secs(3600); // harness-driven only
    let daemons: Vec<ColzaDaemon> = (0..2)
        .map(|i| ColzaDaemon::spawn(&cluster, &fabric, i, cfg.clone()))
        .collect();
    for _ in 0..60 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    assert!(
        daemons.iter().all(|d| d.view().len() == 2),
        "serialized gossip failed to converge"
    );
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "catalyst", "dwi", &script)
            .unwrap();
        let handle = client.distributed_handle(contact, "dwi").unwrap();
        let series = sims::dwi::DwiSeries {
            total_blocks: 4,
            scale: 1.0 / 2048.0,
            iterations: 10,
        };
        let ctx = hpcsim::current();
        let mut outcomes = Vec::new();
        let mut execute_ns = Vec::new();
        for iteration in 0..10u64 {
            handle.activate(iteration).unwrap();
            for b in 0..4usize {
                let ds = vizkit::DataSet::UGrid(series.generate_block(iteration, b));
                let payload = colza::codec::dataset_to_bytes(&ds);
                handle
                    .stage(
                        BlockMeta::new("dwi", b as u64, iteration, payload.len()),
                        &payload,
                    )
                    .unwrap();
            }
            // `execute` errors out if the servers' trigger decisions ever
            // diverge, so a clean return doubles as the cross-rank
            // agreement assertion.
            let before = ctx.now();
            outcomes.push(handle.execute(iteration).unwrap());
            execute_ns.push(ctx.now() - before);
            handle.deactivate(iteration).unwrap();
        }
        margo.finalize();
        (outcomes, execute_ns)
    });

    let out = sim.join();
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
    out
}

fn triggered_script() -> String {
    catalyst::PipelineScript::deep_water_impact_triggered(64, 48).to_json()
}

/// The triggered script gates `run` on `max(v02) > 3.2 || iter % 4 == 1`:
/// the cadence keeps a heartbeat of renders before the jet shows up, the
/// velocity predicate takes over once it does, and everything else is
/// skipped. The same seed must reproduce the exact decision schedule.
/// (Exact virtual end times are only compared in the no-daemon
/// observability scenarios: multi-daemon runs break simultaneous-event
/// ties by host-thread arrival, as the chaos suite documents.)
#[test]
fn triggered_pipeline_skips_and_runs_deterministically() {
    let (outcomes_a, _spans_a) = dwi_run(42, "a", triggered_script());

    assert_eq!(outcomes_a.len(), 10);
    assert_eq!(
        outcomes_a[1],
        ExecOutcome::Ran,
        "iteration 1 matches the `iter % 4 == 1` cadence: {outcomes_a:?}"
    );
    let ran = outcomes_a.iter().filter(|o| !o.is_skipped()).count();
    let skipped = outcomes_a.len() - ran;
    assert!(
        ran >= 2,
        "expected the cadence to fire at least twice: {outcomes_a:?}"
    );
    assert!(
        skipped >= 3,
        "quiet early iterations should be skipped: {outcomes_a:?}"
    );

    let (outcomes_b, _spans_b) = dwi_run(42, "b", triggered_script());
    assert_eq!(outcomes_a, outcomes_b, "same seed, different skip schedule");
}

/// Skipping must actually save virtual time: on every skipped iteration
/// the triggered run pays only the fused stats allreduce (~µs) while
/// the always-run script pays a full render. The gate is per skipped
/// iteration, not on end-to-end totals — `charge_compute` measures real
/// host CPU, so whole-run virtual end times carry scheduling noise that
/// would swamp the margin at this test's small data scale (the same
/// reasoning as `bench_trigger`'s assert gates).
#[test]
fn skipped_iterations_cost_less_virtual_time() {
    let (outcomes, spans) = dwi_run(7, "t", triggered_script());
    assert!(
        outcomes.iter().any(|o| o.is_skipped()),
        "no skips in {outcomes:?}"
    );

    let script = catalyst::PipelineScript::deep_water_impact(64, 48).to_json();
    let (baseline, base_spans) = dwi_run(7, "base", script);
    assert!(
        baseline.iter().all(|o| !o.is_skipped()),
        "untriggered script must run every iteration: {baseline:?}"
    );
    for (i, ((o, &t_ns), &a_ns)) in
        outcomes.iter().zip(&spans).zip(&base_spans).enumerate()
    {
        if !o.is_skipped() {
            continue;
        }
        assert!(
            t_ns < 2_000_000,
            "skipped iteration {i} cost {t_ns} ns (expected ~zero)"
        );
        assert!(
            t_ns < a_ns,
            "skipped iteration {i} should cost less than the always-on \
             render there: {t_ns} vs {a_ns} ns"
        );
    }
}
