//! Workspace-level integration tests: whole-system flows spanning the
//! simulation applications, the Colza staging service, the visualization
//! stack, and the baselines.

use std::sync::Arc;

use colza::daemon::{launch_group, settle_views};
use colza::{AdminClient, BlockMeta, ColzaClient, ColzaDaemon, DaemonConfig};
use margo::MargoInstance;
use na::Fabric;

fn env(name: &str) -> (hpcsim::Cluster, Fabric, DaemonConfig) {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!("colza-e2e-{name}-{}.addrs", std::process::id()));
    std::fs::remove_file(&conn).ok();
    (cluster, fabric, DaemonConfig::new(conn))
}

#[test]
fn gray_scott_through_colza_produces_an_image() {
    let (cluster, fabric, cfg) = env("gs");
    let daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();
    let coverage = minimpi::MpiWorld::launch(
        &cluster,
        &fabric,
        2,
        2,
        2,
        minimpi::Profile::Vendor,
        move |comm| {
            let margo = MargoInstance::from_endpoint(Arc::clone(comm.endpoint()));
            let client = ColzaClient::new(Arc::clone(&margo));
            if comm.rank() == 0 {
                let admin = AdminClient::new(Arc::clone(&margo));
                let script = catalyst::PipelineScript::gray_scott(96, 96).to_json();
                let view = client.view_from(contact).unwrap();
                admin
                    .create_pipeline_on_all(&view, "catalyst", "gs", &script)
                    .unwrap();
            }
            comm.barrier().unwrap();
            let handle = client.distributed_handle(contact, "gs").unwrap();
            let mut sim = sims::gray_scott::GrayScott::new(
                24,
                comm.rank(),
                comm.size(),
                sims::gray_scott::GrayScottParams::default(),
            );
            sim.run(20, Some(&comm)).unwrap();
            if comm.rank() == 0 {
                handle.activate(0).unwrap();
            }
            comm.barrier().unwrap();
            let payload = colza::codec::dataset_to_bytes(&sim.to_dataset());
            handle
                .stage(
                    BlockMeta::new("gs", comm.rank() as u64, 0, payload.len()),
                    &payload,
                )
                .unwrap();
            comm.barrier().unwrap();
            let out = if comm.rank() == 0 {
                handle.execute(0).unwrap();
                let img = handle.fetch_result().unwrap().expect("image");
                handle.deactivate(0).unwrap();
                vizkit::Image::from_bytes(&img).coverage()
            } else {
                -1.0
            };
            comm.barrier().unwrap();
            margo.finalize();
            out
        },
    );
    assert!(coverage[0] > 0.0, "root coverage {}", coverage[0]);
    for d in daemons {
        d.stop();
    }
}

#[test]
fn elastic_grow_and_admin_shrink_under_load() {
    let (cluster, fabric, cfg) = env("elastic");
    let mut daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();
    let script = catalyst::PipelineScript::mandelbulb(48, 48).to_json();

    let (grow_tx, grow_rx) = crossbeam::channel::bounded::<()>(1);
    let (grown_tx, grown_rx) = crossbeam::channel::bounded::<na::Address>(1);

    let f2 = fabric.clone();
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "catalyst", "m", &script)
            .unwrap();
        let handle = client.distributed_handle(contact, "m").unwrap();
        let bulb = sims::mandelbulb::Mandelbulb {
            dims: [12, 12, 12],
            ..Default::default()
        };

        let mut server_counts = Vec::new();
        for iteration in 0..4u64 {
            if iteration == 1 {
                grow_tx.send(()).unwrap();
                let fresh = grown_rx.recv().unwrap();
                admin
                    .create_pipeline(fresh, "catalyst", "m", &script)
                    .unwrap();
                handle.refresh_view().unwrap();
            }
            if iteration == 3 {
                // Scale down: ask the newest member to leave, wait for the
                // view to shrink, then keep iterating.
                let view = handle.refresh_view().unwrap();
                admin.request_leave(*view.last().unwrap()).unwrap();
                for _ in 0..400 {
                    if handle.refresh_view().map(|v| v.len()) == Ok(view.len() - 1) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            handle.activate(iteration).unwrap();
            server_counts.push(handle.members().len());
            for b in 0..4u64 {
                let payload =
                    colza::codec::dataset_to_bytes(&bulb.generate_block(b as usize, 4));
                handle
                    .stage(
                        BlockMeta::new("m", b, iteration, payload.len()),
                        &payload,
                    )
                    .unwrap();
            }
            handle.execute(iteration).unwrap();
            handle.deactivate(iteration).unwrap();
        }
        margo.finalize();
        server_counts
    });

    grow_rx.recv().unwrap();
    let newcomer = ColzaDaemon::spawn(&cluster, &fabric, 4, cfg.clone());
    let fresh_addr = newcomer.address();
    daemons.push(newcomer);
    settle_views(&daemons, 3);
    grown_tx.send(fresh_addr).unwrap();

    let counts = sim.join();
    assert_eq!(counts[0], 2);
    assert_eq!(counts[1], 3, "grew before iteration 1");
    assert_eq!(counts[3], 2, "shrank before iteration 3");

    // The leaver exits by itself; collect it before stopping the rest.
    let leaver = daemons.pop().unwrap();
    leaver.wait();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn all_three_pipelines_render_through_the_catalyst_backend() {
    let (cluster, fabric, cfg) = env("allpipes");
    let daemons = launch_group(&cluster, &fabric, 1, 1, 0, &cfg);
    let contact = daemons[0].address();
    let f2 = fabric.clone();
    let coverages = cluster
        .spawn("sim", 8, move || {
            let margo = MargoInstance::init(&f2);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact).unwrap();
            let mut out = Vec::new();

            // Gray-Scott (contour + clip), Mandelbulb (contour), DWI
            // (merge + volume) on the same staging area.
            let mut gs = sims::gray_scott::GrayScott::serial(
                16,
                sims::gray_scott::GrayScottParams::default(),
            );
            gs.run(30, None).unwrap();
            let bulb = sims::mandelbulb::Mandelbulb {
                dims: [16, 16, 16],
                ..Default::default()
            };
            let dwi = sims::dwi::DwiSeries::scaled_down(2);
            let cases: Vec<(&str, String, Vec<vizkit::DataSet>)> = vec![
                (
                    "gs",
                    catalyst::PipelineScript::gray_scott(64, 64).to_json(),
                    vec![gs.to_dataset()],
                ),
                (
                    "bulb",
                    catalyst::PipelineScript::mandelbulb(64, 64).to_json(),
                    vec![bulb.generate_block(0, 1)],
                ),
                (
                    "dwi",
                    catalyst::PipelineScript::deep_water_impact(64, 64).to_json(),
                    (0..2)
                        .map(|b| vizkit::DataSet::UGrid(dwi.generate_block(20, b)))
                        .collect(),
                ),
            ];
            for (name, script, blocks) in cases {
                admin
                    .create_pipeline_on_all(&view, "catalyst", name, &script)
                    .unwrap();
                let handle = client.distributed_handle(contact, name).unwrap();
                handle.activate(0).unwrap();
                for (b, ds) in blocks.iter().enumerate() {
                    let payload = colza::codec::dataset_to_bytes(ds);
                    handle
                        .stage(
                            BlockMeta::new(name, b as u64, 0, payload.len()),
                            &payload,
                        )
                        .unwrap();
                }
                handle.execute(0).unwrap();
                let img = handle.fetch_result().unwrap().expect("image");
                handle.deactivate(0).unwrap();
                out.push((name, vizkit::Image::from_bytes(&img).coverage()));
            }
            margo.finalize();
            out
        })
        .join();
    for (name, cov) in coverages {
        assert!(cov > 0.0, "{name} rendered an empty image");
    }
    for d in daemons {
        d.stop();
    }
}

#[test]
fn killed_server_is_detected_and_protocol_recovers() {
    let (cluster, fabric, cfg) = env("failure");
    let mut daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();
    let victim = daemons.remove(2);
    let victim_addr = victim.address();

    let f2 = fabric.clone();
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (ready_tx, ready_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        assert_eq!(view.len(), 3);
        admin
            .create_pipeline_on_all(&view, "null", "p", "")
            .unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        handle.activate(0).unwrap();
        handle.execute(0).unwrap();
        handle.deactivate(0).unwrap();

        // Wait for the harness to crash a server and SWIM to notice.
        ready_tx.send(()).unwrap();
        killed_rx.recv().unwrap();
        for _ in 0..600 {
            if client.view_from(contact).map(|v| !v.contains(&victim_addr)) == Ok(true) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // The 2PC in activate adopts the survivor view; the protocol keeps
        // working on 2 servers.
        handle.refresh_view().unwrap();
        handle.activate(1).unwrap();
        let n = handle.members().len();
        handle.execute(1).unwrap();
        handle.deactivate(1).unwrap();
        margo.finalize();
        n
    });

    ready_rx.recv().unwrap();
    victim.kill();
    // Drive gossip so suspicion matures (ticks also advance rounds).
    for _ in 0..400 {
        for d in &daemons {
            d.tick();
        }
        if daemons.iter().all(|d| !d.view().contains(&victim_addr)) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    killed_tx.send(()).unwrap();
    let n = sim.join();
    assert_eq!(n, 2, "protocol must continue on the survivors");
    for d in daemons {
        d.stop();
    }
}

#[test]
fn baselines_and_colza_run_the_same_workload() {
    // Fig. 8's comparability check at smoke scale: all four frameworks
    // process the same Mandelbulb blocks without error.
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let script = catalyst::PipelineScript::mandelbulb(32, 32);

    // Damaris.
    let times = baselines::damaris::run_damaris(
        &cluster,
        &fabric,
        baselines::damaris::DamarisConfig {
            clients: 2,
            servers: 2,
            profile: minimpi::Profile::Vendor,
            script: script.clone(),
            iterations: 1,
        },
        |rank, _| {
            vec![sims::mandelbulb::Mandelbulb {
                dims: [8, 8, 8],
                ..Default::default()
            }
            .generate_block(rank % 2, 2)]
        },
    );
    assert_eq!(times.len(), 1);

    // DataSpaces.
    let deployment = baselines::dataspaces::DataSpacesDeployment::launch(
        &cluster,
        &fabric,
        2,
        1,
        10,
        minimpi::Profile::Vendor,
        script,
    );
    let servers = deployment.addrs().to_vec();
    let f2 = fabric.clone();
    cluster
        .spawn("ds-client", 20, move || {
            let margo = MargoInstance::init(&f2);
            let client = baselines::dataspaces::DsClient::new(Arc::clone(&margo), servers);
            let bulb = sims::mandelbulb::Mandelbulb {
                dims: [8, 8, 8],
                ..Default::default()
            };
            for b in 0..2u64 {
                let payload =
                    colza::codec::dataset_to_bytes(&bulb.generate_block(b as usize, 2));
                client.put("m", 0, b, &payload).unwrap();
            }
            client.exec(0).unwrap();
            margo.finalize();
        })
        .join();
    deployment.stop();
}
