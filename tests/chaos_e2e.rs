//! Chaos tests: whole-system flows under injected faults.
//!
//! Every scenario runs against a [`hpcsim::FaultPlan`] attached to the
//! cluster, so the chaos is deterministic: the plan's seed fully decides
//! which messages are dropped, delayed, duplicated, or reordered. The
//! seed is pinned through `COLZA_CHAOS_SEED` (default 42) so a failing
//! run can be reproduced exactly.
//!
//! Loss is scoped to the RPC tag plane (requests and responses): the RPC
//! layer owns retry and duplicate suppression, while MoNA/MPI collectives
//! model a reliable transport underneath (they have no retry layer and an
//! unscoped drop would wedge a reduction forever).

use std::sync::Arc;
use std::time::Duration;

use colza::daemon::{launch_group, settle_views};
use colza::{AdminClient, BlockMeta, ColzaClient, ColzaDaemon, DaemonConfig};
use hpcsim::FaultPlan;
use margo::{MargoInstance, RetryConfig};
use na::Fabric;

/// The pinned chaos seed (override with `COLZA_CHAOS_SEED`).
fn chaos_seed() -> u64 {
    std::env::var("COLZA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A plan scoped to the retryable RPC plane (requests + responses).
fn rpc_scoped(plan: FaultPlan) -> FaultPlan {
    plan.scope_tags(na::tags::RPC_BASE, na::tags::MONA_BASE - 1)
}

fn env(name: &str, plan: FaultPlan) -> (hpcsim::Cluster, Fabric, DaemonConfig) {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        faults: plan,
        ..hpcsim::ClusterConfig::aries()
    });
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!(
        "colza-chaos-{name}-{}.addrs",
        std::process::id()
    ));
    std::fs::remove_file(&conn).ok();
    (cluster, fabric, DaemonConfig::new(conn))
}

/// A provider crashes in the middle of the activate 2PC. The prepare
/// round fails fast on the dead endpoint, the coordinator aborts, and the
/// client's retry loop adopts the survivor view once SWIM notices.
#[test]
fn activate_recovers_when_a_provider_crashes_mid_2pc() {
    let (cluster, fabric, cfg) = env("crash2pc", FaultPlan::default());
    let mut daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();
    let victim = daemons.remove(2);
    let victim_addr = victim.address();

    let f2 = fabric.clone();
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (ready_tx, ready_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        assert_eq!(view.len(), 3);
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        handle.activate(0).unwrap();
        handle.execute(0).unwrap();
        handle.deactivate(0).unwrap();

        // The harness crashes a provider *now*; the next activate walks
        // straight into the dead member mid-prepare.
        ready_tx.send(()).unwrap();
        killed_rx.recv().unwrap();
        let mut members = 0;
        let mut done = false;
        for _ in 0..600 {
            match handle.activate(1) {
                Ok(()) => {
                    members = handle.members().len();
                    done = true;
                    break;
                }
                Err(e) if e.is_retryable() => {
                    // Abort-and-retry: refresh to whatever view the
                    // survivors have converged on by now.
                    let _ = handle.refresh_view();
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("non-retryable activate failure: {e}"),
            }
        }
        assert!(done, "activate never recovered from the crash");
        handle.execute(1).unwrap();
        handle.deactivate(1).unwrap();
        margo.finalize();
        members
    });

    ready_rx.recv().unwrap();
    victim.kill();
    killed_tx.send(()).unwrap();
    // Drive gossip so suspicion matures while the client keeps retrying.
    for _ in 0..400 {
        for d in &daemons {
            d.tick();
        }
        if daemons.iter().all(|d| !d.view().contains(&victim_addr)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let members = sim.join();
    assert_eq!(members, 2, "2PC must complete on the survivor view");
    for d in daemons {
        d.stop();
    }
}

/// A full stage/execute pipeline runs to completion through 1% message
/// loss (plus a little duplication) on the RPC plane.
#[test]
fn stage_and_execute_complete_through_one_percent_loss() {
    let plan = rpc_scoped(
        FaultPlan::seeded(chaos_seed())
            .with_loss(0.01)
            .with_duplication(0.002),
    );
    let (cluster, fabric, cfg) = env("loss", plan);
    let daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();
    let script = catalyst::PipelineScript::mandelbulb(48, 48).to_json();

    let f2 = fabric.clone();
    let coverage = cluster
        .spawn("sim", 8, move || {
            let margo = MargoInstance::init(&f2);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact).unwrap();
            admin
                .create_pipeline_on_all(&view, "catalyst", "m", &script)
                .unwrap();
            let handle = client.distributed_handle(contact, "m").unwrap();
            let bulb = sims::mandelbulb::Mandelbulb {
                dims: [12, 12, 12],
                ..Default::default()
            };
            let mut cov = -1.0;
            for iteration in 0..3u64 {
                handle.activate(iteration).unwrap();
                for b in 0..2u64 {
                    let payload =
                        colza::codec::dataset_to_bytes(&bulb.generate_block(b as usize, 2));
                    handle
                        .stage(
                            BlockMeta {
                                name: "m".into(),
                                block_id: b,
                                iteration,
                                size: payload.len(),
                            },
                            &payload,
                        )
                        .unwrap();
                }
                handle.execute(iteration).unwrap();
                let img = handle.fetch_result().unwrap().expect("image");
                cov = vizkit::Image::from_bytes(&img).coverage();
                handle.deactivate(iteration).unwrap();
            }
            margo.finalize();
            cov
        })
        .join();
    assert!(
        cluster.shared().faults().fault_count() > 0,
        "the plan injected nothing — the scenario tested a clean wire"
    );
    assert!(coverage > 0.0, "final image empty under loss: {coverage}");
    for d in daemons {
        d.stop();
    }
}

/// A network partition opens while the staging area is growing: the
/// joiner's first contact sits on the wrong side of the cut, so its join
/// retries fail over to a reachable member. After the partition heals,
/// all four daemons converge on one view and the protocol completes.
#[test]
fn elastic_grow_survives_a_partition_that_later_heals() {
    let (cluster, fabric, mut cfg) = env("partition", FaultPlan::default());
    // Long suspicion budget: nobody may be declared dead (permanently in
    // this SWIM variant) over a partition we intend to heal; short probe
    // timeouts keep the partitioned rounds quick.
    cfg.ssg.swim.suspect_rounds = 500;
    cfg.ssg.ping_timeout = Duration::from_millis(50);
    cfg.rpc_timeout = Duration::from_millis(100);
    let mut daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact0 = daemons[0].address();

    // Cut node 0 (the first daemon — and the joiner's first contact) off
    // from everyone else, then grow.
    cluster.shared().faults().partition_now(&[0], &[1, 2, 3]);
    let newcomer = ColzaDaemon::spawn(&cluster, &fabric, 3, cfg.clone());
    daemons.push(newcomer);

    // A few probe rounds inside the partition: failures surface as
    // suspicion, never as death.
    for _ in 0..3 {
        for d in &daemons {
            d.tick();
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    cluster.shared().faults().heal_partitions();
    settle_views(&daemons, 4);

    let f2 = fabric.clone();
    let members = cluster
        .spawn("sim", 8, move || {
            let margo = MargoInstance::init(&f2);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact0).unwrap();
            admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
            let handle = client.distributed_handle(contact0, "p").unwrap();
            handle.activate(0).unwrap();
            let n = handle.members().len();
            handle.execute(0).unwrap();
            handle.deactivate(0).unwrap();
            margo.finalize();
            n
        })
        .join();
    assert_eq!(members, 4, "healed group must serve with all four members");
    for d in daemons {
        d.stop();
    }
}

/// One deterministic run of a sequential RPC workload under loss, delay,
/// and reorder. Returns the injector's fault trace and the client's final
/// virtual time.
///
/// Duplication is deliberately absent: whether a duplicate is answered
/// from the reply cache or dropped as in-flight depends on a real-time
/// race in the handler, which perturbs virtual clocks. Everything else is
/// decided by per-link counters and the plan seed alone.
fn deterministic_run(seed: u64) -> (Vec<hpcsim::FaultRecord>, u64, hpcsim::TraceSnapshot) {
    let plan = rpc_scoped(
        FaultPlan::seeded(seed)
            .with_loss(0.05)
            .with_delay(0.2, 10_000, 50_000)
            .with_reorder(0.1),
    );
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        faults: plan,
        ..hpcsim::ClusterConfig::aries()
    });
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 1, move || {
        let margo = MargoInstance::init(&f2);
        margo.register("echo", |x: u64, _ctx: &margo::CallCtx| Ok(x.wrapping_mul(3)));
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let dst = addr_rx.recv().unwrap();

    let f3 = fabric.clone();
    let final_time = cluster
        .spawn("client", 0, move || {
            let margo = MargoInstance::init(&f3);
            // Generous per-try timeout: only injected drops may trigger a
            // retry, never host scheduling jitter.
            let cfg = RetryConfig {
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(4),
                per_try_timeout: Duration::from_millis(200),
                deadline: Some(Duration::from_secs(60)),
                ..Default::default()
            };
            for i in 0..30u64 {
                let r: u64 = margo.forward_retry(dst, "echo", &i, &cfg).unwrap();
                assert_eq!(r, i.wrapping_mul(3));
            }
            let now = hpcsim::current().now();
            margo.finalize();
            now
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();
    let snapshot = cluster.shared().trace_snapshot();
    (cluster.shared().faults().trace(), final_time, snapshot)
}

/// The acceptance property of the fault plan: the same seed reproduces
/// the exact fault trace *and* the exact virtual-time outcome across two
/// fresh clusters; a different seed produces a different trace.
#[test]
fn same_seed_reproduces_the_exact_virtual_time_trace() {
    let seed = chaos_seed();
    let (trace_a, time_a, _) = deterministic_run(seed);
    let (trace_b, time_b, _) = deterministic_run(seed);
    assert!(!trace_a.is_empty(), "plan injected nothing at 5% loss");
    assert_eq!(trace_a, trace_b, "fault traces diverged for one seed");
    assert_eq!(time_a, time_b, "virtual end times diverged for one seed");

    let (trace_c, _, _) = deterministic_run(seed.wrapping_add(1));
    assert_ne!(trace_a, trace_c, "distinct seeds produced identical chaos");
}

/// What the injector says it did is exactly what the observability layer
/// saw happen: every `Drop` record in the canonical fault trace is one
/// `na.dropped.msgs` increment, and on the retryable RPC plane every drop
/// costs precisely one timed-out attempt and one retry.
#[test]
fn injected_faults_reconcile_with_observed_counters() {
    let (trace, _, snap) = deterministic_run(chaos_seed());

    let injected_drops = trace
        .iter()
        .filter(|r| matches!(r.kind, hpcsim::FaultKind::Drop))
        .count() as u64;
    let injected_dups = trace
        .iter()
        .filter(|r| matches!(r.kind, hpcsim::FaultKind::Duplicate))
        .count() as u64;
    assert!(injected_drops > 0, "5% loss over 30 RPCs injected nothing");
    assert_eq!(
        snap.counter_total("na.dropped.msgs"),
        injected_drops,
        "drop counter disagrees with the injector's canonical trace"
    );
    assert_eq!(snap.counter_total("na.duplicated.msgs"), injected_dups);

    // Each failed attempt lost exactly one message (its request, or the
    // reply — original or replayed), and the generous per-try timeout
    // means nothing else can fail an attempt. All calls succeed, so every
    // timeout was retried: drops == timeouts == retries.
    let retries = snap.counter_total("rpc.retries");
    assert_eq!(snap.counter_total("rpc.timeouts"), retries);
    assert_eq!(injected_drops, retries);
    assert_eq!(snap.counter_total("rpc.retry.giveup"), 0);

    // 30 logical calls: one send per attempt, one handler execution per
    // request id (dedup absorbs re-deliveries), and the NA plane counted
    // every message anyone put on the wire — dropped ones included.
    assert_eq!(snap.counter_total("rpc.sent.msgs"), 30 + retries);
    assert_eq!(snap.counter_total("rpc.handled.msgs"), 30);
    assert_eq!(
        snap.counter_total("na.plane.rpc.msgs"),
        snap.counter_total("rpc.sent.msgs")
            + snap.counter_total("rpc.handled.msgs")
            + snap.counter_total("rpc.dedup.replayed")
    );
}

/// The original end-to-end failure scenario, now with 1% message loss on
/// top of the crash: SWIM still detects the kill and the protocol still
/// recovers on the survivors.
#[test]
fn killed_server_is_detected_under_one_percent_loss() {
    let plan = rpc_scoped(FaultPlan::seeded(chaos_seed()).with_loss(0.01));
    let (cluster, fabric, cfg) = env("killloss", plan);
    let mut daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();
    let victim = daemons.remove(2);
    let victim_addr = victim.address();

    let f2 = fabric.clone();
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (ready_tx, ready_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        assert_eq!(view.len(), 3);
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        handle.activate(0).unwrap();
        handle.execute(0).unwrap();
        handle.deactivate(0).unwrap();

        ready_tx.send(()).unwrap();
        killed_rx.recv().unwrap();
        for _ in 0..600 {
            if client.view_from(contact).map(|v| !v.contains(&victim_addr)) == Ok(true) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.refresh_view().unwrap();
        handle.activate(1).unwrap();
        let n = handle.members().len();
        handle.execute(1).unwrap();
        handle.deactivate(1).unwrap();
        margo.finalize();
        n
    });

    ready_rx.recv().unwrap();
    victim.kill();
    for _ in 0..400 {
        for d in &daemons {
            d.tick();
        }
        if daemons.iter().all(|d| !d.view().contains(&victim_addr)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    killed_tx.send(()).unwrap();
    let n = sim.join();
    assert_eq!(n, 2, "protocol must continue on the survivors despite loss");
    for d in daemons {
        d.stop();
    }
}
