//! Chaos tests: whole-system flows under injected faults.
//!
//! Every scenario runs against a [`hpcsim::FaultPlan`] attached to the
//! cluster, so the chaos is deterministic: the plan's seed fully decides
//! which messages are dropped, delayed, duplicated, or reordered. The
//! seed is pinned through `COLZA_CHAOS_SEED` (default 42) so a failing
//! run can be reproduced exactly.
//!
//! Loss is scoped to the RPC tag plane (requests and responses): the RPC
//! layer owns retry and duplicate suppression, while MoNA/MPI collectives
//! model a reliable transport underneath (they have no retry layer and an
//! unscoped drop would wedge a reduction forever).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use colza::daemon::{launch_group, settle_views};
use colza::{
    AdminClient, BlockMeta, ColzaClient, ColzaDaemon, ColzaError, DaemonConfig, PriorityClass,
    TenancyConfig, TenantConfig,
};
use hpcsim::FaultPlan;
use margo::{MargoInstance, RetryConfig};
use na::{Address, Fabric};
use store::{BlockKey, HashRing, RingConfig};

/// The pinned chaos seed (override with `COLZA_CHAOS_SEED`).
fn chaos_seed() -> u64 {
    std::env::var("COLZA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A plan scoped to the retryable RPC plane (requests + responses).
fn rpc_scoped(plan: FaultPlan) -> FaultPlan {
    plan.scope_tags(na::tags::RPC_BASE, na::tags::MONA_BASE - 1)
}

fn env(name: &str, plan: FaultPlan) -> (hpcsim::Cluster, Fabric, DaemonConfig) {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        faults: plan,
        ..hpcsim::ClusterConfig::aries()
    });
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!(
        "colza-chaos-{name}-{}.addrs",
        std::process::id()
    ));
    std::fs::remove_file(&conn).ok();
    (cluster, fabric, DaemonConfig::new(conn))
}

/// A provider crashes in the middle of the activate 2PC. The prepare
/// round fails fast on the dead endpoint, the coordinator aborts, and the
/// client's retry loop adopts the survivor view once SWIM notices.
#[test]
fn activate_recovers_when_a_provider_crashes_mid_2pc() {
    let (cluster, fabric, cfg) = env("crash2pc", FaultPlan::default());
    let mut daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();
    let victim = daemons.remove(2);
    let victim_addr = victim.address();

    let f2 = fabric.clone();
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (ready_tx, ready_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        assert_eq!(view.len(), 3);
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        handle.activate(0).unwrap();
        handle.execute(0).unwrap();
        handle.deactivate(0).unwrap();

        // The harness crashes a provider *now*; the next activate walks
        // straight into the dead member mid-prepare.
        ready_tx.send(()).unwrap();
        killed_rx.recv().unwrap();
        let mut members = 0;
        let mut done = false;
        for _ in 0..600 {
            match handle.activate(1) {
                Ok(()) => {
                    members = handle.members().len();
                    done = true;
                    break;
                }
                Err(e) if e.is_retryable() => {
                    // Abort-and-retry: refresh to whatever view the
                    // survivors have converged on by now.
                    let _ = handle.refresh_view();
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("non-retryable activate failure: {e}"),
            }
        }
        assert!(done, "activate never recovered from the crash");
        handle.execute(1).unwrap();
        handle.deactivate(1).unwrap();
        margo.finalize();
        members
    });

    ready_rx.recv().unwrap();
    victim.kill();
    killed_tx.send(()).unwrap();
    // Drive gossip so suspicion matures while the client keeps retrying.
    for _ in 0..400 {
        for d in &daemons {
            d.tick();
        }
        if daemons.iter().all(|d| !d.view().contains(&victim_addr)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let members = sim.join();
    assert_eq!(members, 2, "2PC must complete on the survivor view");
    for d in daemons {
        d.stop();
    }
}

/// A full stage/execute pipeline runs to completion through 2% message
/// loss (plus a little duplication) on the RPC plane.
#[test]
fn stage_and_execute_complete_through_message_loss() {
    let plan = rpc_scoped(
        FaultPlan::seeded(chaos_seed())
            .with_loss(0.02)
            .with_duplication(0.002),
    );
    let (cluster, fabric, cfg) = env("loss", plan);
    let daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();
    let script = catalyst::PipelineScript::mandelbulb(48, 48).to_json();

    let f2 = fabric.clone();
    let coverage = cluster
        .spawn("sim", 8, move || {
            let margo = MargoInstance::init(&f2);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact).unwrap();
            admin
                .create_pipeline_on_all(&view, "catalyst", "m", &script)
                .unwrap();
            let handle = client.distributed_handle(contact, "m").unwrap();
            let bulb = sims::mandelbulb::Mandelbulb {
                dims: [12, 12, 12],
                ..Default::default()
            };
            let mut cov = -1.0;
            for iteration in 0..3u64 {
                handle.activate(iteration).unwrap();
                for b in 0..2u64 {
                    let payload =
                        colza::codec::dataset_to_bytes(&bulb.generate_block(b as usize, 2));
                    handle
                        .stage(
                            BlockMeta::new("m", b, iteration, payload.len()),
                            &payload,
                        )
                        .unwrap();
                }
                handle.execute(iteration).unwrap();
                let img = handle.fetch_result().unwrap().expect("image");
                cov = vizkit::Image::from_bytes(&img).coverage();
                handle.deactivate(iteration).unwrap();
            }
            margo.finalize();
            cov
        })
        .join();
    assert!(
        cluster.shared().faults().fault_count() > 0,
        "the plan injected nothing — the scenario tested a clean wire"
    );
    assert!(coverage > 0.0, "final image empty under loss: {coverage}");
    for d in daemons {
        d.stop();
    }
}

/// A network partition opens while the staging area is growing: the
/// joiner's first contact sits on the wrong side of the cut, so its join
/// retries fail over to a reachable member. After the partition heals,
/// all four daemons converge on one view and the protocol completes.
#[test]
fn elastic_grow_survives_a_partition_that_later_heals() {
    let (cluster, fabric, mut cfg) = env("partition", FaultPlan::default());
    // Long suspicion budget: nobody may be declared dead (permanently in
    // this SWIM variant) over a partition we intend to heal; short probe
    // timeouts keep the partitioned rounds quick.
    cfg.ssg.swim.suspect_rounds = 500;
    cfg.ssg.ping_timeout = Duration::from_millis(50);
    cfg.rpc_timeout = Duration::from_millis(100);
    let mut daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact0 = daemons[0].address();

    // Cut node 0 (the first daemon — and the joiner's first contact) off
    // from everyone else, then grow.
    cluster.shared().faults().partition_now(&[0], &[1, 2, 3]);
    let newcomer = ColzaDaemon::spawn(&cluster, &fabric, 3, cfg.clone());
    daemons.push(newcomer);

    // A few probe rounds inside the partition: failures surface as
    // suspicion, never as death.
    for _ in 0..3 {
        for d in &daemons {
            d.tick();
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    cluster.shared().faults().heal_partitions();
    settle_views(&daemons, 4);

    let f2 = fabric.clone();
    let members = cluster
        .spawn("sim", 8, move || {
            let margo = MargoInstance::init(&f2);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact0).unwrap();
            admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
            let handle = client.distributed_handle(contact0, "p").unwrap();
            handle.activate(0).unwrap();
            let n = handle.members().len();
            handle.execute(0).unwrap();
            handle.deactivate(0).unwrap();
            margo.finalize();
            n
        })
        .join();
    assert_eq!(members, 4, "healed group must serve with all four members");
    for d in daemons {
        d.stop();
    }
}

/// One deterministic run of a sequential RPC workload under loss, delay,
/// and reorder. Returns the injector's fault trace and the client's final
/// virtual time.
///
/// Duplication is deliberately absent: whether a duplicate is answered
/// from the reply cache or dropped as in-flight depends on a real-time
/// race in the handler, which perturbs virtual clocks. Everything else is
/// decided by per-link counters and the plan seed alone.
fn deterministic_run(seed: u64) -> (Vec<hpcsim::FaultRecord>, u64, hpcsim::TraceSnapshot) {
    let plan = rpc_scoped(
        FaultPlan::seeded(seed)
            .with_loss(0.05)
            .with_delay(0.2, 10_000, 50_000)
            .with_reorder(0.1),
    );
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        faults: plan,
        ..hpcsim::ClusterConfig::aries()
    });
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 1, move || {
        let margo = MargoInstance::init(&f2);
        margo.register("echo", |x: u64, _ctx: &margo::CallCtx| Ok(x.wrapping_mul(3)));
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let dst = addr_rx.recv().unwrap();

    let f3 = fabric.clone();
    let final_time = cluster
        .spawn("client", 0, move || {
            let margo = MargoInstance::init(&f3);
            // Generous per-try timeout: only injected drops may trigger a
            // retry, never host scheduling jitter.
            let cfg = RetryConfig {
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(4),
                per_try_timeout: Duration::from_millis(200),
                deadline: Some(Duration::from_secs(60)),
                ..Default::default()
            };
            for i in 0..30u64 {
                let r: u64 = margo.forward_retry(dst, "echo", &i, &cfg).unwrap();
                assert_eq!(r, i.wrapping_mul(3));
            }
            let now = hpcsim::current().now();
            margo.finalize();
            now
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();
    let snapshot = cluster.shared().trace_snapshot();
    (cluster.shared().faults().trace(), final_time, snapshot)
}

/// The acceptance property of the fault plan: the same seed reproduces
/// the exact fault trace *and* the exact virtual-time outcome across two
/// fresh clusters; a different seed produces a different trace.
#[test]
fn same_seed_reproduces_the_exact_virtual_time_trace() {
    let seed = chaos_seed();
    let (trace_a, time_a, _) = deterministic_run(seed);
    let (trace_b, time_b, _) = deterministic_run(seed);
    assert!(!trace_a.is_empty(), "plan injected nothing at 5% loss");
    assert_eq!(trace_a, trace_b, "fault traces diverged for one seed");
    assert_eq!(time_a, time_b, "virtual end times diverged for one seed");

    let (trace_c, _, _) = deterministic_run(seed.wrapping_add(1));
    assert_ne!(trace_a, trace_c, "distinct seeds produced identical chaos");
}

/// What the injector says it did is exactly what the observability layer
/// saw happen: every `Drop` record in the canonical fault trace is one
/// `na.dropped.msgs` increment, and on the retryable RPC plane every drop
/// costs precisely one timed-out attempt and one retry.
#[test]
fn injected_faults_reconcile_with_observed_counters() {
    let (trace, _, snap) = deterministic_run(chaos_seed());

    let injected_drops = trace
        .iter()
        .filter(|r| matches!(r.kind, hpcsim::FaultKind::Drop))
        .count() as u64;
    let injected_dups = trace
        .iter()
        .filter(|r| matches!(r.kind, hpcsim::FaultKind::Duplicate))
        .count() as u64;
    assert!(injected_drops > 0, "5% loss over 30 RPCs injected nothing");
    assert_eq!(
        snap.counter_total("na.dropped.msgs"),
        injected_drops,
        "drop counter disagrees with the injector's canonical trace"
    );
    assert_eq!(snap.counter_total("na.duplicated.msgs"), injected_dups);

    // Each failed attempt lost exactly one message (its request, or the
    // reply — original or replayed), and the generous per-try timeout
    // means nothing else can fail an attempt. All calls succeed, so every
    // timeout was retried: drops == timeouts == retries.
    let retries = snap.counter_total("rpc.retries");
    assert_eq!(snap.counter_total("rpc.timeouts"), retries);
    assert_eq!(injected_drops, retries);
    assert_eq!(snap.counter_total("rpc.retry.giveup"), 0);

    // 30 logical calls: one send per attempt, one handler execution per
    // request id (dedup absorbs re-deliveries), and the NA plane counted
    // every message anyone put on the wire — dropped ones included.
    assert_eq!(snap.counter_total("rpc.sent.msgs"), 30 + retries);
    assert_eq!(snap.counter_total("rpc.handled.msgs"), 30);
    assert_eq!(
        snap.counter_total("na.plane.rpc.msgs"),
        snap.counter_total("rpc.sent.msgs")
            + snap.counter_total("rpc.handled.msgs")
            + snap.counter_total("rpc.dedup.replayed")
    );
}

/// Everything one run of the replica-recovery scenario produced that must
/// be identical across runs with the same seed: the canonical fault-trace
/// export, the store-migration counter totals, and the survivors' final
/// holdings.
#[derive(Debug, PartialEq)]
struct RecoveryOutcome {
    /// Canonical (sorted, line-per-record) export of the fault trace.
    trace_export: String,
    /// Replicas promoted to primary, at either promotion point: the
    /// commit-boundary sync (`colza.store.promoted.blocks`) or the
    /// execute-time fed reconciliation (`colza.store.exec.promoted`).
    promoted: u64,
    /// `colza.store.recv.blocks`: blocks received over server pushes.
    pushed: u64,
    /// Per-survivor `(address, blocks held, staged bytes)`, sorted.
    survivors: Vec<(u64, usize, u64)>,
}

/// One deterministic run of the acceptance scenario (ISSUE: resilient
/// staging store): three harness-driven daemons with replication 2, a
/// client that stages four blocks, then a crash of block 0's primary
/// *after* `stage` and *before* `execute`. The daemons never tick on
/// their own (huge tick interval, auto-repair off): every SWIM round is a
/// serialized `tick_sync` from this thread, so the whole run — fault
/// stream included — is a pure function of the seed.
///
/// Recovery is client-driven: `execute` against the frozen view fails
/// fast on the dead member (though the survivors' execute-time fed
/// reconciliation already promotes the dead primary's replicas), the
/// client refreshes and re-activates the same iteration, and the
/// commit-boundary sync re-replicates what is still missing. The client
/// never re-stages a block.
fn replica_recovery_run(seed: u64, tag: &str) -> RecoveryOutcome {
    const BLOCKS: u64 = 4;
    let total_bytes: u64 = (0..BLOCKS).map(|b| 256 * (b + 1)).sum();

    let plan = rpc_scoped(FaultPlan::seeded(seed).with_loss(0.01));
    let (cluster, fabric, mut cfg) = env(&format!("replica-{tag}"), plan);
    cluster.shared().tracer().set_enabled(true);
    cfg.tick_interval = Duration::from_secs(3600); // harness-driven only
    cfg.auto_repair = false; // all migration at the 2PC boundary
    let mut daemons: Vec<ColzaDaemon> = (0..3)
        .map(|i| ColzaDaemon::spawn(&cluster, &fabric, i, cfg.clone()))
        .collect();
    // Serialized gossip until everyone sees everyone.
    for _ in 0..60 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    assert!(
        daemons.iter().all(|d| d.view().len() == 3),
        "serialized gossip failed to converge: {:?}",
        daemons.iter().map(|d| d.view().len()).collect::<Vec<_>>()
    );
    let contact = daemons[0].address();

    // The victim is block 0's primary under the ring the client and the
    // servers will both compute over the three-member view.
    let members: Vec<Address> = {
        let mut m: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        m.sort_unstable();
        m
    };
    let ring_cfg = RingConfig {
        replication: 2,
        ..RingConfig::default()
    };
    let shared = Arc::clone(cluster.shared());
    let ring = HashRing::build(&members, |a| shared.node_of(a.pid()), ring_cfg);
    let victim_addr = ring.primary(&BlockKey::new("p", 0)).unwrap();
    let victim_idx = daemons
        .iter()
        .position(|d| d.address() == victim_addr)
        .unwrap();

    let f2 = fabric.clone();
    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<()>(1);
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (executed_tx, executed_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let mut handle = client.distributed_handle(contact, "p").unwrap();
        handle.set_replication(2);
        handle.activate(0).unwrap();
        for b in 0..BLOCKS {
            let payload = Bytes::from(vec![b as u8 + 1; 256 * (b as usize + 1)]);
            handle
                .stage(
                    BlockMeta::new("x", b, 0, payload.len()),
                    &payload,
                )
                .unwrap();
        }
        staged_tx.send(()).unwrap();
        killed_rx.recv().unwrap();

        // The frozen member list still names the dead primary: execute
        // must fail fast and retryably, never hang.
        let r = handle.execute(0);
        assert!(
            matches!(&r, Err(e) if e.is_retryable()),
            "execute against the crashed member must fail retryably: {r:?}"
        );
        // Recovery: fresh view, re-activate the same iteration (the
        // commit sync promotes replicas), execute from the replicas.
        handle.refresh_view().unwrap();
        assert_eq!(handle.members().len(), 2);
        handle.activate(0).unwrap();
        handle.execute(0).unwrap();
        executed_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        handle.deactivate(0).unwrap();
        margo.finalize();
    });

    staged_rx.recv().unwrap();
    // Quiesced crash point: client is blocked, daemons are idle.
    daemons.remove(victim_idx).kill();
    // Serialized SWIM rounds until both survivors declare the death.
    let mut rounds = 0;
    while daemons.iter().any(|d| d.view().contains(&victim_addr)) {
        for d in &daemons {
            d.tick_sync();
        }
        rounds += 1;
        assert!(rounds < 500, "survivors never declared the victim dead");
    }
    // A few more rounds so both views/epochs fully converge.
    for _ in 0..10 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    killed_tx.send(()).unwrap();

    executed_rx.recv().unwrap();
    // Post-execute, pre-deactivate: with k = 2 over 2 survivors, every
    // survivor holds every block, and each block is fed exactly once
    // across the group.
    for d in &daemons {
        let s = d.provider().store();
        assert_eq!(s.len(), BLOCKS as usize, "every survivor holds every block");
        assert_eq!(s.staged_bytes(), total_bytes);
    }
    for b in 0..BLOCKS {
        let fed: usize = daemons
            .iter()
            .flat_map(|d| d.provider().store().snapshot())
            .filter(|x| x.key.block_id == b && x.fed)
            .count();
        assert_eq!(fed, 1, "block {b} must feed exactly one backend");
    }
    done_tx.send(()).unwrap();
    sim.join();

    let snap = cluster.shared().trace_snapshot();
    let mut survivors: Vec<(u64, usize, u64)> = daemons
        .iter()
        .map(|d| {
            let s = d.provider().store();
            (d.address().0, s.len(), s.staged_bytes())
        })
        .collect();
    survivors.sort_unstable();
    let mut trace = cluster.shared().faults().trace();
    // Canonical export: concurrent links append racily, but each record
    // (link, seq, kind) is deterministic — sort before serializing.
    trace.sort_unstable();
    let trace_export = trace
        .iter()
        .map(|r| format!("{r:?}"))
        .collect::<Vec<_>>()
        .join("\n");
    let out = RecoveryOutcome {
        trace_export,
        promoted: snap.counter_total("colza.store.promoted.blocks")
            + snap.counter_total("colza.store.exec.promoted"),
        pushed: snap.counter_total("colza.store.recv.blocks"),
        survivors,
    };
    for d in daemons {
        d.stop();
    }
    out
}

/// ISSUE acceptance: a staging server crashes after `stage` and before
/// `execute` with replication factor 2; `execute` completes from the
/// replicas with no resubmission, and the same seed yields a
/// byte-identical fault-trace export (plus identical migration counters
/// and final holdings).
#[test]
fn crashed_primary_recovers_from_replicas_deterministically() {
    let seed = chaos_seed();
    let a = replica_recovery_run(seed, "a");
    assert!(
        a.promoted >= 1,
        "the crashed primary's blocks must be promoted on a replica"
    );
    assert!(a.pushed >= 1, "re-replication must push blocks");
    assert!(!a.trace_export.is_empty(), "1% loss injected nothing");
    let b = replica_recovery_run(seed, "b");
    assert_eq!(
        a.trace_export, b.trace_export,
        "fault-trace exports diverged for one seed"
    );
    assert_eq!(a, b, "recovery outcomes diverged for one seed");
}

/// Everything one run of the mid-collective crash scenario produced that
/// must be identical across runs with the same seed.
#[derive(Debug, PartialEq)]
struct CollectiveCrashOutcome {
    /// Canonical (sorted, line-per-record) export of the fault trace —
    /// here exclusively `Crash` records for the victim's swallowed
    /// outbound sends.
    trace_export: String,
    /// The final rendered image, byte for byte.
    image: Vec<u8>,
    /// `colza.exec.aborted`: execute handlers that aborted on a revoked
    /// communicator (one per survivor).
    aborted: u64,
    /// `colza.exec.recoveries`: client-side abort-and-recover cycles.
    recoveries: u64,
    /// `mona.revoke.sent`: revoke notices delivered to survivors.
    revoke_sent: u64,
    /// Replica promotions at either promotion point.
    promoted: u64,
}

/// One deterministic run of the ISSUE acceptance scenario: a staging
/// server is killed *inside a MoNA collective round* of `execute`. The
/// kill switch is a send-count crash rule — the victim's Nth MoNA-plane
/// send is its moment of death, and everything outbound from the node is
/// silently dropped from then on — so death lands at the same protocol
/// step every run. Survivors revoke the communicator instead of hanging,
/// their execute handlers reply `IterationAborted`, and the client's
/// `execute_with_recovery` re-runs the activate 2PC on the shrunk view
/// and re-executes the iteration from store replicas.
///
/// The randomized planes stay clean (no loss): the client's recovery
/// spinning is wall-clock-paced, and seq-consuming randomization would
/// couple the fault stream to host timing. The chaos here is the crash.
fn collective_crash_run(seed: u64, tag: &str) -> CollectiveCrashOutcome {
    const BLOCKS: u64 = 4;
    let plan = rpc_scoped(FaultPlan::seeded(seed));
    let (cluster, fabric, mut cfg) = env(&format!("collcrash-{tag}"), plan);
    cluster.shared().tracer().set_enabled(true);
    cfg.tick_interval = Duration::from_secs(3600); // harness-driven only
    cfg.auto_repair = false; // all migration at the 2PC boundary
    // The per-operation deadline backstop is armed but generous: SWIM
    // (harness-driven, fast) detects the death first; the deadline only
    // protects against a failure detector that never fires.
    cfg.mona.fault.recv_deadline = Some(Duration::from_secs(5));
    let mut daemons: Vec<ColzaDaemon> = (0..3)
        .map(|i| ColzaDaemon::spawn(&cluster, &fabric, i, cfg.clone()))
        .collect();
    for _ in 0..60 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    assert!(
        daemons.iter().all(|d| d.view().len() == 3),
        "serialized gossip failed to converge"
    );
    let contact = daemons[0].address();

    // The victim is block 0's primary under the ring the client and the
    // servers share, so its crash provably forces replica promotion.
    let members: Vec<Address> = {
        let mut m: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        m.sort_unstable();
        m
    };
    let ring_cfg = RingConfig {
        replication: 2,
        ..RingConfig::default()
    };
    let shared = Arc::clone(cluster.shared());
    let ring = HashRing::build(&members, |a| shared.node_of(a.pid()), ring_cfg);
    let victim_addr = ring.primary(&BlockKey::new("m", 0)).unwrap();
    let victim_idx = daemons
        .iter()
        .position(|d| d.address() == victim_addr)
        .unwrap();
    let victim_node = shared.node_of(victim_addr.pid()).unwrap();
    // Arm the kill switch: the victim's 3rd MoNA-plane send — inside the
    // execute collectives (a 3-rank collective is send-light, so the
    // budget must be small to land mid-stream) — is the last thing it
    // ever produces.
    cluster.shared().faults().crash_after_sends_now(
        victim_node,
        na::tags::MONA_BASE,
        na::tags::MPI_BASE - 1,
        2,
    );

    let script = catalyst::PipelineScript::mandelbulb(48, 48).to_json();
    let f2 = fabric.clone();
    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<()>(1);
    let (executed_tx, executed_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "catalyst", "m", &script)
            .unwrap();
        let mut handle = client.distributed_handle(contact, "m").unwrap();
        handle.set_replication(2);
        // Short per-try: the victim's reply is swallowed, so the call to
        // it must be re-probed (and fail `Unreachable` once the harness
        // closes the endpoint) without a ten-second stall.
        handle.set_heavy_retry(RetryConfig {
            max_attempts: 0,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            per_try_timeout: Duration::from_secs(2),
            deadline: Some(Duration::from_secs(120)),
            ..Default::default()
        });
        let bulb = sims::mandelbulb::Mandelbulb {
            dims: [12, 12, 12],
            ..Default::default()
        };
        handle.activate(0).unwrap();
        for b in 0..BLOCKS {
            let payload =
                colza::codec::dataset_to_bytes(&bulb.generate_block(b as usize, BLOCKS as usize));
            handle
                .stage(
                    BlockMeta::new("m", b, 0, payload.len()),
                    &payload,
                )
                .unwrap();
        }
        staged_tx.send(()).unwrap();
        // The crash lands inside this call's collective; survivors abort
        // retryably and recovery (refresh + re-activate + re-execute on
        // the shrunk view) is automatic.
        handle
            .execute_with_recovery(0)
            .expect("iteration must recover from the mid-collective crash");
        let img = handle.fetch_result().unwrap().expect("image");
        executed_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        handle.deactivate(0).unwrap();
        margo.finalize();
        img
    });

    staged_rx.recv().unwrap();
    // Wait for the victim's send budget to trip mid-collective.
    let mut tripped = false;
    for _ in 0..30_000 {
        if cluster.shared().faults().crash_tripped(victim_node) {
            tripped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(tripped, "the victim never hit its send-count crash budget");
    // A real crash leaves no open mailbox: close the victim's endpoint so
    // survivors' sends to it fail fast with `Unreachable` and the
    // client's re-probe does too.
    daemons.remove(victim_idx).kill();
    // Serialized SWIM rounds until both survivors declare the death.
    let mut rounds = 0;
    while daemons.iter().any(|d| d.view().contains(&victim_addr)) {
        for d in &daemons {
            d.tick_sync();
        }
        rounds += 1;
        assert!(rounds < 500, "survivors never declared the victim dead");
    }
    for _ in 0..10 {
        for d in &daemons {
            d.tick_sync();
        }
    }

    executed_rx.recv().unwrap();
    // Post-recovery, pre-deactivate: every block is fed exactly once
    // across the surviving group.
    for b in 0..BLOCKS {
        let fed: usize = daemons
            .iter()
            .flat_map(|d| d.provider().store().snapshot())
            .filter(|x| x.key.block_id == b && x.fed)
            .count();
        assert_eq!(fed, 1, "block {b} must feed exactly one backend");
    }
    done_tx.send(()).unwrap();
    let img = sim.join();

    let snap = cluster.shared().trace_snapshot();
    let mut trace = cluster.shared().faults().trace();
    trace.sort_unstable();
    let trace_export = trace
        .iter()
        .map(|r| format!("{r:?}"))
        .collect::<Vec<_>>()
        .join("\n");
    let out = CollectiveCrashOutcome {
        trace_export,
        image: img,
        aborted: snap.counter_total("colza.exec.aborted"),
        recoveries: snap.counter_total("colza.exec.recoveries"),
        revoke_sent: snap.counter_total("mona.revoke.sent"),
        promoted: snap.counter_total("colza.store.promoted.blocks")
            + snap.counter_total("colza.store.exec.promoted"),
    };
    for d in daemons {
        d.stop();
    }
    out
}

/// ISSUE acceptance: a server killed mid-execute — inside a MoNA
/// collective round, via the send-count crash rule — causes no hang.
/// Survivors get `Revoked` and abort, the client re-activates on the
/// shrunk view and re-executes from store replicas, and two same-seed
/// runs produce byte-identical output and fault traces.
#[test]
fn mid_collective_crash_aborts_and_recovers_deterministically() {
    let seed = chaos_seed();
    let a = collective_crash_run(seed, "a");
    assert_eq!(a.aborted, 2, "both survivors must abort the iteration");
    assert!(a.recoveries >= 1, "the client must run abort-and-recover");
    assert!(a.revoke_sent >= 1, "survivors must exchange revoke notices");
    assert!(a.promoted >= 1, "the victim's primaries must be promoted");
    assert!(
        !a.trace_export.is_empty(),
        "the crash rule must have swallowed the victim's sends"
    );
    assert!(
        vizkit::Image::from_bytes(&a.image).coverage() > 0.0,
        "recovered iteration rendered an empty image"
    );
    let b = collective_crash_run(seed, "b");
    assert_eq!(a, b, "crash-recovery outcomes diverged for one seed");
}

/// Everything one run of the codec crash-repair scenario produced that
/// must be identical across runs with the same seed.
#[derive(Debug, PartialEq)]
struct CodecCrashOutcome {
    /// Canonical (sorted, line-per-record) export of the fault trace.
    trace_export: String,
    /// The recovered iteration's rendered image, byte for byte.
    image: Vec<u8>,
    /// Replica promotions at either promotion point.
    promoted: u64,
    /// `colza.store.recv.blocks`: blocks received over server pushes.
    pushed: u64,
    /// `colza.codec.enc.delta_diff.frames`: delta frames the client cut.
    delta_frames: u64,
    /// Per-survivor `(address, blocks held, staged encoded bytes)`, sorted.
    survivors: Vec<(u64, usize, u64)>,
}

/// A smooth "v" field block for the Gray–Scott render script: spans the
/// contour isovalues, drifts slightly per iteration (so iteration 1 is a
/// genuine small delta over iteration 0, same byte length).
fn codec_block_payload(dim: usize, block: u64, iteration: u64) -> Bytes {
    use vizkit::data::{DataArray, ImageData};
    let mut g = ImageData::new([dim, dim, dim]);
    g.origin = [0.0, 0.0, (block as usize * dim) as f32];
    let v: Vec<f32> = (0..dim * dim * dim)
        .map(|j| {
            let phase = j as f32 * 0.05 + block as f32;
            0.3 + 0.25 * phase.sin() + 0.002 * iteration as f32
        })
        .collect();
    g.point_data.set("v", DataArray::F32(v));
    colza::codec::dataset_to_bytes(&vizkit::DataSet::Image(g))
}

/// One deterministic run of the codec crash-repair scenario (DESIGN.md
/// §13): the client stages with the delta codec, so iteration 0 anchors
/// full frames and iteration 1 cuts delta-diff frames against them. Block
/// 0's primary — holding compressed, delta-encoded blocks — is killed
/// after the iteration-1 stage and before its execute. Recovery promotes
/// the dead server's replicas (decoding from their eagerly reconstructed
/// plains) and re-replicates over server pushes that carry the diff frame
/// plus the reconstructed plain, so the fresh owner never needs a base
/// the survivor set lost. The recovered execute then renders the image.
fn codec_crash_run(seed: u64, tag: &str) -> CodecCrashOutcome {
    const BLOCKS: u64 = 4;
    const DIM: usize = 12;

    let plan = rpc_scoped(FaultPlan::seeded(seed).with_loss(0.01));
    let (cluster, fabric, mut cfg) = env(&format!("codec-crash-{tag}"), plan);
    cluster.shared().tracer().set_enabled(true);
    cfg.tick_interval = Duration::from_secs(3600); // harness-driven only
    cfg.auto_repair = false; // all migration at the 2PC boundary
    let mut daemons: Vec<ColzaDaemon> = (0..3)
        .map(|i| ColzaDaemon::spawn(&cluster, &fabric, i, cfg.clone()))
        .collect();
    for _ in 0..60 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    assert!(
        daemons.iter().all(|d| d.view().len() == 3),
        "serialized gossip failed to converge"
    );
    let contact = daemons[0].address();

    // The victim is block 0's primary under the shared ring.
    let members: Vec<Address> = {
        let mut m: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        m.sort_unstable();
        m
    };
    let ring_cfg = RingConfig {
        replication: 2,
        ..RingConfig::default()
    };
    let shared = Arc::clone(cluster.shared());
    let ring = HashRing::build(&members, |a| shared.node_of(a.pid()), ring_cfg);
    let victim_addr = ring.primary(&BlockKey::new("g", 0)).unwrap();
    let victim_idx = daemons
        .iter()
        .position(|d| d.address() == victim_addr)
        .unwrap();

    let script = catalyst::PipelineScript::gray_scott(48, 48).to_json();
    let f2 = fabric.clone();
    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<()>(1);
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (executed_tx, executed_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "catalyst", "g", &script)
            .unwrap();
        let mut handle = client.distributed_handle(contact, "g").unwrap();
        handle.set_replication(2);
        handle.set_codec(colza::CodecConfig::uniform(colza::CodecSpec::Delta));

        // Iteration 0: every block anchors a self-contained full frame.
        handle.activate(0).unwrap();
        for b in 0..BLOCKS {
            let payload = codec_block_payload(DIM, b, 0);
            handle
                .stage(BlockMeta::new("g", b, 0, payload.len()), &payload)
                .unwrap();
        }
        handle.execute(0).unwrap();
        handle.deactivate(0).unwrap();

        // Iteration 1: same-shaped blocks ride as delta-diff frames.
        handle.activate(1).unwrap();
        for b in 0..BLOCKS {
            let payload = codec_block_payload(DIM, b, 1);
            handle
                .stage(BlockMeta::new("g", b, 1, payload.len()), &payload)
                .unwrap();
        }
        staged_tx.send(()).unwrap();
        killed_rx.recv().unwrap();

        // The frozen member list still names the dead primary.
        let r = handle.execute(1);
        assert!(
            matches!(&r, Err(e) if e.is_retryable()),
            "execute against the crashed member must fail retryably: {r:?}"
        );
        handle.refresh_view().unwrap();
        assert_eq!(handle.members().len(), 2);
        handle.activate(1).unwrap();
        handle.execute(1).unwrap();
        let img = handle.fetch_result().unwrap().expect("image");
        executed_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        handle.deactivate(1).unwrap();
        margo.finalize();
        img
    });

    staged_rx.recv().unwrap();
    // Quiesced crash point: client is blocked, daemons are idle.
    daemons.remove(victim_idx).kill();
    let mut rounds = 0;
    while daemons.iter().any(|d| d.view().contains(&victim_addr)) {
        for d in &daemons {
            d.tick_sync();
        }
        rounds += 1;
        assert!(rounds < 500, "survivors never declared the victim dead");
    }
    for _ in 0..10 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    killed_tx.send(()).unwrap();

    executed_rx.recv().unwrap();
    // Post-recovery, pre-deactivate: both survivors hold every iteration-1
    // block and each block fed exactly one backend.
    for d in &daemons {
        assert_eq!(d.provider().store().len(), BLOCKS as usize);
    }
    for b in 0..BLOCKS {
        let fed: usize = daemons
            .iter()
            .flat_map(|d| d.provider().store().snapshot())
            .filter(|x| x.key.block_id == b && x.fed)
            .count();
        assert_eq!(fed, 1, "block {b} must feed exactly one backend");
    }
    done_tx.send(()).unwrap();
    let img = sim.join();

    let snap = cluster.shared().trace_snapshot();
    // Every reconstructed plain a push carried was received in full.
    assert_eq!(
        snap.counter_total("colza.codec.push.plain_bytes"),
        snap.counter_total("colza.store.recv.plain_bytes"),
        "pushed and received plain-payload bytes disagree"
    );
    let mut survivors: Vec<(u64, usize, u64)> = daemons
        .iter()
        .map(|d| {
            let s = d.provider().store();
            (d.address().0, s.len(), s.staged_bytes())
        })
        .collect();
    survivors.sort_unstable();
    let mut trace = cluster.shared().faults().trace();
    trace.sort_unstable();
    let trace_export = trace
        .iter()
        .map(|r| format!("{r:?}"))
        .collect::<Vec<_>>()
        .join("\n");
    let out = CodecCrashOutcome {
        trace_export,
        image: img,
        promoted: snap.counter_total("colza.store.promoted.blocks")
            + snap.counter_total("colza.store.exec.promoted"),
        pushed: snap.counter_total("colza.store.recv.blocks"),
        delta_frames: snap.counter_total("colza.codec.enc.delta_diff.frames"),
        survivors,
    };
    for d in daemons {
        d.stop();
    }
    out
}

/// ISSUE acceptance: a crashed primary holding compressed, delta-encoded
/// blocks is repaired from replicas, the next execute renders, and two
/// same-seed runs produce byte-identical images and fault traces.
#[test]
fn crashed_primary_with_delta_blocks_repairs_and_renders_deterministically() {
    let seed = chaos_seed();
    let a = codec_crash_run(seed, "a");
    assert!(
        a.delta_frames >= 1,
        "iteration 1 must have staged delta-diff frames"
    );
    assert!(a.promoted >= 1, "the victim's blocks must be promoted");
    assert!(a.pushed >= 1, "re-replication must push blocks");
    assert!(
        vizkit::Image::from_bytes(&a.image).coverage() > 0.0,
        "recovered iteration rendered an empty image"
    );
    let b = codec_crash_run(seed, "b");
    assert_eq!(
        a.trace_export, b.trace_export,
        "fault-trace exports diverged for one seed"
    );
    assert_eq!(a, b, "codec crash-repair outcomes diverged for one seed");
}

/// Satellite: an admin `request_leave` lands while the client is mid-
/// iteration, still staging. The leaver drains its blocks to the
/// surviving owners (refusing any stage that races past the drain
/// snapshot), the client re-routes refused/failed blocks through the
/// surviving view, and at the end every block is held and fed exactly
/// once — nothing rides the leaver down.
#[test]
fn request_leave_during_staging_loses_no_block() {
    const BLOCKS: u64 = 6;
    let total_bytes: u64 = (0..BLOCKS).map(|b| 256 * (b + 1)).sum();
    let plan = rpc_scoped(FaultPlan::seeded(chaos_seed()).with_loss(0.01));
    let (cluster, fabric, cfg) = env("leave-stage", plan);
    let daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();
    let members: Vec<Address> = {
        let mut m: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        m.sort_unstable();
        m
    };
    // Leave the server that owns block 0, so at least one staged block
    // must provably survive the departure.
    let shared = Arc::clone(cluster.shared());
    let ring = HashRing::build(&members, |a| shared.node_of(a.pid()), RingConfig::default());
    let victim_addr = ring.primary(&BlockKey::new("p", 0)).unwrap();

    let f2 = fabric.clone();
    let (executed_tx, executed_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        handle.activate(0).unwrap();
        for b in 0..BLOCKS {
            if b == 2 {
                // Mid-staging shrink trigger: the victim starts draining
                // while blocks are still arriving.
                admin.request_leave(victim_addr).unwrap();
            }
            let payload = Bytes::from(vec![b as u8 + 1; 256 * (b as usize + 1)]);
            let meta = BlockMeta::new("x", b, 0, payload.len());
            let mut ok = false;
            for _ in 0..600 {
                match handle.stage(meta.clone(), &payload) {
                    Ok(()) => {
                        ok = true;
                        break;
                    }
                    Err(e) if e.is_retryable() => {
                        // Draining refusal or dead target: wait out the
                        // view change and re-route.
                        let _ = handle.refresh_view();
                        std::thread::sleep(Duration::from_millis(3));
                    }
                    Err(e) => panic!("stage hard-failed: {e}"),
                }
            }
            assert!(ok, "block {b} was never staged");
        }
        let mut done = false;
        for _ in 0..600 {
            match handle.execute(0) {
                Ok(_) => {
                    done = true;
                    break;
                }
                Err(e) if e.is_retryable() => {
                    std::thread::sleep(Duration::from_millis(3));
                    let _ = handle.refresh_view();
                    // Re-commit the iteration on the fresh view; the
                    // commit sync re-feeds drained blocks' new primaries.
                    let _ = handle.activate(0);
                }
                Err(e) => panic!("execute hard-failed: {e}"),
            }
        }
        assert!(done, "execute never completed after the leave");
        executed_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        for _ in 0..600 {
            match handle.deactivate(0) {
                Ok(()) => break,
                Err(e) if e.is_retryable() => {
                    let _ = handle.refresh_view();
                    std::thread::sleep(Duration::from_millis(3));
                }
                Err(e) => panic!("deactivate hard-failed: {e}"),
            }
        }
        margo.finalize();
    });

    executed_rx.recv().unwrap();
    // Wait for the departure to fully settle — drain finished (the
    // leaver's store is empty) and the survivors no longer list it — so
    // holdings are quiescent before asserting on them.
    let victim = daemons
        .iter()
        .position(|d| d.address() == victim_addr)
        .unwrap();
    let mut settled = false;
    for _ in 0..5000 {
        let gone = daemons
            .iter()
            .enumerate()
            .all(|(i, d)| i == victim || !d.view().contains(&victim_addr));
        if gone && daemons[victim].provider().store().is_empty() {
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(settled, "the leave never completed");
    // Post-execute, pre-deactivate: every block exists somewhere, is fed
    // exactly once across the whole group, and no byte went missing.
    let mut held_bytes = 0u64;
    for b in 0..BLOCKS {
        let copies: Vec<_> = daemons
            .iter()
            .flat_map(|d| d.provider().store().snapshot())
            .filter(|x| x.key.block_id == b)
            .collect();
        assert!(!copies.is_empty(), "block {b} was lost in the leave");
        assert_eq!(
            copies.iter().filter(|x| x.fed).count(),
            1,
            "block {b} must feed exactly one backend"
        );
        held_bytes += copies.iter().map(|x| x.data.len() as u64).sum::<u64>();
    }
    assert_eq!(held_bytes, total_bytes, "bytes lost or duplicated");
    done_tx.send(()).unwrap();
    sim.join();

    for d in daemons {
        // The leaver may have already shut down on its own; `stop` on the
        // survivors, `wait` is implicit in stop's join.
        d.stop();
    }
}

/// The original end-to-end failure scenario, now with 1% message loss on
/// top of the crash: SWIM still detects the kill and the protocol still
/// recovers on the survivors.
#[test]
fn killed_server_is_detected_under_one_percent_loss() {
    let plan = rpc_scoped(FaultPlan::seeded(chaos_seed()).with_loss(0.01));
    let (cluster, fabric, cfg) = env("killloss", plan);
    let mut daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();
    let victim = daemons.remove(2);
    let victim_addr = victim.address();

    let f2 = fabric.clone();
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (ready_tx, ready_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        assert_eq!(view.len(), 3);
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        handle.activate(0).unwrap();
        handle.execute(0).unwrap();
        handle.deactivate(0).unwrap();

        ready_tx.send(()).unwrap();
        killed_rx.recv().unwrap();
        for _ in 0..600 {
            if client.view_from(contact).map(|v| !v.contains(&victim_addr)) == Ok(true) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.refresh_view().unwrap();
        handle.activate(1).unwrap();
        let n = handle.members().len();
        handle.execute(1).unwrap();
        handle.deactivate(1).unwrap();
        margo.finalize();
        n
    });

    ready_rx.recv().unwrap();
    victim.kill();
    for _ in 0..400 {
        for d in &daemons {
            d.tick();
        }
        if daemons.iter().all(|d| !d.view().contains(&victim_addr)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    killed_tx.send(()).unwrap();
    let n = sim.join();
    assert_eq!(n, 2, "protocol must continue on the survivors despite loss");
    for d in daemons {
        d.stop();
    }
}

/// Everything one run of the noisy-tenant crash scenario produced that
/// must be identical across runs with the same seed.
#[derive(Debug, PartialEq)]
struct TenantCrashOutcome {
    /// Canonical (sorted, line-per-record) export of the fault trace.
    trace_export: String,
    /// Quota refusals the noisy tenant's flood collected client-side.
    client_refusals: u64,
    /// `colza.qos.quota.refused`: server-side refusals (the flood plus
    /// any over-quota repair pushes after the crash).
    refused: u64,
    /// Replica promotions at either promotion point.
    promoted: u64,
    /// `colza.store.recv.blocks`: blocks received over server pushes.
    pushed: u64,
    /// Per-survivor `(address, wb staged bytes, noisy staged bytes)` at
    /// the post-recovery, pre-deactivate quiesce point, sorted.
    survivors: Vec<(u64, u64, u64)>,
}

/// The tenancy policy for the crash scenario: the noisy tenant gets a
/// 2.5-block per-server quota, the well-behaved tenant is unlimited.
fn tenant_crash_policy(block: usize) -> TenancyConfig {
    TenancyConfig::enforcing()
        .with_tenant(
            "noisy",
            TenantConfig {
                staged_byte_quota: 2 * block as u64 + block as u64 / 2,
                priority: PriorityClass::Bronze,
                ..TenantConfig::default()
            },
        )
        .with_tenant(
            "wb",
            TenantConfig {
                priority: PriorityClass::Gold,
                ..TenantConfig::default()
            },
        )
}

/// One deterministic run of the noisy-tenant crash scenario: two tenants
/// share a three-daemon staging area (replication 2, quotas enforced).
/// The well-behaved tenant stages four blocks; the noisy tenant floods
/// until its per-server quota bounces it. Then the noisy pipeline's
/// block-0 primary is killed at a quiesced point mid-iteration. Recovery
/// (view refresh, re-activate, commit-boundary sync) promotes replicas
/// and re-replicates — with repair pushes of *noisy* blocks themselves
/// subject to the quota on the receiving server — and the well-behaved
/// tenant's data comes through fully replicated. After release, the
/// noisy tenant's backed-off stage goes through: crash repair and quota
/// backpressure compose.
fn tenant_crash_run(seed: u64, tag: &str) -> TenantCrashOutcome {
    const WB_BLOCKS: u64 = 4;
    const NOISY_BLOCK: usize = 1024;
    /// Flood size: 6 blocks × 2 copies over 3 servers lands ≥ 4 KiB on
    /// some server — past the 2.5 KiB quota, so refusal is guaranteed.
    const NOISY_FLOOD: u64 = 6;
    let wb_total: u64 = (0..WB_BLOCKS).map(|b| 256 * (b + 1)).sum();

    let plan = rpc_scoped(FaultPlan::seeded(seed).with_loss(0.01));
    let (cluster, fabric, mut cfg) = env(&format!("tenant-crash-{tag}"), plan);
    cluster.shared().tracer().set_enabled(true);
    cfg.tick_interval = Duration::from_secs(3600); // harness-driven only
    cfg.auto_repair = false; // all migration at the 2PC boundary
    cfg.tenancy = tenant_crash_policy(NOISY_BLOCK);
    let mut daemons: Vec<ColzaDaemon> = (0..3)
        .map(|i| ColzaDaemon::spawn(&cluster, &fabric, i, cfg.clone()))
        .collect();
    for _ in 0..60 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    assert!(
        daemons.iter().all(|d| d.view().len() == 3),
        "serialized gossip failed to converge"
    );
    let contact = daemons[0].address();

    // The victim is the noisy pipeline's block-0 primary under the ring
    // the client and the servers share.
    let members: Vec<Address> = {
        let mut m: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        m.sort_unstable();
        m
    };
    let ring_cfg = RingConfig {
        replication: 2,
        ..RingConfig::default()
    };
    let shared = Arc::clone(cluster.shared());
    let ring = HashRing::build(&members, |a| shared.node_of(a.pid()), ring_cfg);
    let victim_addr = ring.primary(&BlockKey::new("noisy", 0)).unwrap();
    let victim_idx = daemons
        .iter()
        .position(|d| d.address() == victim_addr)
        .unwrap();

    let f2 = fabric.clone();
    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<()>(1);
    let (killed_tx, killed_rx) = crossbeam::channel::bounded::<()>(1);
    let (recovered_tx, recovered_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin.create_pipeline_on_all(&view, "null", "wb", "").unwrap();
        admin
            .create_pipeline_on_all(&view, "null", "noisy", "")
            .unwrap();
        let mut wb = client.distributed_handle(contact, "wb").unwrap();
        wb.set_replication(2);
        wb.set_tenant("wb");
        let mut noisy = client.distributed_handle(contact, "noisy").unwrap();
        noisy.set_replication(2);
        noisy.set_tenant("noisy");

        // The well-behaved tenant stages its iteration.
        wb.activate(0).unwrap();
        for b in 0..WB_BLOCKS {
            let payload = Bytes::from(vec![b as u8 + 1; 256 * (b as usize + 1)]);
            wb.stage(BlockMeta::new("w", b, 0, payload.len()), &payload)
                .unwrap();
        }
        // The noisy tenant floods until the per-server quota bounces it.
        noisy.activate(0).unwrap();
        let noisy_payload = Bytes::from(vec![0xAAu8; NOISY_BLOCK]);
        let mut refusals = 0u64;
        for b in 0..NOISY_FLOOD {
            match noisy.stage(BlockMeta::new("f", b, 0, NOISY_BLOCK), &noisy_payload) {
                Ok(()) => {}
                Err(ColzaError::QuotaExceeded(_)) => refusals += 1,
                Err(e) => panic!("flood hit a non-quota error: {e}"),
            }
        }
        assert!(refusals >= 1, "the flood never hit the quota");
        staged_tx.send(()).unwrap();
        killed_rx.recv().unwrap();

        // The frozen views still name the dead member: executes fail
        // fast and retryably; recovery is refresh + re-activate (the
        // commit sync promotes replicas and re-replicates) + execute.
        for handle in [&wb, &noisy] {
            let r = handle.execute(0);
            assert!(
                matches!(&r, Err(e) if e.is_retryable()),
                "execute against the crashed member must fail retryably: {r:?}"
            );
            handle.refresh_view().unwrap();
            assert_eq!(handle.members().len(), 2);
            handle.activate(0).unwrap();
            handle.execute(0).unwrap();
        }
        recovered_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        wb.deactivate(0).unwrap();
        noisy.deactivate(0).unwrap();

        // The release freed the noisy tenant's quota: a backed-off stage
        // for the next iteration goes straight through on the shrunk,
        // repaired staging area.
        noisy.activate(1).unwrap();
        noisy
            .stage_with_backpressure(
                BlockMeta::new("f", 0, 1, NOISY_BLOCK),
                &noisy_payload,
                Duration::from_secs(2),
            )
            .expect("post-release stage must ride through");
        noisy.execute(1).unwrap();
        noisy.deactivate(1).unwrap();
        margo.finalize();
        refusals
    });

    staged_rx.recv().unwrap();
    // Quiesced crash point: client is blocked, daemons are idle.
    daemons.remove(victim_idx).kill();
    // Serialized SWIM rounds until both survivors declare the death.
    let mut rounds = 0;
    while daemons.iter().any(|d| d.view().contains(&victim_addr)) {
        for d in &daemons {
            d.tick_sync();
        }
        rounds += 1;
        assert!(rounds < 500, "survivors never declared the victim dead");
    }
    for _ in 0..10 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    killed_tx.send(()).unwrap();

    recovered_rx.recv().unwrap();
    // Post-recovery, pre-deactivate: with k = 2 over 2 survivors, the
    // well-behaved tenant's blocks are fully replicated — every survivor
    // holds all of them — regardless of what the noisy flood did.
    let survivors: Vec<(u64, u64, u64)> = {
        let mut v: Vec<(u64, u64, u64)> = daemons
            .iter()
            .map(|d| {
                let s = d.provider().store();
                (
                    d.address().0,
                    s.tenant_staged_bytes("wb"),
                    s.tenant_staged_bytes("noisy"),
                )
            })
            .collect();
        v.sort_unstable();
        v
    };
    for &(addr, wb_bytes, _) in &survivors {
        assert_eq!(
            wb_bytes, wb_total,
            "survivor {addr} lost well-behaved blocks to the noisy crash"
        );
    }
    // The quota still binds on the survivors: neither exceeds it even
    // after crash repair re-replicated the noisy tenant's blocks.
    let quota = tenant_crash_policy(NOISY_BLOCK)
        .config_for(&colza::TenantId::new("noisy"))
        .staged_byte_quota;
    for &(addr, _, noisy_bytes) in &survivors {
        assert!(
            noisy_bytes <= quota,
            "survivor {addr} holds {noisy_bytes} noisy bytes over quota {quota}"
        );
    }
    done_tx.send(()).unwrap();
    let client_refusals = sim.join();

    let snap = cluster.shared().trace_snapshot();
    let mut trace = cluster.shared().faults().trace();
    trace.sort_unstable();
    let trace_export = trace
        .iter()
        .map(|r| format!("{r:?}"))
        .collect::<Vec<_>>()
        .join("\n");
    let out = TenantCrashOutcome {
        trace_export,
        client_refusals,
        refused: snap.counter_total("colza.qos.quota.refused"),
        promoted: snap.counter_total("colza.store.promoted.blocks")
            + snap.counter_total("colza.store.exec.promoted"),
        pushed: snap.counter_total("colza.store.recv.blocks"),
        survivors,
    };
    for d in daemons {
        d.stop();
    }
    out
}

/// ISSUE acceptance (multi-tenant chaos): the noisy tenant's primary
/// crashes mid-flood; crash repair and quota backpressure interact on
/// the survivors; the well-behaved tenant's blocks come through fully
/// replicated; and the same seed yields a byte-identical fault trace and
/// outcome.
#[test]
fn noisy_tenant_crash_repairs_without_losing_the_well_behaved_tenant() {
    let seed = chaos_seed();
    let a = tenant_crash_run(seed, "a");
    assert!(a.client_refusals >= 1, "the flood never bounced off quota");
    assert!(
        a.refused >= a.client_refusals,
        "server-side refusals ({}) below the client's ({})",
        a.refused,
        a.client_refusals
    );
    assert!(a.promoted >= 1, "the victim's primaries must be promoted");
    assert!(a.pushed >= 1, "re-replication must push blocks");
    assert!(!a.trace_export.is_empty(), "1% loss injected nothing");
    let b = tenant_crash_run(seed, "b");
    assert_eq!(
        a.trace_export, b.trace_export,
        "fault-trace exports diverged for one seed"
    );
    assert_eq!(a, b, "tenant-crash outcomes diverged for one seed");
}

/// Everything one run of the triggered-crash scenario produced that must
/// be identical across runs with the same seed.
#[derive(Debug, PartialEq)]
struct TriggeredCrashOutcome {
    /// Canonical (sorted, line-per-record) export of the fault trace.
    trace_export: String,
    /// The recovered triggered iteration's rendered image, byte for byte.
    image: Vec<u8>,
    /// The decision the recovered execute returned.
    outcome: colza::ExecOutcome,
    /// `colza.exec.aborted` / `colza.exec.recoveries`.
    aborted: u64,
    recoveries: u64,
    /// `colza.trigger.skipped`: must stay 0 — the decision never flips.
    skipped: u64,
}

/// One deterministic run of the trigger chaos scenario (DESIGN.md §15):
/// a server is killed mid-iteration — inside the execute collectives —
/// on an iteration whose trigger *fires*. The send-count crash rule can
/// land inside the fused stats allreduce itself, so recovery must
/// re-evaluate the trigger from scratch on the shrunk view: the
/// surviving ranks rebuild identical global stats from store replicas
/// and reach the same `run` decision.
fn triggered_crash_run(seed: u64, tag: &str) -> TriggeredCrashOutcome {
    const BLOCKS: u64 = 4;
    let plan = rpc_scoped(FaultPlan::seeded(seed));
    let (cluster, fabric, mut cfg) = env(&format!("trigcrash-{tag}"), plan);
    cluster.shared().tracer().set_enabled(true);
    cfg.tick_interval = Duration::from_secs(3600); // harness-driven only
    cfg.auto_repair = false; // all migration at the 2PC boundary
    cfg.mona.fault.recv_deadline = Some(Duration::from_secs(5));
    let mut daemons: Vec<ColzaDaemon> = (0..3)
        .map(|i| ColzaDaemon::spawn(&cluster, &fabric, i, cfg.clone()))
        .collect();
    for _ in 0..60 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    assert!(
        daemons.iter().all(|d| d.view().len() == 3),
        "serialized gossip failed to converge"
    );
    let contact = daemons[0].address();

    let members: Vec<Address> = {
        let mut m: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        m.sort_unstable();
        m
    };
    let ring_cfg = RingConfig {
        replication: 2,
        ..RingConfig::default()
    };
    let shared = Arc::clone(cluster.shared());
    let ring = HashRing::build(&members, |a| shared.node_of(a.pid()), ring_cfg);
    let victim_addr = ring.primary(&BlockKey::new("t", 0)).unwrap();
    let victim_idx = daemons
        .iter()
        .position(|d| d.address() == victim_addr)
        .unwrap();
    let victim_node = shared.node_of(victim_addr.pid()).unwrap();
    cluster.shared().faults().crash_after_sends_now(
        victim_node,
        na::tags::MONA_BASE,
        na::tags::MPI_BASE - 1,
        2,
    );

    // A triggered mandelbulb: the escape field tops out near 30, so the
    // gate fires on this iteration's data, and the reparam keeps the
    // contour fed from the same fused stats the gate consumed.
    let mut s = catalyst::PipelineScript::mandelbulb(48, 48);
    s.triggers = vec![
        catalyst::TriggerSpec::new("max(iterations) > 10", "run"),
        catalyst::TriggerSpec::new(
            "max(iterations) > 10",
            "contour(iterations, mean(iterations) + range(iterations) / 4)",
        ),
    ];
    let script = s.to_json();

    let f2 = fabric.clone();
    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<()>(1);
    let (executed_tx, executed_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "catalyst", "t", &script)
            .unwrap();
        let mut handle = client.distributed_handle(contact, "t").unwrap();
        handle.set_replication(2);
        handle.set_heavy_retry(RetryConfig {
            max_attempts: 0,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            per_try_timeout: Duration::from_secs(2),
            deadline: Some(Duration::from_secs(120)),
            ..Default::default()
        });
        let bulb = sims::mandelbulb::Mandelbulb {
            dims: [12, 12, 12],
            ..Default::default()
        };
        handle.activate(0).unwrap();
        for b in 0..BLOCKS {
            let payload =
                colza::codec::dataset_to_bytes(&bulb.generate_block(b as usize, BLOCKS as usize));
            handle
                .stage(BlockMeta::new("t", b, 0, payload.len()), &payload)
                .unwrap();
        }
        staged_tx.send(()).unwrap();
        // The crash lands inside this call's collectives — possibly the
        // fused stats allreduce the trigger itself is evaluating over.
        let outcome = handle
            .execute_with_recovery(0)
            .expect("triggered iteration must recover from the crash");
        let img = handle.fetch_result().unwrap().expect("image");
        executed_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        handle.deactivate(0).unwrap();
        margo.finalize();
        (outcome, img)
    });

    staged_rx.recv().unwrap();
    let mut tripped = false;
    for _ in 0..30_000 {
        if cluster.shared().faults().crash_tripped(victim_node) {
            tripped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(tripped, "the victim never hit its send-count crash budget");
    daemons.remove(victim_idx).kill();
    let mut rounds = 0;
    while daemons.iter().any(|d| d.view().contains(&victim_addr)) {
        for d in &daemons {
            d.tick_sync();
        }
        rounds += 1;
        assert!(rounds < 500, "survivors never declared the victim dead");
    }
    for _ in 0..10 {
        for d in &daemons {
            d.tick_sync();
        }
    }

    executed_rx.recv().unwrap();
    done_tx.send(()).unwrap();
    let (outcome, img) = sim.join();

    let snap = cluster.shared().trace_snapshot();
    let mut trace = cluster.shared().faults().trace();
    trace.sort_unstable();
    let trace_export = trace
        .iter()
        .map(|r| format!("{r:?}"))
        .collect::<Vec<_>>()
        .join("\n");
    let out = TriggeredCrashOutcome {
        trace_export,
        image: img,
        outcome,
        aborted: snap.counter_total("colza.exec.aborted"),
        recoveries: snap.counter_total("colza.exec.recoveries"),
        skipped: snap.counter_total("colza.trigger.skipped"),
    };
    for d in daemons {
        d.stop();
    }
    out
}

/// ISSUE satellite: a server crashes mid-iteration on a *triggered*
/// iteration. The survivors abort retryably, the client re-activates on
/// the shrunk view, and the recovery execute re-evaluates the trigger
/// over stats rebuilt from store replicas — reaching the same `run`
/// decision (never a flip to skip), rendering the image, and replaying
/// byte-identically from the same seed.
#[test]
fn mid_iteration_crash_on_triggered_iteration_recovers_same_decision() {
    let seed = chaos_seed();
    let a = triggered_crash_run(seed, "a");
    assert_eq!(
        a.outcome,
        colza::ExecOutcome::Ran,
        "the trigger must fire on the recovered iteration"
    );
    assert_eq!(a.skipped, 0, "the decision flipped to skip somewhere");
    assert!(a.aborted >= 1, "survivors must abort the crashed attempt");
    assert!(a.recoveries >= 1, "the client must run abort-and-recover");
    assert!(
        vizkit::Image::from_bytes(&a.image).coverage() > 0.0,
        "recovered triggered iteration rendered an empty image"
    );
    let b = triggered_crash_run(seed, "b");
    assert_eq!(a, b, "triggered-crash outcomes diverged for one seed");
}
