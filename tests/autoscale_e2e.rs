//! End-to-end automatic resizing (the paper's §IV-B future-work trigger):
//! the simulation feeds execute durations to the controller; when the
//! growing DWI data pushes analysis time over target, the controller asks
//! the host for more servers and the iteration time comes back down.

use std::sync::Arc;

use colza::daemon::{launch_group, settle_views};
use colza::{
    drain_aware_victims, AdminClient, AutoScaleConfig, AutoScaler, BlockMeta, ColzaClient,
    ColzaDaemon, DaemonConfig, ScaleDecision,
};
use margo::MargoInstance;
use na::Fabric;

#[test]
fn autoscaler_grows_the_staging_area_under_load() {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!("autoscale-e2e-{}.addrs", std::process::id()));
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let mut daemons = launch_group(&cluster, &fabric, 1, 2, 0, &cfg);
    let contact = daemons[0].address();

    let (grow_tx, grow_rx) = crossbeam::channel::bounded::<usize>(4);
    let (grown_tx, grown_rx) = crossbeam::channel::bounded::<Vec<na::Address>>(4);

    let f2 = fabric.clone();
    let sim = cluster.spawn("sim", 10, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let script = catalyst::PipelineScript::deep_water_impact(128, 96).to_json();
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "catalyst", "dwi", &script)
            .unwrap();
        let handle = client.distributed_handle(contact, "dwi").unwrap();
        let series = sims::dwi::DwiSeries {
            total_blocks: 8,
            scale: 1.0 / 2048.0,
            iterations: 16,
        };
        let ctx = hpcsim::current();
        // Target far below what one server can deliver on the late, heavy
        // iterations: growth must trigger.
        let mut scaler = AutoScaler::new(AutoScaleConfig {
            cooldown_iters: 1,
            max_servers: 4,
            ..AutoScaleConfig::with_target(12 * hpcsim::MS)
        });
        let mut grew = 0usize;
        let mut had_join = false;
        let mut sizes = Vec::new();
        for iteration in 0..16u64 {
            handle.activate(iteration).unwrap();
            sizes.push(handle.members().len());
            for b in 0..8usize {
                let ds = vizkit::DataSet::UGrid(series.generate_block(iteration + 1, b));
                let payload = colza::codec::dataset_to_bytes(&ds);
                handle
                    .stage(
                        BlockMeta::new("dwi", b as u64, iteration, payload.len()),
                        &payload,
                    )
                    .unwrap();
            }
            let before = ctx.now();
            handle.execute(iteration).unwrap();
            let span = ctx.now() - before;
            handle.deactivate(iteration).unwrap();

            let decision = scaler.observe(span, handle.members().len(), had_join);
            had_join = false;
            if let ScaleDecision::Grow(n) = decision {
                grow_tx.send(n).unwrap();
                let fresh = grown_rx.recv().unwrap();
                for addr in &fresh {
                    admin
                        .create_pipeline(*addr, "catalyst", "dwi", &script)
                        .unwrap();
                }
                handle.refresh_view().unwrap();
                grew += fresh.len();
                had_join = true;
            }
        }
        margo.finalize();
        (grew, sizes)
    });

    // Host: serve growth requests until the simulation finishes.
    let mut next_node = 1usize;
    while let Ok(n) = grow_rx.recv() {
        let mut fresh = Vec::new();
        for _ in 0..n {
            let d = ColzaDaemon::spawn(&cluster, &fabric, next_node, cfg.clone());
            next_node += 1;
            fresh.push(d.address());
            daemons.push(d);
        }
        settle_views(&daemons, daemons.len());
        grown_tx.send(fresh).unwrap();
    }

    let (grew, sizes) = sim.join();
    assert!(grew >= 1, "the controller never grew the staging area");
    assert_eq!(sizes[0], 1, "started with one server");
    assert!(
        *sizes.last().unwrap() > 1,
        "staging area should have grown by the end: {sizes:?}"
    );
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
}

/// Shrink victim selection is drain-aware: with uneven staged load
/// across the area, [`drain_aware_victims`] scrapes each server's
/// staged-byte load over the metrics RPC and nominates the server whose
/// departure moves the fewest bytes.
#[test]
fn shrink_victims_are_chosen_by_staged_load() {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!("autoscale-drain-{}.addrs", std::process::id()));
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<()>(1);
    let (victim_tx, victim_rx) = crossbeam::channel::bounded::<Vec<na::Address>>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        handle.activate(0).unwrap();
        // Enough blocks of varying size that the ring spreads a clearly
        // uneven byte load across the three servers.
        for b in 0..12u64 {
            let payload = bytes::Bytes::from(vec![1u8; 128 * (b as usize + 1)]);
            handle
                .stage(
                    BlockMeta::new("x", b, 0, payload.len()),
                    &payload,
                )
                .unwrap();
        }
        staged_tx.send(()).unwrap();
        victim_tx
            .send(drain_aware_victims(&admin, &view, 1))
            .unwrap();
        done_rx.recv().unwrap();
        handle.deactivate(0).unwrap();
        margo.finalize();
    });

    staged_rx.recv().unwrap();
    let victims = victim_rx.recv().unwrap();
    // Independent expectation, straight from the stores (not the metrics
    // RPC under test): least bytes wins; ties go to the later member.
    let mut view: Vec<na::Address> = daemons.iter().map(|d| d.address()).collect();
    view.sort_unstable();
    let loads: Vec<(na::Address, u64)> = view
        .iter()
        .map(|&a| {
            let d = daemons.iter().find(|d| d.address() == a).unwrap();
            (a, d.provider().store().staged_bytes())
        })
        .collect();
    let expected = colza::select_victims(&loads, 1);
    assert_eq!(victims, expected, "victim must be the least-loaded server");
    assert_eq!(
        cluster
            .shared()
            .trace_snapshot()
            .counter_total("autoscale.victim.drain_aware"),
        1,
        "each nomination must be counted in the trace"
    );
    done_tx.send(()).unwrap();
    sim.join();
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
}
