//! Observability end-to-end tests: a full stage → execute → deactivate
//! run against a manual (non-ticking) server, with the tracer enabled.
//!
//! The scenario is built for *exact* determinism: `compute_scale: 0.0`
//! (no measured host CPU time reaches the virtual clocks), no daemon
//! loops or SWIM ticks (real-time timers), one sequential client, and the
//! inert `null` pipeline backend. Under those conditions every virtual
//! timestamp is a pure function of the protocol, so two runs with the
//! same seed must export byte-identical timelines.

use std::sync::Arc;

use bytes::Bytes;

use colza::provider::{ColzaProvider, ProviderComm};
use colza::{AdminClient, BlockMeta, ColzaClient, MetricsReport};
use margo::MargoInstance;
use mona::{MonaConfig, MonaInstance};
use na::Fabric;
use ssg::{SsgConfig, SsgGroup};

const ITERATIONS: u64 = 3;
const BLOCKS: u64 = 4;

/// Per-block payload size: varied so byte totals are not accidentally
/// symmetric.
fn block_len(iteration: u64, block: u64) -> usize {
    1024 + 512 * block as usize + 96 * iteration as usize
}

struct RunOutput {
    snapshot: hpcsim::TraceSnapshot,
    chrome: String,
    jsonl: String,
    report: MetricsReport,
    client_end_ns: u64,
}

/// One deterministic client/server staging session. `trace` controls
/// whether the cluster tracer is enabled for the run.
fn run_scenario(seed: u64, trace: bool) -> RunOutput {
    run_scenario_with_codec(seed, trace, None)
}

/// Same scenario with an optional client-side codec config (DESIGN.md
/// §13); `None` stages raw, which must stay byte-identical to the
/// pre-codec traces.
fn run_scenario_with_codec(
    seed: u64,
    trace: bool,
    codec: Option<colza::CodecConfig>,
) -> RunOutput {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed,
        compute_scale: 0.0,
        ..hpcsim::ClusterConfig::aries()
    });
    cluster.shared().tracer().set_enabled(trace);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 0, move || {
        let endpoint = Arc::new(f2.open());
        let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
        let mona = MonaInstance::from_endpoint(Arc::clone(&endpoint), MonaConfig::default());
        let group = SsgGroup::create(Arc::clone(&margo), "colza", SsgConfig::default());
        let _provider = ColzaProvider::register(
            Arc::clone(&margo),
            mona,
            Arc::clone(&group),
            ProviderComm::Mona,
        );
        addr_tx.send(margo.address()).unwrap();
        // Serve without ticking: SWIM rounds are real-time driven and
        // would perturb the virtual clocks nondeterministically.
        stop_rx.recv().ok();
        margo.finalize();
    });
    let contact = addr_rx.recv().unwrap();

    let f3 = fabric.clone();
    let (report, client_end_ns) = cluster
        .spawn("client", 1, move || {
            let margo = MargoInstance::init(&f3);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact).unwrap();
            assert_eq!(view, vec![contact]);
            admin.create_pipeline(contact, "null", "p", "").unwrap();
            let mut handle = client.distributed_handle(contact, "p").unwrap();
            if let Some(cfg) = codec {
                handle.set_codec(cfg);
            }
            for iteration in 0..ITERATIONS {
                handle.activate(iteration).unwrap();
                for block in 0..BLOCKS {
                    let payload = Bytes::from(vec![block as u8; block_len(iteration, block)]);
                    handle
                        .stage(
                            BlockMeta::new("p", block, iteration, payload.len()),
                            &payload,
                        )
                        .unwrap();
                }
                handle.execute(iteration).unwrap();
                handle.deactivate(iteration).unwrap();
            }
            // End-of-workload timestamp, taken *before* the metrics scrape:
            // the scrape's reply size depends on how many counters exist, so
            // its wire time legitimately differs between traced and dark
            // runs and must not count against the zero-cost property.
            let now = hpcsim::current().now();
            let report = admin.metrics(contact).unwrap();
            margo.finalize();
            (report, now)
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();

    let snapshot = cluster.shared().trace_snapshot();
    RunOutput {
        chrome: snapshot.to_chrome_json(),
        jsonl: snapshot.to_metrics_jsonl(),
        snapshot,
        report,
        client_end_ns,
    }
}

/// Every span is well-formed: non-empty names, end ≥ start, and per
/// (pid, lane) the spans obey stack discipline — properly nested or
/// disjoint, never partially overlapping — with monotone start times.
#[test]
fn full_run_produces_well_formed_nested_spans() {
    let out = run_scenario(7, true);
    let spans = &out.snapshot.spans;
    assert!(!spans.is_empty(), "traced run recorded no spans");

    let pids: std::collections::BTreeSet<u64> =
        out.snapshot.proc_names.iter().map(|&(p, _)| p).collect();
    for s in spans {
        assert!(!s.name.is_empty() && !s.cat.is_empty());
        assert!(s.end_ns >= s.start_ns, "span {} ends before it starts", s.name);
        assert!(
            pids.contains(&s.pid),
            "span {} belongs to unknown pid {} (orphan)",
            s.name,
            s.pid
        );
    }

    // Stack discipline per timeline lane.
    let mut lanes: std::collections::BTreeMap<(u64, u32), Vec<&hpcsim::trace::SpanRec>> =
        std::collections::BTreeMap::new();
    for s in spans {
        lanes.entry((s.pid, s.lane)).or_default().push(s);
    }
    for ((pid, lane), lane_spans) in lanes {
        let mut stack: Vec<&hpcsim::trace::SpanRec> = Vec::new();
        let mut prev_start = 0u64;
        for s in lane_spans {
            assert!(
                s.start_ns >= prev_start,
                "lane ({pid},{lane}) start times not monotone"
            );
            prev_start = s.start_ns;
            while let Some(top) = stack.last() {
                if top.end_ns <= s.start_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                assert!(
                    s.end_ns <= top.end_ns,
                    "lane ({pid},{lane}): span {} [{}, {}] partially overlaps {} [{}, {}]",
                    s.name,
                    s.start_ns,
                    s.end_ns,
                    top.name,
                    top.start_ns,
                    top.end_ns
                );
            }
            stack.push(s);
        }
    }

    // The protocol phases and the layers below them all appear.
    for name in [
        "colza.activate",
        "colza.2pc.prepare",
        "colza.2pc.commit",
        "colza.stage",
        "colza.srv.stage",
        "colza.execute",
        "colza.srv.execute",
        "colza.deactivate",
        "rpc:colza.stage",
        "rpc.handle:colza.execute",
        "na.rdma_get",
    ] {
        assert!(
            out.snapshot.spans_named(name).next().is_some(),
            "expected at least one {name:?} span"
        );
    }
    // One activate per iteration, one client stage span per block.
    assert_eq!(
        out.snapshot.spans_named("colza.activate").count(),
        ITERATIONS as usize
    );
    assert_eq!(
        out.snapshot.spans_named("colza.stage").count(),
        (ITERATIONS * BLOCKS) as usize
    );
    // A clean single-server run commits on the first 2PC attempt.
    assert_eq!(out.snapshot.counter_total("colza.2pc.aborts"), 0);
}

/// The same seed exports byte-identical Chrome-trace and metrics files
/// across two fresh clusters (the property PR 1 established for fault
/// traces, extended to the whole observability layer).
#[test]
fn same_seed_exports_byte_identical_traces() {
    let a = run_scenario(42, true);
    let b = run_scenario(42, true);
    assert_eq!(a.client_end_ns, b.client_end_ns, "virtual end times diverged");
    assert_eq!(a.chrome, b.chrome, "Chrome trace exports diverged");
    assert_eq!(a.jsonl, b.jsonl, "metrics JSONL exports diverged");
    assert!(a.chrome.contains("\"ph\":\"X\""));
    assert!(a.jsonl.contains("\"type\":\"counter\""));
}

/// Byte accounting reconciles across layers: what margo says it put on
/// the RPC plane equals what the NA layer counted there, per-link bytes
/// sum to the plane totals, and the server's RDMA pulls equal the staged
/// payload bytes exactly.
#[test]
fn counters_reconcile_across_layers() {
    let out = run_scenario(3, true);
    let snap = &out.snapshot;

    let plane_rpc = snap.counter_total("na.plane.rpc.bytes");
    let rpc_out = snap.counter_total("rpc.bytes.out");
    let rpc_reply = snap.counter_total("rpc.bytes.reply");
    assert!(plane_rpc > 0 && rpc_out > 0 && rpc_reply > 0);
    assert_eq!(
        plane_rpc,
        rpc_out + rpc_reply,
        "margo byte accounting disagrees with the NA plane counter"
    );

    // Message counts: every request the client sent plus every reply the
    // server sent is exactly what NA saw on the rpc plane.
    let sent = snap.counter_total("rpc.sent.msgs");
    let replies =
        snap.counter_total("rpc.handled.msgs") + snap.counter_total("rpc.dedup.replayed");
    assert_eq!(snap.counter_total("na.plane.rpc.msgs"), sent + replies);

    // Per-link bytes partition the total send volume across all planes.
    let all_planes = ["rpc", "mona", "mpi", "ssg", "raw"]
        .iter()
        .map(|p| snap.counter_total(&format!("na.plane.{p}.bytes")))
        .sum::<u64>();
    assert_eq!(snap.counter_prefix_total("na.link.bytes."), all_planes);

    // The server pulled every staged payload once, via RDMA.
    let staged: u64 = (0..ITERATIONS)
        .flat_map(|i| (0..BLOCKS).map(move |b| block_len(i, b) as u64))
        .sum();
    assert_eq!(snap.counter_total("na.rdma.bytes"), staged);

    // Clean wire: nothing dropped, nothing duplicated, no retries.
    assert_eq!(snap.counter_total("na.dropped.msgs"), 0);
    assert_eq!(snap.counter_total("rpc.retries"), 0);
}

/// The `colza.admin.metrics` RPC scrapes the server's own counters and
/// they agree with the cluster-level snapshot for that pid.
#[test]
fn metrics_rpc_scrapes_server_counters() {
    let out = run_scenario(11, true);
    assert!(out.report.enabled, "server reported tracing disabled");
    let get = |name: &str| -> u64 {
        out.report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert!(get("rpc.handled.msgs") > 0, "server handled no RPCs?");
    assert!(get("na.rdma.bytes") > 0, "server pulled no staged data?");
    // Names come back sorted (BTreeMap order) — the scrape is canonical.
    let names: Vec<&String> = out.report.counters.iter().map(|(n, _)| n).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);

    // The scrape is a prefix of the final cluster truth: every scraped
    // value is ≤ the end-of-run value for the same (pid, counter).
    for (name, value) in &out.report.counters {
        let end = out
            .snapshot
            .counters
            .iter()
            .find(|c| c.pid == out.report.pid && &c.name == name)
            .map(|c| c.value)
            .unwrap_or(0);
        assert!(
            *value <= end,
            "scraped {name}={value} exceeds final value {end}"
        );
    }
}

/// With compression enabled, byte accounting still reconciles — but now
/// across the codec boundary: what the client's encoder emitted is
/// exactly what crossed the wire via RDMA, and what the server decoded
/// back is exactly the raw staged volume.
#[test]
fn codec_bytes_reconcile_on_the_wire() {
    let cfg = colza::CodecConfig::uniform(colza::CodecSpec::ShuffleLz);
    let out = run_scenario_with_codec(3, true, Some(cfg));
    let snap = &out.snapshot;

    let staged: u64 = (0..ITERATIONS)
        .flat_map(|i| (0..BLOCKS).map(move |b| block_len(i, b) as u64))
        .sum();
    let enc_in = snap.counter_total("colza.codec.encode.bytes_in");
    let enc_out = snap.counter_total("colza.codec.encode.bytes_out");
    let dec_in = snap.counter_total("colza.codec.decode.bytes_in");
    let dec_out = snap.counter_total("colza.codec.decode.bytes_out");

    // The encoder saw every staged byte exactly once (compress once).
    assert_eq!(enc_in, staged);
    // Wire truth: the RDMA plane moved exactly the encoded frames.
    assert_eq!(
        snap.counter_total("na.rdma.bytes"),
        enc_out,
        "bytes-on-wire != sum of encoded block sizes"
    );
    // The constant-byte payloads are highly compressible; the codec must
    // have actually shrunk the wire volume.
    assert!(
        enc_out < staged,
        "shuffle+lz did not compress ({enc_out} >= {staged})"
    );
    // The server decoded each frame once (to feed the backend) and got
    // the staged bytes back exactly.
    assert_eq!(dec_in, enc_out);
    assert_eq!(dec_out, staged, "decoded-size accounting != byte_size sum");

    // Frame counters name the codec that ran.
    assert_eq!(
        snap.counter_total("colza.codec.enc.shuffle_lz.frames"),
        ITERATIONS * BLOCKS
    );

    // Still a clean wire underneath.
    assert_eq!(snap.counter_total("na.dropped.msgs"), 0);
    assert_eq!(snap.counter_total("rpc.retries"), 0);
}

/// Codec-enabled runs are exactly as deterministic as raw runs: the
/// encode path charges modeled virtual time, so two same-seed runs export
/// byte-identical traces.
#[test]
fn codec_runs_export_byte_identical_traces() {
    let cfg = || colza::CodecConfig::uniform(colza::CodecSpec::ShuffleLz);
    let a = run_scenario_with_codec(42, true, Some(cfg()));
    let b = run_scenario_with_codec(42, true, Some(cfg()));
    assert_eq!(a.client_end_ns, b.client_end_ns, "virtual end times diverged");
    assert_eq!(a.chrome, b.chrome, "Chrome trace exports diverged");
    assert_eq!(a.jsonl, b.jsonl, "metrics JSONL exports diverged");
    // And enabling a codec genuinely changed the wire relative to raw.
    let raw = run_scenario(42, true);
    assert!(
        raw.snapshot.counter_total("na.rdma.bytes")
            > a.snapshot.counter_total("na.rdma.bytes")
    );
}

/// With the tracer disabled the run records nothing — and the virtual
/// time outcome is identical to the traced run, i.e. observing the system
/// does not change it.
#[test]
fn disabled_tracer_is_zero_cost_in_virtual_time() {
    let traced = run_scenario(5, true);
    let dark = run_scenario(5, false);
    assert!(dark.snapshot.spans.is_empty());
    assert!(dark.snapshot.counters.is_empty());
    assert!(dark.snapshot.hists.is_empty());
    assert_eq!(
        traced.client_end_ns, dark.client_end_ns,
        "tracing perturbed the virtual clock"
    );
    assert!(!dark.report.enabled);
    assert!(dark.report.counters.is_empty());
}

/// Per-tenant accounting reconciles across layers (DESIGN.md §14): a
/// mid-iteration scrape's `tenants` section agrees with the aggregate
/// staged/decoded gauges, with the per-tenant stage counters, and with
/// the codec layer's wire truth. A single-tenant run reports exactly one
/// implicit `"default"` entry equal to the totals — multi-tenancy
/// changes nothing about what a plain deployment observes.
#[test]
fn per_tenant_usage_reconciles_with_codec_and_store_counters() {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed: 17,
        compute_scale: 0.0,
        ..hpcsim::ClusterConfig::aries()
    });
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 0, move || {
        let endpoint = Arc::new(f2.open());
        let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
        let mona = MonaInstance::from_endpoint(Arc::clone(&endpoint), MonaConfig::default());
        let group = SsgGroup::create(Arc::clone(&margo), "colza", SsgConfig::default());
        let _provider = ColzaProvider::register(
            Arc::clone(&margo),
            mona,
            Arc::clone(&group),
            ProviderComm::Mona,
        );
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let contact = addr_rx.recv().unwrap();

    let f3 = fabric.clone();
    let mid_report = cluster
        .spawn("client", 1, move || {
            let margo = MargoInstance::init(&f3);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            client.view_from(contact).unwrap();
            admin.create_pipeline(contact, "null", "p", "").unwrap();
            let mut handle = client.distributed_handle(contact, "p").unwrap();
            // Compressed staging: on-store bytes differ from plain bytes,
            // so the staged/decoded split in the usage report is real.
            handle.set_codec(colza::CodecConfig::uniform(colza::CodecSpec::ShuffleLz));
            handle.activate(0).unwrap();
            for block in 0..BLOCKS {
                let payload = Bytes::from(vec![block as u8; block_len(0, block)]);
                handle
                    .stage(BlockMeta::new("p", block, 0, payload.len()), &payload)
                    .unwrap();
            }
            // Scrape while the blocks are held (post-stage, pre-release).
            let report = admin.metrics(contact).unwrap();
            handle.execute(0).unwrap();
            handle.deactivate(0).unwrap();
            margo.finalize();
            report
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();
    let snap = cluster.shared().trace_snapshot();

    // Exactly one tenant — the implicit default — holding every block.
    assert_eq!(mid_report.tenants.len(), 1, "{:?}", mid_report.tenants);
    let usage = &mid_report.tenants[0];
    assert_eq!(usage.tenant, "default");
    assert_eq!(usage.blocks, BLOCKS);

    // The per-tenant rows partition the aggregate staged-bytes gauge.
    let tenant_staged: u64 = mid_report.tenants.iter().map(|t| t.staged_bytes).sum();
    assert_eq!(
        tenant_staged, mid_report.staged_bytes,
        "per-tenant staged bytes must sum to the aggregate gauge"
    );

    // Decoded (plain) bytes are the raw staged volume; staged (encoded)
    // bytes are what actually crossed the wire and sit in the store.
    let plain: u64 = (0..BLOCKS).map(|b| block_len(0, b) as u64).sum();
    assert_eq!(usage.decoded_bytes, plain);
    assert!(
        usage.staged_bytes < plain,
        "shuffle+lz stored {} >= plain {plain}",
        usage.staged_bytes
    );

    // Wire truth: the encoded holdings are exactly the RDMA-pulled bytes
    // and exactly what the codec decoded on the server.
    assert_eq!(usage.staged_bytes, snap.counter_total("na.rdma.bytes"));
    assert_eq!(
        usage.staged_bytes,
        snap.counter_total("colza.codec.decode.bytes_in")
    );
    assert_eq!(
        usage.decoded_bytes,
        snap.counter_total("colza.codec.decode.bytes_out")
    );

    // The per-tenant stage counters saw every admission once. One
    // iteration, nothing released before the scrape: cumulative counters
    // equal the held usage exactly.
    assert_eq!(
        snap.counter_total("colza.tenant.default.stage.blocks"),
        usage.blocks
    );
    assert_eq!(
        snap.counter_total("colza.tenant.default.stage.bytes"),
        usage.staged_bytes
    );
    assert_eq!(
        snap.counter_total("colza.tenant.default.stage.decoded_bytes"),
        usage.decoded_bytes
    );
    // No tenancy policy installed: nothing was ever refused or queued.
    assert_eq!(snap.counter_total("colza.qos.quota.refused"), 0);
    assert_eq!(snap.counter_total("colza.qos.exec.queued"), 0);
}

/// After the iteration releases, the per-tenant section empties again —
/// usage is a live gauge of held bytes, not a history — so an end-of-run
/// scrape from a plain single-tenant deployment reports exactly what it
/// did before multi-tenancy existed.
#[test]
fn released_iterations_leave_no_tenant_residue() {
    let out = run_scenario(11, true);
    assert!(
        out.report.tenants.is_empty(),
        "post-release scrape must report no held tenant bytes: {:?}",
        out.report.tenants
    );
    assert_eq!(out.report.staged_bytes, 0);
}

/// Reactive-trigger observability (DESIGN.md §15): the trigger counters
/// reconcile with the decision schedule, and the *fused* stats collective
/// really is one allreduce per evaluated iteration — bounds, min/max and
/// sum/count all ride the same payload, so enabling triggers (and `mean`)
/// adds no extra collective.
#[test]
fn trigger_counters_and_fused_collective_reconcile() {
    use vizkit::data::{CellType, DataArray, UnstructuredGrid};

    const TRIG_ITERS: u64 = 6;

    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed: 23,
        compute_scale: 0.0,
        ..hpcsim::ClusterConfig::aries()
    });
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 0, move || {
        let endpoint = Arc::new(f2.open());
        let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
        let mona = MonaInstance::from_endpoint(Arc::clone(&endpoint), MonaConfig::default());
        let group = SsgGroup::create(Arc::clone(&margo), "colza", SsgConfig::default());
        let _provider = ColzaProvider::register(
            Arc::clone(&margo),
            mona,
            Arc::clone(&group),
            ProviderComm::Mona,
        );
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let contact = addr_rx.recv().unwrap();

    // One voxel cell carrying a `v02` value: even iterations stage a hot
    // 5.0 (fires `max(v02) > 3.0`), odd iterations a quiet 1.0 (skips).
    fn voxel_payload(value: f32) -> Bytes {
        let mut g = UnstructuredGrid::new();
        for k in 0..2u32 {
            for j in 0..2u32 {
                for i in 0..2u32 {
                    g.points.push([i as f32 * 4.0, j as f32 * 4.0, k as f32 * 4.0]);
                }
            }
        }
        g.add_cell(CellType::Voxel, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g.cell_data.set("v02", DataArray::F32(vec![value]));
        colza::codec::dataset_to_bytes(&vizkit::DataSet::UGrid(g))
    }

    let f3 = fabric.clone();
    let outcomes = cluster
        .spawn("client", 1, move || {
            let margo = MargoInstance::init(&f3);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            client.view_from(contact).unwrap();
            let mut script = catalyst::PipelineScript::deep_water_impact(32, 24);
            script.triggers = vec![catalyst::TriggerSpec::new("max(v02) > 3.0", "run")];
            admin
                .create_pipeline(contact, "catalyst", "t", &script.to_json())
                .unwrap();
            let handle = client.distributed_handle(contact, "t").unwrap();
            let mut outcomes = Vec::new();
            for iteration in 0..TRIG_ITERS {
                handle.activate(iteration).unwrap();
                let payload = voxel_payload(if iteration % 2 == 0 { 5.0 } else { 1.0 });
                handle
                    .stage(BlockMeta::new("t", 0, iteration, payload.len()), &payload)
                    .unwrap();
                outcomes.push(handle.execute(iteration).unwrap());
                handle.deactivate(iteration).unwrap();
            }
            margo.finalize();
            outcomes
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();
    let snap = cluster.shared().trace_snapshot();

    // The decision schedule alternates with the staged data.
    let expected: Vec<colza::ExecOutcome> = (0..TRIG_ITERS)
        .map(|i| {
            if i % 2 == 0 {
                colza::ExecOutcome::Ran
            } else {
                colza::ExecOutcome::Skipped
            }
        })
        .collect();
    assert_eq!(outcomes, expected);

    // Trigger counters reconcile with that schedule: one evaluation per
    // iteration, one firing per hot iteration, one skip per quiet one —
    // and the provider's skip counter agrees with the pipeline's.
    assert_eq!(snap.counter_total("colza.trigger.evaluated"), TRIG_ITERS);
    assert_eq!(snap.counter_total("colza.trigger.fired"), TRIG_ITERS / 2);
    assert_eq!(snap.counter_total("colza.trigger.skipped"), TRIG_ITERS / 2);
    assert_eq!(
        snap.counter_total("colza.exec.skipped"),
        snap.counter_total("colza.trigger.skipped")
    );
    // Every evaluation opened its span.
    assert_eq!(
        snap.spans_named("catalyst.trigger.eval").count() as u64,
        TRIG_ITERS
    );

    // THE fused-collective property: exactly one stats allreduce per
    // evaluated iteration — executed iterations reuse the trigger-time
    // stats, and no second bounds/range collective exists anywhere.
    assert_eq!(
        snap.counter_total("colza.trigger.stats.collectives"),
        TRIG_ITERS
    );
    assert_eq!(
        snap.spans_named("mona.coll:allreduce").count() as u64,
        TRIG_ITERS,
        "expected exactly one fused allreduce per evaluated iteration"
    );
}
