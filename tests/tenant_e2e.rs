//! Multi-tenant QoS end-to-end tests (DESIGN.md §14): a noisy tenant
//! flooding the staging area past its staged-byte quota is throttled —
//! typed, retryable backpressure on `stage`, minimum-weight scheduling
//! on `execute` — while a well-behaved tenant sharing the same server
//! keeps its per-iteration latency within a configured bound.
//!
//! Built on the same exact-determinism harness as `observability_e2e`:
//! `compute_scale: 0.0`, one non-ticking server, one sequential client,
//! the inert `null` backend. Under those conditions every virtual
//! timestamp — including the quota-backoff sleeps and the execute gate's
//! modeled queueing — is a pure function of the protocol, so two runs
//! with the same seed must export byte-identical traces.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use colza::provider::{ColzaProvider, ProviderComm};
use colza::{
    AdminClient, BlockMeta, ColzaClient, ColzaError, PriorityClass, TenancyConfig, TenantConfig,
    TenantUsage,
};
use margo::MargoInstance;
use mona::{MonaConfig, MonaInstance};
use na::Fabric;
use ssg::{SsgConfig, SsgGroup};

const ITERATIONS: u64 = 3;
/// Noisy-tenant block size (raw codec: encoded == plain).
const NOISY_BLOCK: usize = 1024;
/// Well-behaved-tenant block size.
const WB_BLOCK: usize = 2048;
/// Two noisy blocks fit, the third is refused.
const NOISY_QUOTA: u64 = 2 * NOISY_BLOCK as u64 + NOISY_BLOCK as u64 / 2;
/// Each noisy execute (cost = staged bytes, 2048 ns) blows this window.
const NOISY_EXEC_QUOTA_NS: u64 = 1_000;
/// The isolation bound: a full well-behaved iteration (activate, two
/// staged blocks, execute, deactivate) on a one-server area costs tens
/// of microseconds of virtual time under the aries wire model. 1 ms
/// leaves an order-of-magnitude margin yet is far below the noisy
/// tenant's 1 ms-and-up backoff sleeps — a well-behaved iteration that
/// got entangled with the neighbor's backpressure would blow it.
const WB_LATENCY_BOUND_NS: u64 = 1_000_000;
/// Virtual budget for the budget-expiry backpressure probe.
const BACKPRESSURE_BUDGET: Duration = Duration::from_millis(20);

/// The policy under test: the noisy tenant is quota-capped Bronze, the
/// well-behaved tenant unlimited Gold, enforcement on.
fn policy() -> TenancyConfig {
    TenancyConfig::enforcing()
        .with_tenant(
            "noisy",
            TenantConfig {
                staged_byte_quota: NOISY_QUOTA,
                execute_quota_ns: NOISY_EXEC_QUOTA_NS,
                priority: PriorityClass::Bronze,
            },
        )
        .with_tenant(
            "wb",
            TenantConfig {
                priority: PriorityClass::Gold,
                ..TenantConfig::default()
            },
        )
}

struct RunOutput {
    snapshot: hpcsim::TraceSnapshot,
    chrome: String,
    jsonl: String,
    /// Per-tenant holdings scraped mid-iteration 0, after the noisy
    /// tenant filled its quota and before anything released.
    usage_mid: Vec<TenantUsage>,
    /// Virtual ns per well-behaved iteration (activate → deactivate).
    wb_latencies: Vec<u64>,
    /// Virtual ns the budget-expiry backpressure probe spent backing off.
    backpressure_elapsed_ns: u64,
    client_end_ns: u64,
}

/// One deterministic two-tenant session against a single server: per
/// iteration the noisy tenant fills its quota and bounces off it, the
/// well-behaved tenant runs a timed full iteration, then the noisy
/// tenant executes (blowing its window quota) and releases. A final
/// epilogue probes `stage_with_backpressure` with no release coming
/// (budget expiry) and right after one (immediate success).
fn run_scenario(seed: u64) -> RunOutput {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed,
        compute_scale: 0.0,
        ..hpcsim::ClusterConfig::aries()
    });
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 0, move || {
        let endpoint = Arc::new(f2.open());
        let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
        let mona = MonaInstance::from_endpoint(Arc::clone(&endpoint), MonaConfig::default());
        let group = SsgGroup::create(Arc::clone(&margo), "colza", SsgConfig::default());
        let _provider = ColzaProvider::register(
            Arc::clone(&margo),
            mona,
            Arc::clone(&group),
            ProviderComm::Mona,
        );
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let contact = addr_rx.recv().unwrap();

    let f3 = fabric.clone();
    let (usage_mid, wb_latencies, backpressure_elapsed_ns, client_end_ns) = cluster
        .spawn("client", 1, move || {
            let ctx = hpcsim::process::current();
            let margo = MargoInstance::init(&f3);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact).unwrap();
            assert_eq!(view, vec![contact]);
            admin.create_pipeline(contact, "null", "wb", "").unwrap();
            admin.create_pipeline(contact, "null", "noisy", "").unwrap();
            admin.set_tenancy(contact, &policy()).unwrap();

            let mut wb = client.distributed_handle(contact, "wb").unwrap();
            wb.set_tenant("wb");
            let mut noisy = client.distributed_handle(contact, "noisy").unwrap();
            noisy.set_tenant("noisy");

            let noisy_payload = Bytes::from(vec![0xAAu8; NOISY_BLOCK]);
            let wb_payload = Bytes::from(vec![0x55u8; WB_BLOCK]);
            let mut usage_mid = Vec::new();
            let mut wb_latencies = Vec::new();

            for it in 0..ITERATIONS {
                // The noisy tenant fills its quota, then bounces off it.
                noisy.activate(it).unwrap();
                for b in 0..2u64 {
                    noisy
                        .stage(BlockMeta::new("f", b, it, NOISY_BLOCK), &noisy_payload)
                        .unwrap();
                }
                let refused = noisy
                    .stage(BlockMeta::new("f", 2, it, NOISY_BLOCK), &noisy_payload)
                    .unwrap_err();
                assert!(
                    matches!(refused, ColzaError::QuotaExceeded(_)),
                    "over-quota stage must be the typed refusal, got {refused:?}"
                );
                assert!(
                    refused.is_retryable(),
                    "quota backpressure must be retryable: {refused}"
                );
                if it == 0 {
                    usage_mid = admin.tenant_usage(contact).unwrap();
                }

                // The well-behaved tenant's full iteration, timed.
                let t0 = ctx.now();
                wb.activate(it).unwrap();
                for b in 0..2u64 {
                    wb.stage(BlockMeta::new("w", b, it, WB_BLOCK), &wb_payload)
                        .unwrap();
                }
                wb.execute(it).unwrap();
                wb.deactivate(it).unwrap();
                wb_latencies.push(ctx.now() - t0);

                // The noisy tenant's execute (2048 ns of hinted cost)
                // exceeds its 1000 ns window quota; deactivate releases
                // its staged bytes and resets the window.
                noisy.execute(it).unwrap();
                noisy.deactivate(it).unwrap();
            }

            // Budget expiry: quota full, nothing will release — the
            // backoff loop must give up with the typed error once the
            // virtual deadline passes.
            let it = ITERATIONS;
            noisy.activate(it).unwrap();
            for b in 0..2u64 {
                noisy
                    .stage(BlockMeta::new("f", b, it, NOISY_BLOCK), &noisy_payload)
                    .unwrap();
            }
            let t0 = ctx.now();
            let r = noisy.stage_with_backpressure(
                BlockMeta::new("f", 2, it, NOISY_BLOCK),
                &noisy_payload,
                BACKPRESSURE_BUDGET,
            );
            let backpressure_elapsed_ns = ctx.now() - t0;
            assert!(
                matches!(r, Err(ColzaError::QuotaExceeded(_))),
                "budget expiry must surface the typed refusal: {r:?}"
            );
            noisy.execute(it).unwrap();
            noisy.deactivate(it).unwrap();

            // After the release the same block stages on the first try.
            noisy.activate(it + 1).unwrap();
            noisy
                .stage_with_backpressure(
                    BlockMeta::new("f", 2, it + 1, NOISY_BLOCK),
                    &noisy_payload,
                    BACKPRESSURE_BUDGET,
                )
                .unwrap();
            noisy.execute(it + 1).unwrap();
            noisy.deactivate(it + 1).unwrap();

            let end = ctx.now();
            margo.finalize();
            (usage_mid, wb_latencies, backpressure_elapsed_ns, end)
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();

    let snapshot = cluster.shared().trace_snapshot();
    RunOutput {
        chrome: snapshot.to_chrome_json(),
        jsonl: snapshot.to_metrics_jsonl(),
        snapshot,
        usage_mid,
        wb_latencies,
        backpressure_elapsed_ns,
        client_end_ns,
    }
}

/// ISSUE acceptance: the noisy tenant is throttled (quota refusals on
/// stage, minimum-weight scheduling after blowing its execute window)
/// while the well-behaved tenant's per-iteration latency stays within
/// the configured bound on the same server.
#[test]
fn noisy_neighbor_is_throttled_while_well_behaved_meets_its_bound() {
    let out = run_scenario(7);
    let snap = &out.snapshot;

    // Isolation: every well-behaved iteration under the bound.
    assert_eq!(out.wb_latencies.len(), ITERATIONS as usize);
    for (it, &lat) in out.wb_latencies.iter().enumerate() {
        assert!(
            lat <= WB_LATENCY_BOUND_NS,
            "wb iteration {it} took {lat} ns > bound {WB_LATENCY_BOUND_NS} ns \
             — the noisy neighbor leaked into the well-behaved tenant"
        );
    }

    // The noisy tenant really was refused: once per loop iteration plus
    // every backoff retry of the budget-expiry probe.
    let refused = snap.counter_total("colza.qos.quota.refused");
    assert!(
        refused > ITERATIONS,
        "expected per-iteration refusals plus backoff retries, got {refused}"
    );
    assert_eq!(
        snap.counter_total("colza.tenant.noisy.quota.refused"),
        refused,
        "every refusal belongs to the noisy tenant"
    );
    assert_eq!(snap.counter_total("colza.tenant.wb.quota.refused"), 0);
    assert!(snap.counter_total("colza.stage.backpressure") >= 1);

    // The noisy tenant blew its execute window every iteration and was
    // marked throttled; the gate actually scheduled work.
    assert!(snap.counter_total("colza.qos.exec.throttled") >= ITERATIONS);
    assert!(snap.counter_total("colza.qos.exec.queued") > 0);
    assert!(snap.counter_total("colza.qos.exec.served_ns") > 0);

    // Per-tenant stage accounting: the well-behaved tenant staged two
    // blocks per iteration, all admitted.
    assert_eq!(
        snap.counter_total("colza.tenant.wb.stage.blocks"),
        ITERATIONS * 2
    );
    assert_eq!(
        snap.counter_total("colza.tenant.wb.stage.bytes"),
        ITERATIONS * 2 * WB_BLOCK as u64
    );

    // The mid-iteration scrape saw exactly the noisy tenant's quota-full
    // holdings (the well-behaved tenant had nothing staged yet).
    let noisy = out
        .usage_mid
        .iter()
        .find(|u| u.tenant == "noisy")
        .expect("noisy tenant in the usage scrape");
    assert_eq!(noisy.staged_bytes, 2 * NOISY_BLOCK as u64);
    assert_eq!(noisy.blocks, 2);
    assert!(
        !out.usage_mid.iter().any(|u| u.tenant == "wb"),
        "wb had nothing staged at the scrape point: {:?}",
        out.usage_mid
    );
}

/// The backoff loop runs on the virtual clock: with no release coming it
/// retries (1 ms, 2 ms, 4 ms, ... of virtual sleep) until the budget is
/// spent, then returns the typed error — having consumed at least the
/// budget and not wildly more.
#[test]
fn backpressure_budget_is_honored_in_virtual_time() {
    let out = run_scenario(13);
    let budget = BACKPRESSURE_BUDGET.as_nanos() as u64;
    assert!(
        out.backpressure_elapsed_ns >= budget,
        "gave up after {} ns, before the {budget} ns budget",
        out.backpressure_elapsed_ns
    );
    assert!(
        out.backpressure_elapsed_ns < 3 * budget,
        "backoff overshot the budget: {} ns vs {budget} ns",
        out.backpressure_elapsed_ns
    );
    // The doubling backoff fits only a handful of retries in the budget.
    let retries = out.snapshot.counter_total("colza.stage.backpressure");
    assert!(
        (2..=10).contains(&retries),
        "expected a few backoff retries within the budget, got {retries}"
    );
}

/// The whole two-tenant session — quota refusals, backoff sleeps, gate
/// queueing and all — is exactly reproducible: two same-seed runs export
/// byte-identical Chrome-trace and metrics files.
#[test]
fn same_seed_tenant_runs_export_byte_identical_traces() {
    let a = run_scenario(42);
    let b = run_scenario(42);
    assert_eq!(a.client_end_ns, b.client_end_ns, "virtual end times diverged");
    assert_eq!(a.wb_latencies, b.wb_latencies, "wb latencies diverged");
    assert_eq!(
        a.backpressure_elapsed_ns, b.backpressure_elapsed_ns,
        "backoff timings diverged"
    );
    assert_eq!(a.chrome, b.chrome, "Chrome trace exports diverged");
    assert_eq!(a.jsonl, b.jsonl, "metrics JSONL exports diverged");
}

/// Backpressure resolves, not just expires: a stage blocked on the quota
/// succeeds as soon as the tenant's earlier iteration releases. The
/// blocked stage runs on a helper thread sharing the client's simulated
/// process (the `istage` pattern) while the main thread deactivates.
#[test]
fn backpressure_succeeds_once_a_release_frees_quota() {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed: 99,
        compute_scale: 0.0,
        ..hpcsim::ClusterConfig::aries()
    });
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 0, move || {
        let endpoint = Arc::new(f2.open());
        let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
        let mona = MonaInstance::from_endpoint(Arc::clone(&endpoint), MonaConfig::default());
        let group = SsgGroup::create(Arc::clone(&margo), "colza", SsgConfig::default());
        let _provider = ColzaProvider::register(
            Arc::clone(&margo),
            mona,
            Arc::clone(&group),
            ProviderComm::Mona,
        );
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let contact = addr_rx.recv().unwrap();

    let f3 = fabric.clone();
    cluster
        .spawn("client", 1, move || {
            let margo = MargoInstance::init(&f3);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            client.view_from(contact).unwrap();
            admin.create_pipeline(contact, "null", "noisy", "").unwrap();
            admin.set_tenancy(contact, &policy()).unwrap();

            let mut handle = client.distributed_handle(contact, "noisy").unwrap();
            handle.set_tenant("noisy");
            let handle = Arc::new(handle);
            let payload = Bytes::from(vec![0xAAu8; NOISY_BLOCK]);

            // Iteration 0 holds the whole quota.
            handle.activate(0).unwrap();
            for b in 0..2u64 {
                handle
                    .stage(BlockMeta::new("f", b, 0, NOISY_BLOCK), &payload)
                    .unwrap();
            }

            // A next-iteration block backs off on the full quota while
            // this thread finishes iteration 0; the release frees the
            // bytes and the blocked stage completes within its budget.
            let ctx = hpcsim::process::current();
            let h2 = Arc::clone(&handle);
            let p2 = payload.clone();
            let blocked = std::thread::Builder::new()
                .name("blocked-stage".to_string())
                .spawn(move || {
                    hpcsim::process::enter(ctx, move || {
                        h2.stage_with_backpressure(
                            BlockMeta::new("f", 0, 1, NOISY_BLOCK),
                            &p2,
                            Duration::from_secs(2),
                        )
                    })
                })
                .unwrap();
            // Give the blocked stage time to bounce at least once.
            std::thread::sleep(Duration::from_millis(5));
            handle.execute(0).unwrap();
            handle.deactivate(0).unwrap();
            blocked
                .join()
                .expect("blocked stage panicked")
                .expect("stage must succeed once the release freed quota");

            // The freed-and-reused quota is visible in the scrape.
            let usage = admin.tenant_usage(contact).unwrap();
            let noisy = usage.iter().find(|u| u.tenant == "noisy").unwrap();
            assert_eq!(noisy.staged_bytes, NOISY_BLOCK as u64);
            assert_eq!(noisy.blocks, 1);
            margo.finalize();
        })
        .join();
    stop_tx.send(()).unwrap();
    server.join();
}
