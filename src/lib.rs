//! Workspace umbrella crate; real code lives in `crates/*`. Re-exports the
//! public crates so integration tests and examples have one import root.
pub use argo;
pub use baselines;
pub use catalyst;
pub use colza;
pub use hpcsim;
pub use icet;
pub use margo;
pub use minimpi;
pub use mona;
pub use na;
pub use sims;
pub use ssg;
pub use vizkit;
pub use wire;
