#!/bin/sh
# Offline preflight: release build, the full test suite, then the chaos
# suite under the pinned fault-injection seed, a seed matrix over the
# determinism scenario, the observability suite, and a build with
# instrumentation compiled out. Everything runs with --offline (the
# workspace vendors its dependencies as in-tree shims), so this works
# with no network at all.
#
# Tiers:
#   sh scripts/check.sh          full preflight (default)
#   sh scripts/check.sh --quick  tier-1 build+test plus one chaos smoke
#                                and one revoke-recovery smoke
#
# Override the chaos seed to reproduce a specific run:
#   COLZA_CHAOS_SEED=7 sh scripts/check.sh
set -e
cd "$(dirname "$0")/.."

COLZA_CHAOS_SEED="${COLZA_CHAOS_SEED:-42}"
export COLZA_CHAOS_SEED

cargo build --release --offline --workspace
cargo test -q --offline

if [ "$1" = "--quick" ]; then
    # Chaos smoke: one lossy staging flow, and one mid-collective crash
    # exercising revoke/shrink plus client abort-and-recover.
    cargo test -q --offline --test chaos_e2e stage_and_execute_complete_through_message_loss
    cargo test -q --offline --test chaos_e2e mid_collective_crash_aborts_and_recovers_deterministically
    # Codec property suite: every codec roundtrips random datasets.
    cargo test -q --offline --test codec_properties
    # Tenant-isolation smoke: the noisy neighbor is throttled while the
    # well-behaved tenant meets its latency bound, deterministically.
    cargo test -q --offline --test tenant_e2e
    cargo run -q --release --offline -p colza-bench --bin bench_tenant -- \
        --smoke --assert --out /tmp/colza_bench_tenant_smoke.json
    # Trigger smoke: the expression-language property suite plus the
    # bench gate (skips cost ~zero, savings are real, same-seed decision
    # traces replay byte-for-byte).
    cargo test -q --offline -p catalyst --test trigger_properties
    cargo run -q --release --offline -p colza-bench --bin bench_trigger -- \
        --smoke --assert --out /tmp/colza_bench_trigger_smoke.json
    echo "CHECK_OK quick (chaos seed $COLZA_CHAOS_SEED)"
    exit 0
fi

cargo test -q --offline -p store
cargo test -q --offline --test chaos_e2e
cargo test -q --offline --test chaos_e2e crashed_primary_recovers_from_replicas_deterministically
cargo test -q --offline --test chaos_e2e request_leave_during_staging_loses_no_block
cargo test -q --offline --test observability_e2e

# Multi-tenant QoS: the deterministic noisy-neighbor suite, the
# fair-share scheduler property suite, and the crash-under-quota chaos
# scenario (repair must tolerate quota refusals instead of livelocking
# every tenant's re-activation).
cargo test -q --offline --test tenant_e2e
cargo test -q --offline -p colza --test qos_properties
cargo test -q --offline --test chaos_e2e noisy_tenant_crash_repairs_without_losing_the_well_behaved_tenant

# Reactive triggers (DESIGN.md §15): the expression-language property
# suite, the end-to-end skip/run determinism suite, the fused-collective
# reconciliation scenario, and the crash-on-a-triggered-iteration chaos
# scenario (recovery must reach the same run decision).
cargo test -q --offline -p catalyst --test trigger_properties
cargo test -q --offline --test trigger_e2e
cargo test -q --offline --test observability_e2e trigger_counters_and_fused_collective_reconcile
cargo test -q --offline --test chaos_e2e mid_iteration_crash_on_triggered_iteration_recovers_same_decision

# Determinism must hold for more than the pinned seed: replay the
# virtual-time-trace scenario across a small seed matrix.
for seed in 42 7 1337; do
    COLZA_CHAOS_SEED="$seed" cargo test -q --offline --test chaos_e2e \
        same_seed_reproduces_the_exact_virtual_time_trace
done

# Collective engine smoke: the size-adaptive algorithms must beat the
# naive whole-payload ones above the pipeline switchover, and Table II
# must keep the paper's shape (Cray fastest, OpenMPI collapse, MoNA
# within a small factor of Cray).
cargo run -q --release --offline -p colza-bench --bin bench_coll -- \
    --smoke --assert --out /tmp/colza_bench_coll_smoke.json
cargo run -q --release --offline -p colza-bench --bin table2_reduce -- --check-shape > /dev/null

# Codec smoke: the delta codec must cut Gray–Scott wire bytes by >= 1.5x
# (lossless roundtrips and the lossy bound are asserted inside the bench).
cargo run -q --release --offline -p colza-bench --bin bench_codec -- \
    --smoke --assert --out /tmp/colza_bench_codec_smoke.json

# Tenant QoS smoke: with enforcement on, noisy tenants must be refused
# at their staged-byte quotas and throttled at the execute gate while
# the well-behaved tenant's worst iteration stays within the bound.
cargo run -q --release --offline -p colza-bench --bin bench_tenant -- \
    --smoke --assert --out /tmp/colza_bench_tenant_smoke.json

# Trigger smoke: skipped iterations must cost ~zero virtual time, the
# savings must be a measurable share of the always-on execute budget,
# and the same-seed decision trace must replay exactly.
cargo run -q --release --offline -p colza-bench --bin bench_trigger -- \
    --smoke --assert --out /tmp/colza_bench_trigger_smoke.json

# The trace feature must compile away cleanly: every instrumented crate
# has to build with instrumentation disabled.
for crate in hpcsim na mona minimpi margo ssg store colza colza-bench catalyst; do
    cargo build -q --offline -p "$crate" --no-default-features
done

echo "CHECK_OK (chaos seed $COLZA_CHAOS_SEED)"
