//! # store — the resilient elastic staging store
//!
//! Colza's original design binds a staged block to exactly one server: a
//! crash or shrink between `stage` and `execute` loses the block and the
//! simulation must resubmit the whole iteration. This crate removes that
//! weakness with three pieces, kept deliberately free of RPC machinery so
//! every placement decision is a pure, testable function:
//!
//! 1. [`ring`] — a deterministic consistent-hash ring over the SSG member
//!    view. Virtual nodes smooth the key distribution; a configurable
//!    replication factor maps every block to a primary plus `k-1`
//!    replicas, spread across distinct physical nodes when the topology
//!    (from hpcsim) allows it. Determinism matters: client and every
//!    server recompute the same ring from the same frozen member list,
//!    with no coordination.
//! 2. [`plan`] — the migration planner. Diffing the pre- and
//!    post-membership rings at the `activate` 2PC boundary yields, per
//!    held block, a minimal set of push transfers plus a keep/promote/
//!    demote/drop verdict for the local copy. Grow rebalances, graceful
//!    shrink drains, and crash repair re-replicates — all three are the
//!    same diff.
//! 3. [`store`] — [`StagingStore`], the per-server block table that backs
//!    the provider: role (primary/replica) and fed-to-backend tracking,
//!    idempotent inserts (pushes may race and repeat), and staged-byte
//!    accounting exported through `colza.admin.metrics`.
//!
//! The RPC execution of a plan (bulk transfers over mona/na) lives in the
//! `colza` provider; this crate only decides *what* moves *where*.

pub mod plan;
pub mod ring;
pub mod store;

pub use plan::{rebalance_plan, sync_block, BlockSync, Transfer};
pub use ring::{key_hash, BlockKey, HashRing, RingConfig};
pub use store::{Admit, Role, StagingStore, StoredBlock, TenantUsage};
