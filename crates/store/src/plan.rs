//! The migration planner: diffing two rings into a minimal transfer plan.
//!
//! Rebalance, drain and crash repair are all the same computation: each
//! holder of a block compares the owner set under the *previous* ring
//! with the owner set under the *new* ring and derives, locally and
//! without coordination, (a) which new owners it must push the block to
//! and (b) whether to keep, promote, demote, or drop its own copy. The
//! rules are arranged so that when every holder applies them, every new
//! owner ends up with a copy, each block is fed to exactly one backend
//! (its new primary), and no two holders push to the same destination —
//! except in repair races, where the destination's idempotent insert
//! makes the duplicate harmless.

use na::Address;

use crate::ring::{BlockKey, HashRing};
use crate::store::Role;

/// What one holder of a block must do after a membership change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSync {
    /// Push a copy to each of these new owners, tagged with the role the
    /// copy will hold there.
    pub push: Vec<(Address, Role)>,
    /// The local copy's new role, or `None` when the block no longer
    /// belongs here and should be dropped (after the pushes).
    pub keep: Option<Role>,
}

/// Plans one holder's actions for one block.
///
/// * `me` — the holder computing the plan.
/// * `old_owners` — owner set under the ring the block was placed with.
/// * `new_owners` — owner set under the new ring.
/// * `new_members` — full member list of the new ring (survivors).
///
/// The *mover* — the first old owner that survived into the new view, or
/// the holder itself when none survived (e.g. the block landed here by a
/// stage fallback) — pushes to every new owner that is not presumed to
/// already hold a copy. Everyone keeps its copy iff it is a new owner.
pub fn sync_block(
    me: Address,
    old_owners: &[Address],
    new_owners: &[Address],
    new_members: &[Address],
) -> BlockSync {
    let presumed: Vec<Address> = old_owners
        .iter()
        .filter(|a| new_members.contains(a))
        .copied()
        .collect();
    let mover = presumed.first().map_or(true, |&m| m == me);
    let mut push = Vec::new();
    if mover {
        for (i, &t) in new_owners.iter().enumerate() {
            if t == me || presumed.contains(&t) {
                continue;
            }
            push.push((t, role_at(i)));
        }
    }
    let keep = new_owners
        .iter()
        .position(|&a| a == me)
        .map(role_at);
    BlockSync { push, keep }
}

fn role_at(i: usize) -> Role {
    if i == 0 {
        Role::Primary
    } else {
        Role::Replica
    }
}

/// One block transfer in a global rebalance plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// The block being moved.
    pub key: BlockKey,
    /// The surviving holder pushing the copy.
    pub from: Address,
    /// The new owner receiving it.
    pub to: Address,
    /// The role the copy holds at the destination.
    pub role: Role,
}

/// The global transfer plan for a set of keys across a membership change,
/// assuming every old owner still holding a copy applies [`sync_block`].
/// This is the bird's-eye view the property tests and the rebalance
/// bench measure; the provider executes the same plan one holder at a
/// time.
pub fn rebalance_plan<'a>(
    old: &HashRing,
    new: &HashRing,
    keys: impl IntoIterator<Item = &'a BlockKey>,
) -> Vec<Transfer> {
    let mut plan = Vec::new();
    for key in keys {
        let old_owners = old.owners(key);
        let new_owners = new.owners(key);
        for &holder in &old_owners {
            if !new.members().contains(&holder) {
                continue; // this copy did not survive
            }
            let sync = sync_block(holder, &old_owners, &new_owners, new.members());
            for (to, role) in sync.push {
                plan.push(Transfer {
                    key: key.clone(),
                    from: holder,
                    to,
                    role,
                });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingConfig;

    fn a(n: u64) -> Address {
        Address(n)
    }

    #[test]
    fn stable_membership_moves_nothing() {
        let owners = [a(0), a(1)];
        let members = [a(0), a(1), a(2)];
        for &me in &owners {
            let s = sync_block(me, &owners, &owners, &members);
            assert!(s.push.is_empty());
            assert!(s.keep.is_some());
        }
        assert_eq!(sync_block(a(0), &owners, &owners, &members).keep, Some(Role::Primary));
        assert_eq!(sync_block(a(1), &owners, &owners, &members).keep, Some(Role::Replica));
    }

    #[test]
    fn surviving_replica_repairs_a_crashed_primary() {
        // Old owners [0 primary, 1 replica]; 0 crashed; new owners [1, 2].
        let old = [a(0), a(1)];
        let new = [a(1), a(2)];
        let members = [a(1), a(2)];
        let s = sync_block(a(1), &old, &new, &members);
        assert_eq!(s.push, vec![(a(2), Role::Replica)]);
        assert_eq!(s.keep, Some(Role::Primary), "survivor promotes to primary");
    }

    #[test]
    fn displaced_holder_pushes_then_drops() {
        // Shrink moved the block entirely off this server.
        let old = [a(0)];
        let new = [a(1)];
        let members = [a(1), a(2)];
        let s = sync_block(a(0), &old, &new, &members);
        assert_eq!(s.push, vec![(a(1), Role::Primary)]);
        assert_eq!(s.keep, None);
    }

    #[test]
    fn only_the_first_surviving_owner_moves() {
        // Both replicas survive; only the first pushes to the new owner.
        let old = [a(0), a(1)];
        let new = [a(0), a(2)];
        let members = [a(0), a(1), a(2)];
        let s0 = sync_block(a(0), &old, &new, &members);
        assert_eq!(s0.push, vec![(a(2), Role::Replica)]);
        assert_eq!(s0.keep, Some(Role::Primary));
        let s1 = sync_block(a(1), &old, &new, &members);
        assert!(s1.push.is_empty(), "non-mover holders stay quiet");
        assert_eq!(s1.keep, None, "no longer an owner: drop after sync");
    }

    #[test]
    fn fallback_holder_outside_old_owners_becomes_mover() {
        // The block landed here by stage fallback after its whole old
        // owner set crashed: nobody is presumed, so we move it.
        let old = [a(9)];
        let new = [a(1), a(2)];
        let members = [a(1), a(2)];
        let s = sync_block(a(1), &old, &new, &members);
        assert_eq!(s.push, vec![(a(2), Role::Replica)]);
        assert_eq!(s.keep, Some(Role::Primary));
    }

    #[test]
    fn global_plan_covers_every_new_owner() {
        let members: Vec<Address> = (0..5).map(a).collect();
        let survivors: Vec<Address> = (1..5).map(a).collect(); // 0 leaves
        let cfg = RingConfig {
            vnodes: 32,
            replication: 2,
        };
        let old = HashRing::build(&members, |_| None, cfg);
        let new = HashRing::build(&survivors, |_| None, cfg);
        let keys: Vec<BlockKey> = (0..100).map(|i| BlockKey::new("p", i)).collect();
        let plan = rebalance_plan(&old, &new, &keys);
        for key in &keys {
            let old_owners = old.owners(key);
            for (i, &owner) in new.owners(key).iter().enumerate() {
                let held = old_owners.contains(&owner) && survivors.contains(&owner);
                let pushed = plan
                    .iter()
                    .any(|t| &t.key == key && t.to == owner && t.role == role_at(i));
                assert!(
                    held || pushed,
                    "new owner {owner:?} of {key:?} neither held nor receives the block"
                );
            }
        }
    }
}
