//! The deterministic consistent-hash ring over the staging-area view.
//!
//! Every participant — the client choosing stage targets, every server
//! reconciling its holdings at a 2PC commit — rebuilds the ring from the
//! same frozen member list and must land on *identical* placement, with
//! no messages exchanged. That rules out `std`'s randomly-seeded hashers;
//! the ring uses its own fixed mixing functions (FNV-1a over strings,
//! a splitmix64 finalizer over words) so placement is stable across
//! processes, runs, and machines.

use serde::{Deserialize, Serialize};

use na::Address;

/// Ring parameters. Carried inside `commit_activate` so client and
/// servers provably agree on them for the frozen iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Virtual nodes per server: more vnodes smooth the keyspace split at
    /// the cost of a larger (still tiny) sorted point table.
    pub vnodes: usize,
    /// Copies per block: 1 = primary only (the paper's behaviour),
    /// `k` = primary plus `k-1` replicas. Clamped to the group size.
    pub replication: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            vnodes: 64,
            replication: 1,
        }
    }
}

/// The placement key of a staged block. Deliberately excludes the
/// iteration: block `i` of a pipeline lands on the same servers every
/// iteration, which keeps per-server working sets stable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockKey {
    /// Pipeline instance name.
    pub pipeline: String,
    /// Block identifier within the pipeline.
    pub block_id: u64,
}

impl BlockKey {
    /// Builds a key.
    pub fn new(pipeline: &str, block_id: u64) -> Self {
        Self {
            pipeline: pipeline.to_string(),
            block_id,
        }
    }

    /// The key's position on the ring.
    pub fn position(&self) -> u64 {
        key_hash(&self.pipeline, self.block_id)
    }
}

/// splitmix64: a fixed, high-quality 64-bit finalizer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The stable position of `(pipeline, block_id)` on the ring: FNV-1a over
/// the pipeline name, mixed with the block id.
pub fn key_hash(pipeline: &str, block_id: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in pipeline.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h ^ mix64(block_id))
}

/// The position of one virtual node of a server.
fn vnode_hash(addr: Address, vnode: usize) -> u64 {
    mix64(mix64(addr.0 ^ 0x5EED_C01A_57A6_00E5).wrapping_add(vnode as u64))
}

/// A consistent-hash ring built from one member view.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, member index)` sorted by position.
    points: Vec<(u64, u32)>,
    /// Sorted, deduplicated member list the ring was built from.
    members: Vec<Address>,
    /// Physical node of each member (`None` when topology is unknown),
    /// parallel to `members`.
    nodes: Vec<Option<usize>>,
    cfg: RingConfig,
}

impl HashRing {
    /// Builds a ring over `members`. `node_of` maps a member to its
    /// physical node for rack-aware replica spread; return `None` when
    /// the topology is unknown (spread then degrades to distinct
    /// servers). The member list is sorted and deduplicated, so any
    /// permutation of the same view builds the same ring.
    pub fn build<F>(members: &[Address], node_of: F, cfg: RingConfig) -> Self
    where
        F: Fn(Address) -> Option<usize>,
    {
        let mut members = members.to_vec();
        members.sort_unstable();
        members.dedup();
        let nodes = members.iter().map(|&m| node_of(m)).collect();
        let vnodes = cfg.vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for (i, &m) in members.iter().enumerate() {
            for v in 0..vnodes {
                points.push((vnode_hash(m, v), i as u32));
            }
        }
        points.sort_unstable();
        Self {
            points,
            members,
            nodes,
            cfg,
        }
    }

    /// Convenience: builds with the current simulated cluster topology
    /// when running inside an hpcsim process, and no topology otherwise.
    pub fn build_in_sim(members: &[Address], cfg: RingConfig) -> Self {
        match hpcsim::process::try_current() {
            Some(ctx) => {
                let cluster = ctx.cluster();
                Self::build(members, |a| cluster.node_of(a.pid()), cfg)
            }
            None => Self::build(members, |_| None, cfg),
        }
    }

    /// The (sorted) member view this ring was built from.
    pub fn members(&self) -> &[Address] {
        &self.members
    }

    /// The ring parameters.
    pub fn config(&self) -> RingConfig {
        self.cfg
    }

    /// The owner set of a key: the primary first, then `replication - 1`
    /// distinct replicas (clamped to the group size). Walks clockwise
    /// from the key's position; a first pass prefers servers on distinct
    /// physical nodes, a second pass fills from the remaining servers in
    /// ring order when there are fewer nodes than requested copies.
    pub fn owners(&self, key: &BlockKey) -> Vec<Address> {
        if self.members.is_empty() {
            return Vec::new();
        }
        let want = self.cfg.replication.max(1).min(self.members.len());
        let h = key.position();
        let start = {
            let i = self.points.partition_point(|&(p, _)| p < h);
            if i == self.points.len() {
                0
            } else {
                i
            }
        };
        let mut chosen: Vec<u32> = Vec::with_capacity(want);
        let mut nodes_used: Vec<usize> = Vec::with_capacity(want);
        for off in 0..self.points.len() {
            if chosen.len() == want {
                break;
            }
            let (_, m) = self.points[(start + off) % self.points.len()];
            if chosen.contains(&m) {
                continue;
            }
            if let Some(n) = self.nodes[m as usize] {
                if nodes_used.contains(&n) {
                    continue; // defer same-node servers to the second pass
                }
                nodes_used.push(n);
            }
            chosen.push(m);
        }
        if chosen.len() < want {
            for off in 0..self.points.len() {
                if chosen.len() == want {
                    break;
                }
                let (_, m) = self.points[(start + off) % self.points.len()];
                if !chosen.contains(&m) {
                    chosen.push(m);
                }
            }
        }
        chosen
            .into_iter()
            .map(|m| self.members[m as usize])
            .collect()
    }

    /// The primary owner of a key.
    pub fn primary(&self, key: &BlockKey) -> Option<Address> {
        self.owners(key).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: u64) -> Vec<Address> {
        (0..n).map(Address).collect()
    }

    fn cfg(replication: usize) -> RingConfig {
        RingConfig {
            vnodes: 64,
            replication,
        }
    }

    #[test]
    fn placement_ignores_member_order_and_duplicates() {
        let members = addrs(5);
        let mut shuffled = vec![members[3], members[0], members[4], members[1], members[2]];
        shuffled.push(members[0]); // duplicate
        let a = HashRing::build(&members, |_| None, cfg(2));
        let b = HashRing::build(&shuffled, |_| None, cfg(2));
        for id in 0..200 {
            let k = BlockKey::new("p", id);
            assert_eq!(a.owners(&k), b.owners(&k));
        }
    }

    #[test]
    fn owners_are_distinct_and_clamped() {
        let ring = HashRing::build(&addrs(3), |_| None, cfg(5));
        for id in 0..100 {
            let owners = ring.owners(&BlockKey::new("p", id));
            assert_eq!(owners.len(), 3, "clamped to group size");
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), owners.len(), "owners must be distinct");
        }
    }

    #[test]
    fn replicas_prefer_distinct_nodes() {
        // Two servers per node; with k=2 the replica must land on the
        // other node, not the co-resident server.
        let members = addrs(6);
        let ring = HashRing::build(&members, |a| Some((a.0 / 2) as usize), cfg(2));
        for id in 0..200 {
            let owners = ring.owners(&BlockKey::new("p", id));
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0].0 / 2, owners[1].0 / 2, "replica on a distinct node");
        }
    }

    #[test]
    fn more_copies_than_nodes_still_fills_distinct_servers() {
        // 4 servers on 2 nodes, k=3: two copies must share a node but all
        // three must be distinct servers.
        let members = addrs(4);
        let ring = HashRing::build(&members, |a| Some((a.0 / 2) as usize), cfg(3));
        for id in 0..100 {
            let owners = ring.owners(&BlockKey::new("p", id));
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3);
        }
    }

    #[test]
    fn empty_view_has_no_owners() {
        let ring = HashRing::build(&[], |_| None, cfg(2));
        assert!(ring.owners(&BlockKey::new("p", 0)).is_empty());
        assert_eq!(ring.primary(&BlockKey::new("p", 0)), None);
    }

    #[test]
    fn key_hash_is_stable() {
        // Pin the constants: a silent change to the mixing would strand
        // every block staged by an older build.
        assert_eq!(key_hash("p", 0), key_hash("p", 0));
        assert_ne!(key_hash("p", 0), key_hash("p", 1));
        assert_ne!(key_hash("p", 0), key_hash("q", 0));
    }
}
