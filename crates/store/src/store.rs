//! The per-server block table backing a Colza provider.
//!
//! Every staged (or migrated-in) block is recorded here with its role and
//! whether it has been *fed* to the pipeline backend. Only the primary
//! copy is fed — that is what keeps `execute` rendering each block
//! exactly once across the staging area even when `k` servers hold it —
//! and promotion/demotion during repair flips feeding accordingly.
//! Inserts are idempotent: stage retries, drain and repair may race and
//! deliver the same copy twice.
//!
//! A copy's identity is `(pipeline, iteration, block_id, dataset name)`:
//! one block may carry several datasets (`BlockMeta::name`), and each is
//! held separately. The *ring* key deliberately excludes the name, so
//! all datasets of a block colocate on the same owners.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ring::BlockKey;

/// The role of one copy of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// The copy fed to the backend; exactly one per block per view.
    Primary,
    /// A passive copy kept for crash recovery.
    Replica,
}

/// One copy of a block held by a server.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Placement key (pipeline, block id).
    pub key: BlockKey,
    /// Dataset/field name from the block's metadata.
    pub name: String,
    /// Iteration the block belongs to.
    pub iteration: u64,
    /// This copy's role.
    pub role: Role,
    /// Whether this copy has been fed to the backend.
    pub fed: bool,
    /// The payload, in its *encoded* (wire/store) form. Replication,
    /// repair and rebalance all move this same `Bytes` refcount — a
    /// block is never re-encoded once staged.
    pub data: Bytes,
    /// Numeric codec id of `data` (the store is below the codec layer
    /// and treats it as opaque; `0` is raw).
    pub codec: u8,
    /// Decoded payload length (`== data.len()` for raw blocks).
    pub decoded_len: usize,
    /// For chain codecs (iteration deltas): the reconstructed plain
    /// payload, kept so this holder can serve as a delta base and seed
    /// fresh owners during repair without the released base frame.
    pub plain: Option<Bytes>,
}

type Key = (String, u64, u64, String); // (pipeline, iteration, block_id, name)

fn key_of(b: &StoredBlock) -> Key {
    (
        b.key.pipeline.clone(),
        b.iteration,
        b.key.block_id,
        b.name.clone(),
    )
}

/// The block table. Iteration order (and therefore sync/drain push
/// order) is the sorted `(pipeline, iteration, block_id, name)` order,
/// which keeps migration traffic deterministic for a deterministic store.
#[derive(Debug, Default)]
pub struct StagingStore {
    blocks: Mutex<BTreeMap<Key, StoredBlock>>,
    bytes: AtomicU64,
    decoded: AtomicU64,
}

impl StagingStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a copy. Idempotent: re-inserting an already-held block
    /// keeps the existing payload and fed flag, only upgrading the role
    /// to `Primary` if the incoming copy claims it. Returns `true` when
    /// the block was not held before.
    pub fn insert(&self, block: StoredBlock) -> bool {
        let k = key_of(&block);
        let mut blocks = self.blocks.lock();
        match blocks.get_mut(&k) {
            Some(existing) => {
                if block.role == Role::Primary {
                    existing.role = Role::Primary;
                }
                // A re-push may carry the reconstructed plain this holder
                // lacked (delta repair); adopt it, never drop it.
                if existing.plain.is_none() {
                    existing.plain = block.plain;
                }
                false
            }
            None => {
                self.bytes.fetch_add(block.data.len() as u64, Ordering::Relaxed);
                self.decoded
                    .fetch_add(block.decoded_len as u64, Ordering::Relaxed);
                blocks.insert(k, block);
                true
            }
        }
    }

    /// Makes a held copy the primary. Returns `true` when the copy still
    /// needs to be fed to the backend (and marks it fed — the caller must
    /// feed it or call [`StagingStore::unmark_fed`] on failure).
    pub fn promote(&self, pipeline: &str, iteration: u64, block_id: u64, name: &str) -> bool {
        let mut blocks = self.blocks.lock();
        match blocks.get_mut(&(pipeline.to_string(), iteration, block_id, name.to_string())) {
            Some(b) => {
                b.role = Role::Primary;
                if b.fed {
                    false
                } else {
                    b.fed = true;
                    true
                }
            }
            None => false,
        }
    }

    /// Demotes a held copy to replica. Returns `true` when the copy had
    /// been fed (the caller must unstage it from the backend).
    pub fn demote(&self, pipeline: &str, iteration: u64, block_id: u64, name: &str) -> bool {
        let mut blocks = self.blocks.lock();
        match blocks.get_mut(&(pipeline.to_string(), iteration, block_id, name.to_string())) {
            Some(b) => {
                b.role = Role::Replica;
                std::mem::take(&mut b.fed)
            }
            None => false,
        }
    }

    /// Reverts a [`StagingStore::promote`] feed claim after the backend
    /// rejected the block.
    pub fn unmark_fed(&self, pipeline: &str, iteration: u64, block_id: u64, name: &str) {
        if let Some(b) = self
            .blocks
            .lock()
            .get_mut(&(pipeline.to_string(), iteration, block_id, name.to_string()))
        {
            b.fed = false;
        }
    }

    /// Removes one copy, returning it.
    pub fn remove(
        &self,
        pipeline: &str,
        iteration: u64,
        block_id: u64,
        name: &str,
    ) -> Option<StoredBlock> {
        let removed = self
            .blocks
            .lock()
            .remove(&(pipeline.to_string(), iteration, block_id, name.to_string()));
        if let Some(b) = &removed {
            self.bytes.fetch_sub(b.data.len() as u64, Ordering::Relaxed);
            self.decoded
                .fetch_sub(b.decoded_len as u64, Ordering::Relaxed);
        }
        removed
    }

    /// Drops every copy belonging to `(pipeline, iteration)` — the
    /// `deactivate` release path. Returns how many were dropped.
    pub fn release_iteration(&self, pipeline: &str, iteration: u64) -> usize {
        let mut blocks = self.blocks.lock();
        let mut dropped = 0;
        blocks.retain(|k, b| {
            if k.0 == pipeline && k.1 == iteration {
                self.bytes.fetch_sub(b.data.len() as u64, Ordering::Relaxed);
                self.decoded
                    .fetch_sub(b.decoded_len as u64, Ordering::Relaxed);
                dropped += 1;
                false
            } else {
                true
            }
        });
        dropped
    }

    /// A sorted snapshot of every held copy (sync and drain walk this).
    pub fn snapshot(&self) -> Vec<StoredBlock> {
        self.blocks.lock().values().cloned().collect()
    }

    /// Total payload bytes currently held, in their stored (encoded)
    /// form — the drain-aware shrink signal exported through
    /// `colza.admin.metrics`, and what migration actually moves.
    pub fn staged_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total *decoded* size of the held copies (sum of the blocks'
    /// `decoded_len`) — the codec-independent accounting view. Equal to
    /// [`StagingStore::staged_bytes`] when everything is raw.
    pub fn decoded_bytes(&self) -> u64 {
        self.decoded.load(Ordering::Relaxed)
    }

    /// Number of copies held.
    pub fn len(&self) -> usize {
        self.blocks.lock().len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blocks.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: u64, role: Role, bytes: usize) -> StoredBlock {
        StoredBlock {
            key: BlockKey::new("p", id),
            name: "field".to_string(),
            iteration: 0,
            role,
            fed: false,
            data: Bytes::from(vec![0u8; bytes]),
            codec: 0,
            decoded_len: bytes,
            plain: None,
        }
    }

    #[test]
    fn insert_is_idempotent_and_counts_bytes() {
        let s = StagingStore::new();
        assert!(s.insert(block(1, Role::Replica, 10)));
        assert!(!s.insert(block(1, Role::Replica, 10)), "duplicate insert");
        assert_eq!(s.staged_bytes(), 10);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_insert_upgrades_role_but_never_downgrades() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Replica, 4));
        s.insert(block(1, Role::Primary, 4));
        assert_eq!(s.snapshot()[0].role, Role::Primary);
        s.insert(block(1, Role::Replica, 4));
        assert_eq!(s.snapshot()[0].role, Role::Primary);
    }

    #[test]
    fn promote_claims_feeding_exactly_once() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Replica, 4));
        assert!(s.promote("p", 0, 1, "field"), "first promote must feed");
        assert!(!s.promote("p", 0, 1, "field"), "already fed");
        assert!(s.demote("p", 0, 1, "field"), "was fed: caller unstages");
        assert!(s.promote("p", 0, 1, "field"), "re-promotion feeds again");
        s.unmark_fed("p", 0, 1, "field");
        assert!(s.promote("p", 0, 1, "field"), "failed feed can be retried");
    }

    #[test]
    fn distinct_datasets_under_one_block_id_are_held_separately() {
        // Two datasets of the same block must not collide: the second
        // insert is a new copy, not a silently-dropped duplicate.
        let s = StagingStore::new();
        let mut temperature = block(1, Role::Primary, 8);
        temperature.name = "temperature".to_string();
        let mut pressure = block(1, Role::Primary, 16);
        pressure.name = "pressure".to_string();
        assert!(s.insert(temperature));
        assert!(s.insert(pressure), "second dataset is a fresh insert");
        assert_eq!(s.len(), 2);
        assert_eq!(s.staged_bytes(), 24);
        assert!(s.promote("p", 0, 1, "temperature"), "fed independently");
        assert!(s.promote("p", 0, 1, "pressure"), "fed independently");
        let removed = s.remove("p", 0, 1, "temperature").expect("held");
        assert_eq!(removed.name, "temperature");
        assert_eq!(s.staged_bytes(), 16);
    }

    #[test]
    fn release_iteration_only_touches_that_iteration() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Primary, 8));
        let mut b2 = block(2, Role::Primary, 8);
        b2.iteration = 1;
        s.insert(b2);
        assert_eq!(s.release_iteration("p", 0), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.staged_bytes(), 8);
        assert_eq!(s.release_iteration("other", 1), 0);
    }

    #[test]
    fn encoded_and_decoded_bytes_are_tracked_separately() {
        let s = StagingStore::new();
        let mut b = block(1, Role::Primary, 10);
        b.codec = 1;
        b.decoded_len = 40; // a 4x-compressed block
        s.insert(b);
        assert_eq!(s.staged_bytes(), 10, "store holds encoded bytes");
        assert_eq!(s.decoded_bytes(), 40, "accounting sees decoded size");
        s.insert(block(2, Role::Replica, 8)); // raw: both views equal
        assert_eq!(s.staged_bytes(), 18);
        assert_eq!(s.decoded_bytes(), 48);
        s.remove("p", 0, 1, "field");
        assert_eq!(s.staged_bytes(), 8);
        assert_eq!(s.decoded_bytes(), 8);
        assert_eq!(s.release_iteration("p", 0), 1);
        assert_eq!(s.decoded_bytes(), 0);
    }

    #[test]
    fn reinsert_adopts_missing_plain_payload() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Replica, 4));
        let mut with_plain = block(1, Role::Replica, 4);
        with_plain.plain = Some(Bytes::from(vec![9u8; 4]));
        assert!(!s.insert(with_plain), "still a duplicate");
        assert!(s.snapshot()[0].plain.is_some(), "plain was adopted");
    }

    #[test]
    fn remove_returns_the_copy() {
        let s = StagingStore::new();
        s.insert(block(3, Role::Replica, 16));
        let b = s.remove("p", 0, 3, "field").expect("held");
        assert_eq!(b.key.block_id, 3);
        assert_eq!(s.staged_bytes(), 0);
        assert!(s.is_empty());
        assert!(s.remove("p", 0, 3, "field").is_none());
    }
}
