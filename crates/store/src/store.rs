//! The per-server block table backing a Colza provider.
//!
//! Every staged (or migrated-in) block is recorded here with its role and
//! whether it has been *fed* to the pipeline backend. Only the primary
//! copy is fed — that is what keeps `execute` rendering each block
//! exactly once across the staging area even when `k` servers hold it —
//! and promotion/demotion during repair flips feeding accordingly.
//! Inserts are idempotent: stage retries, drain and repair may race and
//! deliver the same copy twice.
//!
//! A copy's identity is `(pipeline, iteration, block_id, dataset name)`:
//! one block may carry several datasets (`BlockMeta::name`), and each is
//! held separately. The *ring* key deliberately excludes the name, so
//! all datasets of a block colocate on the same owners.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ring::BlockKey;

/// The role of one copy of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// The copy fed to the backend; exactly one per block per view.
    Primary,
    /// A passive copy kept for crash recovery.
    Replica,
}

/// Live resource usage of one tenant on one server — the per-tenant
/// section of the `colza.admin.metrics` scrape, and the input to
/// tenant-aware shrink victim selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// The tenant's name.
    pub tenant: String,
    /// Encoded (on-store) bytes currently held for the tenant — what
    /// staged-byte quotas meter.
    pub staged_bytes: u64,
    /// Decoded size of the same holdings.
    pub decoded_bytes: u64,
    /// Number of copies held.
    pub blocks: u64,
}

/// Outcome of a quota-checked [`StagingStore::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The copy was recorded; quota was charged.
    Fresh,
    /// The copy was already held (idempotent re-insert); no charge.
    Duplicate,
    /// Admitting would push the tenant's staged bytes past its quota.
    OverQuota {
        /// The tenant's staged bytes at refusal time.
        used: u64,
    },
}

/// One copy of a block held by a server.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Placement key (pipeline, block id).
    pub key: BlockKey,
    /// Dataset/field name from the block's metadata.
    pub name: String,
    /// Tenant the block belongs to (quota and accounting key).
    pub tenant: String,
    /// Iteration the block belongs to.
    pub iteration: u64,
    /// This copy's role.
    pub role: Role,
    /// Whether this copy has been fed to the backend.
    pub fed: bool,
    /// The payload, in its *encoded* (wire/store) form. Replication,
    /// repair and rebalance all move this same `Bytes` refcount — a
    /// block is never re-encoded once staged.
    pub data: Bytes,
    /// Numeric codec id of `data` (the store is below the codec layer
    /// and treats it as opaque; `0` is raw).
    pub codec: u8,
    /// Decoded payload length (`== data.len()` for raw blocks).
    pub decoded_len: usize,
    /// For chain codecs (iteration deltas): the reconstructed plain
    /// payload, kept so this holder can serve as a delta base and seed
    /// fresh owners during repair without the released base frame.
    pub plain: Option<Bytes>,
}

type Key = (String, u64, u64, String); // (pipeline, iteration, block_id, name)

fn key_of(b: &StoredBlock) -> Key {
    (
        b.key.pipeline.clone(),
        b.iteration,
        b.key.block_id,
        b.name.clone(),
    )
}

/// Per-tenant running totals, updated on every insert/remove.
#[derive(Debug, Default, Clone, Copy)]
struct TenantLoad {
    bytes: u64,
    decoded: u64,
    blocks: u64,
}

/// The block table. Iteration order (and therefore sync/drain push
/// order) is the sorted `(pipeline, iteration, block_id, name)` order,
/// which keeps migration traffic deterministic for a deterministic store.
///
/// The table also keeps per-tenant running totals: quota checks in
/// [`StagingStore::admit`] read them under the same lock as the insert,
/// so two concurrent admissions can never both squeeze under a quota.
#[derive(Debug, Default)]
pub struct StagingStore {
    inner: Mutex<Inner>,
    bytes: AtomicU64,
    decoded: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    blocks: BTreeMap<Key, StoredBlock>,
    tenants: BTreeMap<String, TenantLoad>,
}

impl Inner {
    fn charge(&mut self, block: &StoredBlock) {
        let t = self.tenants.entry(block.tenant.clone()).or_default();
        t.bytes += block.data.len() as u64;
        t.decoded += block.decoded_len as u64;
        t.blocks += 1;
    }

    fn refund(&mut self, block: &StoredBlock) {
        if let Some(t) = self.tenants.get_mut(&block.tenant) {
            t.bytes = t.bytes.saturating_sub(block.data.len() as u64);
            t.decoded = t.decoded.saturating_sub(block.decoded_len as u64);
            t.blocks = t.blocks.saturating_sub(1);
            if t.blocks == 0 {
                self.tenants.remove(&block.tenant);
            }
        }
    }
}

impl StagingStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a copy. Idempotent: re-inserting an already-held block
    /// keeps the existing payload and fed flag, only upgrading the role
    /// to `Primary` if the incoming copy claims it. Returns `true` when
    /// the block was not held before.
    pub fn insert(&self, block: StoredBlock) -> bool {
        self.admit(block, u64::MAX) == Admit::Fresh
    }

    /// Quota-checked insert: refuses the copy when the tenant's staged
    /// bytes plus this payload would exceed `quota`. Duplicate re-inserts
    /// (stage retries, repair races) are *always* accepted — they charge
    /// nothing — so a retried RPC can never bounce off a quota its first
    /// delivery already consumed. A `quota` of `u64::MAX` is unlimited;
    /// `0` admits only empty payloads.
    pub fn admit(&self, block: StoredBlock, quota: u64) -> Admit {
        let k = key_of(&block);
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.blocks.get_mut(&k) {
            if block.role == Role::Primary {
                existing.role = Role::Primary;
            }
            // A re-push may carry the reconstructed plain this holder
            // lacked (delta repair); adopt it, never drop it.
            if existing.plain.is_none() {
                existing.plain = block.plain;
            }
            return Admit::Duplicate;
        }
        let used = inner
            .tenants
            .get(&block.tenant)
            .map_or(0, |t| t.bytes);
        if quota != u64::MAX && used.saturating_add(block.data.len() as u64) > quota {
            return Admit::OverQuota { used };
        }
        self.bytes.fetch_add(block.data.len() as u64, Ordering::Relaxed);
        self.decoded
            .fetch_add(block.decoded_len as u64, Ordering::Relaxed);
        inner.charge(&block);
        inner.blocks.insert(k, block);
        Admit::Fresh
    }

    /// Makes a held copy the primary. Returns `true` when the copy still
    /// needs to be fed to the backend (and marks it fed — the caller must
    /// feed it or call [`StagingStore::unmark_fed`] on failure).
    pub fn promote(&self, pipeline: &str, iteration: u64, block_id: u64, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner
            .blocks
            .get_mut(&(pipeline.to_string(), iteration, block_id, name.to_string()))
        {
            Some(b) => {
                b.role = Role::Primary;
                if b.fed {
                    false
                } else {
                    b.fed = true;
                    true
                }
            }
            None => false,
        }
    }

    /// Demotes a held copy to replica. Returns `true` when the copy had
    /// been fed (the caller must unstage it from the backend).
    pub fn demote(&self, pipeline: &str, iteration: u64, block_id: u64, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner
            .blocks
            .get_mut(&(pipeline.to_string(), iteration, block_id, name.to_string()))
        {
            Some(b) => {
                b.role = Role::Replica;
                std::mem::take(&mut b.fed)
            }
            None => false,
        }
    }

    /// Reverts a [`StagingStore::promote`] feed claim after the backend
    /// rejected the block.
    pub fn unmark_fed(&self, pipeline: &str, iteration: u64, block_id: u64, name: &str) {
        if let Some(b) = self
            .inner
            .lock()
            .blocks
            .get_mut(&(pipeline.to_string(), iteration, block_id, name.to_string()))
        {
            b.fed = false;
        }
    }

    /// Removes one copy, returning it.
    pub fn remove(
        &self,
        pipeline: &str,
        iteration: u64,
        block_id: u64,
        name: &str,
    ) -> Option<StoredBlock> {
        let mut inner = self.inner.lock();
        let removed = inner
            .blocks
            .remove(&(pipeline.to_string(), iteration, block_id, name.to_string()));
        if let Some(b) = &removed {
            self.bytes.fetch_sub(b.data.len() as u64, Ordering::Relaxed);
            self.decoded
                .fetch_sub(b.decoded_len as u64, Ordering::Relaxed);
            inner.refund(b);
        }
        removed
    }

    /// Drops every copy belonging to `(pipeline, iteration)` — the
    /// `deactivate` release path. Returns how many were dropped.
    pub fn release_iteration(&self, pipeline: &str, iteration: u64) -> usize {
        let mut inner = self.inner.lock();
        let mut released = Vec::new();
        inner.blocks.retain(|k, b| {
            if k.0 == pipeline && k.1 == iteration {
                self.bytes.fetch_sub(b.data.len() as u64, Ordering::Relaxed);
                self.decoded
                    .fetch_sub(b.decoded_len as u64, Ordering::Relaxed);
                released.push(b.clone());
                false
            } else {
                true
            }
        });
        for b in &released {
            inner.refund(b);
        }
        released.len()
    }

    /// A sorted snapshot of every held copy (sync and drain walk this).
    pub fn snapshot(&self) -> Vec<StoredBlock> {
        self.inner.lock().blocks.values().cloned().collect()
    }

    /// Per-tenant usage, sorted by tenant name. Tenants that hold no
    /// copies are absent — a tenant's entry disappears the moment its
    /// last block is released.
    pub fn tenant_usage(&self) -> Vec<TenantUsage> {
        self.inner
            .lock()
            .tenants
            .iter()
            .map(|(name, t)| TenantUsage {
                tenant: name.clone(),
                staged_bytes: t.bytes,
                decoded_bytes: t.decoded,
                blocks: t.blocks,
            })
            .collect()
    }

    /// Encoded bytes currently held for one tenant (what its quota
    /// meters); `0` for an unknown tenant.
    pub fn tenant_staged_bytes(&self, tenant: &str) -> u64 {
        self.inner
            .lock()
            .tenants
            .get(tenant)
            .map_or(0, |t| t.bytes)
    }

    /// Total payload bytes currently held, in their stored (encoded)
    /// form — the drain-aware shrink signal exported through
    /// `colza.admin.metrics`, and what migration actually moves.
    pub fn staged_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total *decoded* size of the held copies (sum of the blocks'
    /// `decoded_len`) — the codec-independent accounting view. Equal to
    /// [`StagingStore::staged_bytes`] when everything is raw.
    pub fn decoded_bytes(&self) -> u64 {
        self.decoded.load(Ordering::Relaxed)
    }

    /// Number of copies held.
    pub fn len(&self) -> usize {
        self.inner.lock().blocks.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: u64, role: Role, bytes: usize) -> StoredBlock {
        StoredBlock {
            key: BlockKey::new("p", id),
            name: "field".to_string(),
            tenant: "default".to_string(),
            iteration: 0,
            role,
            fed: false,
            data: Bytes::from(vec![0u8; bytes]),
            codec: 0,
            decoded_len: bytes,
            plain: None,
        }
    }

    fn tenant_block(tenant: &str, id: u64, bytes: usize) -> StoredBlock {
        let mut b = block(id, Role::Primary, bytes);
        b.tenant = tenant.to_string();
        b
    }

    #[test]
    fn insert_is_idempotent_and_counts_bytes() {
        let s = StagingStore::new();
        assert!(s.insert(block(1, Role::Replica, 10)));
        assert!(!s.insert(block(1, Role::Replica, 10)), "duplicate insert");
        assert_eq!(s.staged_bytes(), 10);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_insert_upgrades_role_but_never_downgrades() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Replica, 4));
        s.insert(block(1, Role::Primary, 4));
        assert_eq!(s.snapshot()[0].role, Role::Primary);
        s.insert(block(1, Role::Replica, 4));
        assert_eq!(s.snapshot()[0].role, Role::Primary);
    }

    #[test]
    fn promote_claims_feeding_exactly_once() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Replica, 4));
        assert!(s.promote("p", 0, 1, "field"), "first promote must feed");
        assert!(!s.promote("p", 0, 1, "field"), "already fed");
        assert!(s.demote("p", 0, 1, "field"), "was fed: caller unstages");
        assert!(s.promote("p", 0, 1, "field"), "re-promotion feeds again");
        s.unmark_fed("p", 0, 1, "field");
        assert!(s.promote("p", 0, 1, "field"), "failed feed can be retried");
    }

    #[test]
    fn distinct_datasets_under_one_block_id_are_held_separately() {
        // Two datasets of the same block must not collide: the second
        // insert is a new copy, not a silently-dropped duplicate.
        let s = StagingStore::new();
        let mut temperature = block(1, Role::Primary, 8);
        temperature.name = "temperature".to_string();
        let mut pressure = block(1, Role::Primary, 16);
        pressure.name = "pressure".to_string();
        assert!(s.insert(temperature));
        assert!(s.insert(pressure), "second dataset is a fresh insert");
        assert_eq!(s.len(), 2);
        assert_eq!(s.staged_bytes(), 24);
        assert!(s.promote("p", 0, 1, "temperature"), "fed independently");
        assert!(s.promote("p", 0, 1, "pressure"), "fed independently");
        let removed = s.remove("p", 0, 1, "temperature").expect("held");
        assert_eq!(removed.name, "temperature");
        assert_eq!(s.staged_bytes(), 16);
    }

    #[test]
    fn release_iteration_only_touches_that_iteration() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Primary, 8));
        let mut b2 = block(2, Role::Primary, 8);
        b2.iteration = 1;
        s.insert(b2);
        assert_eq!(s.release_iteration("p", 0), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.staged_bytes(), 8);
        assert_eq!(s.release_iteration("other", 1), 0);
    }

    #[test]
    fn encoded_and_decoded_bytes_are_tracked_separately() {
        let s = StagingStore::new();
        let mut b = block(1, Role::Primary, 10);
        b.codec = 1;
        b.decoded_len = 40; // a 4x-compressed block
        s.insert(b);
        assert_eq!(s.staged_bytes(), 10, "store holds encoded bytes");
        assert_eq!(s.decoded_bytes(), 40, "accounting sees decoded size");
        s.insert(block(2, Role::Replica, 8)); // raw: both views equal
        assert_eq!(s.staged_bytes(), 18);
        assert_eq!(s.decoded_bytes(), 48);
        s.remove("p", 0, 1, "field");
        assert_eq!(s.staged_bytes(), 8);
        assert_eq!(s.decoded_bytes(), 8);
        assert_eq!(s.release_iteration("p", 0), 1);
        assert_eq!(s.decoded_bytes(), 0);
    }

    #[test]
    fn reinsert_adopts_missing_plain_payload() {
        let s = StagingStore::new();
        s.insert(block(1, Role::Replica, 4));
        let mut with_plain = block(1, Role::Replica, 4);
        with_plain.plain = Some(Bytes::from(vec![9u8; 4]));
        assert!(!s.insert(with_plain), "still a duplicate");
        assert!(s.snapshot()[0].plain.is_some(), "plain was adopted");
    }

    #[test]
    fn admit_enforces_quota_at_the_exact_boundary() {
        let s = StagingStore::new();
        // Exactly at quota: admitted.
        assert_eq!(s.admit(tenant_block("a", 1, 64), 64), Admit::Fresh);
        // One byte over: refused with the usage at refusal time.
        assert_eq!(
            s.admit(tenant_block("a", 2, 1), 64),
            Admit::OverQuota { used: 64 }
        );
        // The refused copy was not recorded and charged nothing.
        assert_eq!(s.len(), 1);
        assert_eq!(s.tenant_staged_bytes("a"), 64);
        // Another tenant's quota is its own.
        assert_eq!(s.admit(tenant_block("b", 2, 64), 64), Admit::Fresh);
    }

    #[test]
    fn admit_quota_freed_on_release_and_remove() {
        let s = StagingStore::new();
        assert_eq!(s.admit(tenant_block("a", 1, 64), 64), Admit::Fresh);
        assert!(matches!(
            s.admit(tenant_block("a", 2, 64), 64),
            Admit::OverQuota { .. }
        ));
        // deactivate path frees the quota...
        assert_eq!(s.release_iteration("p", 0), 1);
        assert_eq!(s.tenant_staged_bytes("a"), 0);
        assert_eq!(s.admit(tenant_block("a", 2, 64), 64), Admit::Fresh);
        // ...and so does a plain remove (repair drop path).
        s.remove("p", 0, 2, "field").expect("held");
        assert_eq!(s.tenant_staged_bytes("a"), 0);
        assert!(s.tenant_usage().is_empty(), "empty tenants drop out");
    }

    #[test]
    fn admit_duplicates_never_charge_or_bounce() {
        let s = StagingStore::new();
        assert_eq!(s.admit(tenant_block("a", 1, 64), 64), Admit::Fresh);
        // A stage retry of the same copy must succeed even though the
        // tenant is fully at quota, and must not double-charge.
        assert_eq!(s.admit(tenant_block("a", 1, 64), 64), Admit::Duplicate);
        assert_eq!(s.tenant_staged_bytes("a"), 64);
        assert_eq!(s.staged_bytes(), 64);
    }

    #[test]
    fn admit_degenerate_quotas() {
        let s = StagingStore::new();
        // Zero quota: any non-empty payload is refused...
        assert_eq!(
            s.admit(tenant_block("a", 1, 1), 0),
            Admit::OverQuota { used: 0 }
        );
        // ...but an empty payload still fits.
        assert_eq!(s.admit(tenant_block("a", 1, 0), 0), Admit::Fresh);
        // Unlimited quota admits anything.
        assert_eq!(
            s.admit(tenant_block("b", 2, 1 << 20), u64::MAX),
            Admit::Fresh
        );
    }

    #[test]
    fn tenant_usage_tracks_per_tenant_totals() {
        let s = StagingStore::new();
        s.insert(tenant_block("a", 1, 8));
        s.insert(tenant_block("a", 2, 8));
        let mut compressed = tenant_block("b", 3, 4);
        compressed.codec = 1;
        compressed.decoded_len = 16;
        s.insert(compressed);
        let usage = s.tenant_usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].tenant, "a");
        assert_eq!(usage[0].staged_bytes, 16);
        assert_eq!(usage[0].decoded_bytes, 16);
        assert_eq!(usage[0].blocks, 2);
        assert_eq!(usage[1].tenant, "b");
        assert_eq!(usage[1].staged_bytes, 4);
        assert_eq!(usage[1].decoded_bytes, 16);
        // Per-tenant totals always reconcile with the aggregates.
        let (sb, db): (u64, u64) = usage
            .iter()
            .fold((0, 0), |(s0, d0), t| (s0 + t.staged_bytes, d0 + t.decoded_bytes));
        assert_eq!(sb, s.staged_bytes());
        assert_eq!(db, s.decoded_bytes());
    }

    #[test]
    fn remove_returns_the_copy() {
        let s = StagingStore::new();
        s.insert(block(3, Role::Replica, 16));
        let b = s.remove("p", 0, 3, "field").expect("held");
        assert_eq!(b.key.block_id, 3);
        assert_eq!(s.staged_bytes(), 0);
        assert!(s.is_empty());
        assert!(s.remove("p", 0, 3, "field").is_none());
    }
}
