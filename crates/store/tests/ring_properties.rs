//! Property tests for the staging store's placement and migration
//! planning (DESIGN.md §10): the invariants the whole resilience story
//! rests on. Placement must be a pure function of the member *set* (so
//! clients and servers agree without coordination), replicas must land on
//! distinct servers, a single membership change must relocate only its
//! fair share of the keyspace, and the migration plan must leave every
//! new owner holding its blocks.

use na::Address;
use proptest::prelude::*;
use store::{rebalance_plan, BlockKey, HashRing, RingConfig};

/// Builds a topology-blind ring over `n` distinct members derived from a
/// seed (addresses are scattered, not 0..n, so nothing accidentally
/// depends on density).
fn ring_of(seed: u64, n: usize, cfg: RingConfig) -> HashRing {
    let members = members_of(seed, n);
    HashRing::build(&members, |_| None, cfg)
}

fn members_of(seed: u64, n: usize) -> Vec<Address> {
    (0..n as u64)
        .map(|i| Address(seed.wrapping_mul(0x9E37_79B9).wrapping_add(i * 7919) % 100_000))
        .collect()
}

fn keys(pipeline: &str, n: u64) -> Vec<BlockKey> {
    (0..n).map(|b| BlockKey::new(pipeline, b)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placement is deterministic and member-order-independent: any
    /// permutation of the same member set yields identical owner lists.
    #[test]
    fn placement_is_a_function_of_the_member_set(
        seed in any::<u64>(),
        n in 1usize..12,
        replication in 1usize..4,
        rot in 0usize..12,
    ) {
        let cfg = RingConfig { replication, ..RingConfig::default() };
        let mut members = members_of(seed, n);
        members.sort();
        members.dedup();
        let a = HashRing::build(&members, |_| None, cfg);
        let mut rotated = members.clone();
        rotated.rotate_left(rot % members.len().max(1));
        let b = HashRing::build(&rotated, |_| None, cfg);
        for k in keys("prop", 64) {
            prop_assert_eq!(a.owners(&k), b.owners(&k));
        }
    }

    /// Every block gets `min(replication, n)` owners, all distinct, with
    /// the primary first.
    #[test]
    fn replicas_are_distinct_servers(
        seed in any::<u64>(),
        n in 1usize..12,
        replication in 1usize..5,
    ) {
        let ring = ring_of(seed, n, RingConfig { replication, ..RingConfig::default() });
        let servers = ring.members().len();
        for k in keys("prop", 64) {
            let owners = ring.owners(&k);
            prop_assert_eq!(owners.len(), replication.min(servers));
            let mut dedup = owners.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), owners.len(), "owners must be distinct");
            prop_assert_eq!(owners[0], ring.primary(&k).unwrap());
        }
    }

    /// One join relocates roughly its fair share of primaries — the
    /// consistent-hashing contract. With vnodes the variance is real but
    /// bounded: allow up to 3x the ideal 1/(n+1) share, and require the
    /// newcomer to actually receive every relocated block.
    #[test]
    fn single_join_relocates_a_bounded_share(
        seed in any::<u64>(),
        n in 2usize..10,
    ) {
        let cfg = RingConfig { vnodes: 128, replication: 1 };
        let mut members = members_of(seed, n);
        members.sort();
        members.dedup();
        let joiner = Address(1_000_000 + (seed % 1000));
        let mut grown = members.clone();
        grown.push(joiner);
        let old = HashRing::build(&members, |_| None, cfg);
        let new = HashRing::build(&grown, |_| None, cfg);
        let ks = keys("prop", 256);
        let mut moved = 0usize;
        for k in &ks {
            let before = old.primary(k).unwrap();
            let after = new.primary(k).unwrap();
            if before != after {
                moved += 1;
                // Consistent hashing: a block only moves *to the joiner*.
                prop_assert_eq!(after, joiner);
            }
        }
        let n_new = new.members().len();
        let fair = ks.len() / n_new;
        prop_assert!(
            moved <= fair * 3 + 8,
            "join moved {} of {} blocks (fair share {})",
            moved, ks.len(), fair
        );
    }

    /// One leave relocates only the leaver's blocks: every block whose
    /// primary survives keeps its primary.
    #[test]
    fn single_leave_moves_only_the_leavers_blocks(
        seed in any::<u64>(),
        n in 2usize..10,
        leaver_pick in any::<usize>(),
    ) {
        let cfg = RingConfig { vnodes: 128, replication: 1 };
        let mut members = members_of(seed, n);
        members.sort();
        members.dedup();
        let leaver = members[leaver_pick % members.len()];
        let shrunk: Vec<Address> = members.iter().copied().filter(|&m| m != leaver).collect();
        let old = HashRing::build(&members, |_| None, cfg);
        let new = HashRing::build(&shrunk, |_| None, cfg);
        for k in keys("prop", 256) {
            let before = old.primary(&k).unwrap();
            let after = new.primary(&k).unwrap();
            if before != leaver {
                prop_assert_eq!(before, after, "surviving primaries must not move");
            } else {
                prop_assert!(after != leaver);
            }
        }
    }

    /// The migration plan is complete: applying every transfer to the
    /// old placement leaves each new owner holding each of its blocks,
    /// and no transfer targets a server that already held the block.
    #[test]
    fn rebalance_plan_covers_every_new_owner(
        seed in any::<u64>(),
        n_old in 1usize..8,
        n_new in 1usize..8,
        replication in 1usize..3,
    ) {
        let cfg = RingConfig { replication, ..RingConfig::default() };
        // Overlapping but different member sets (same seed, different n).
        let mut old_members = members_of(seed, n_old);
        old_members.sort();
        old_members.dedup();
        let mut new_members = members_of(seed, n_new);
        new_members.push(Address(2_000_000 + seed % 100));
        new_members.sort();
        new_members.dedup();
        let old = HashRing::build(&old_members, |_| None, cfg);
        let new = HashRing::build(&new_members, |_| None, cfg);
        let ks = keys("prop", 64);
        let plan = rebalance_plan(&old, &new, &ks);
        for k in &ks {
            let old_owners = old.owners(k);
            if !old_owners.iter().any(|h| new.members().contains(h)) {
                // Every copy's holder left the group: the block is lost
                // (failures exceeded the replication factor). No plan can
                // cover it, so the completeness contract does not apply.
                continue;
            }
            for target in new.owners(k) {
                let held_before = old_owners.contains(&target)
                    && new.members().contains(&target);
                let pushed = plan
                    .iter()
                    .any(|t| t.key == *k && t.to == target);
                prop_assert!(
                    held_before || pushed,
                    "new owner {:?} of block {} neither held it nor receives it",
                    target, k.block_id
                );
                prop_assert!(
                    !(held_before && pushed),
                    "plan pushes block {} to {:?} which already holds it",
                    k.block_id, target
                );
            }
        }
    }
}
