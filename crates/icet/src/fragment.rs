//! Image fragments: contiguous pixel bands exchanged by binary swap.

use vizkit::Image;

/// A contiguous band of pixels `[start, start + len)` of a full image,
/// carrying RGBA and depth.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// First pixel (row-major index into the full image).
    pub start: usize,
    /// RGBA bytes (4 per pixel).
    pub rgba: Vec<u8>,
    /// Depth values.
    pub depth: Vec<f32>,
}

impl Fragment {
    /// The whole image as one fragment.
    pub fn whole(img: &Image) -> Fragment {
        Fragment {
            start: 0,
            rgba: img.rgba.clone(),
            depth: img.depth.clone(),
        }
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// Whether the fragment is empty.
    pub fn is_empty(&self) -> bool {
        self.depth.is_empty()
    }

    /// Splits into `(low, high)` halves (low gets the extra pixel).
    pub fn split(&self) -> (Fragment, Fragment) {
        let half = self.len().div_ceil(2);
        let low = Fragment {
            start: self.start,
            rgba: self.rgba[..half * 4].to_vec(),
            depth: self.depth[..half].to_vec(),
        };
        let high = Fragment {
            start: self.start + half,
            rgba: self.rgba[half * 4..].to_vec(),
            depth: self.depth[half..].to_vec(),
        };
        (low, high)
    }

    /// Z-buffer composites another fragment covering the same band.
    pub fn composite_closest(&mut self, other: &Fragment) {
        assert_eq!(self.start, other.start, "fragment bands must align");
        assert_eq!(self.len(), other.len(), "fragment bands must align");
        for i in 0..self.depth.len() {
            if other.depth[i] < self.depth[i] {
                self.depth[i] = other.depth[i];
                self.rgba[i * 4..i * 4 + 4].copy_from_slice(&other.rgba[i * 4..i * 4 + 4]);
            }
        }
    }

    /// Copies this band into a full image.
    pub fn blit_into(&self, img: &mut Image) {
        let end = self.start + self.len();
        assert!(end <= img.depth.len(), "fragment exceeds image");
        img.rgba[self.start * 4..end * 4].copy_from_slice(&self.rgba);
        img.depth[self.start..end].copy_from_slice(&self.depth);
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.rgba.len() + self.depth.len() * 4);
        out.extend_from_slice(&(self.start as u64).to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.rgba);
        for d in &self.depth {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`Fragment::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Fragment {
        let start = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let rgba = bytes[16..16 + n * 4].to_vec();
        let depth = bytes[16 + n * 4..16 + n * 8]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Fragment { start, rgba, depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fragment {
        let mut img = Image::new(3, 2);
        for i in 0..6 {
            img.set_if_closer(i % 3, i / 3, i as f32 / 10.0, [i as u8, 0, 0, 255]);
        }
        Fragment::whole(&img)
    }

    #[test]
    fn split_partitions_pixels() {
        let f = sample();
        let (lo, hi) = f.split();
        assert_eq!(lo.len(), 3);
        assert_eq!(hi.len(), 3);
        assert_eq!(lo.start, 0);
        assert_eq!(hi.start, 3);
        assert_eq!(lo.len() + hi.len(), f.len());
    }

    #[test]
    fn odd_split_gives_low_the_extra() {
        let mut img = Image::new(5, 1);
        img.set_if_closer(0, 0, 0.5, [1, 2, 3, 4]);
        let (lo, hi) = Fragment::whole(&img).split();
        assert_eq!(lo.len(), 3);
        assert_eq!(hi.len(), 2);
    }

    #[test]
    fn bytes_roundtrip() {
        let f = sample();
        assert_eq!(Fragment::from_bytes(&f.to_bytes()), f);
    }

    #[test]
    fn blit_reassembles() {
        let f = sample();
        let (lo, hi) = f.split();
        let mut out = Image::new(3, 2);
        hi.blit_into(&mut out);
        lo.blit_into(&mut out);
        assert_eq!(Fragment::whole(&out), f);
    }

    #[test]
    fn closest_composite_matches_image_semantics() {
        let mut a = sample();
        let mut closer = sample();
        for d in closer.depth.iter_mut() {
            *d -= 0.05;
        }
        for c in closer.rgba.iter_mut() {
            *c = c.saturating_add(100);
        }
        a.composite_closest(&closer);
        assert_eq!(a.rgba, closer.rgba);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_composite_panics() {
        let f = sample();
        let (mut lo, hi) = f.split();
        lo.composite_closest(&hi);
    }
}
