//! # icet — sort-last parallel image compositing
//!
//! A reproduction of the IceT library's role in the paper: each rank
//! renders its local data into a full-size image, and the ranks composite
//! those images into one. IceT abstracts its transport behind an
//! `IceTCommunicator` struct of function pointers; here that is the
//! [`IceTComm`] trait, and — exactly as in the paper — the only concrete
//! implementations live elsewhere (the `catalyst` crate provides MPI- and
//! MoNA-backed ones via the converter factory registry).
//!
//! Strategies:
//! * [`Strategy::Tree`] — binomial reduction to the root (z-buffer only),
//! * [`Strategy::BinarySwap`] — the classic log-round halving exchange
//!   (z-buffer only; handles non-power-of-two by folding),
//! * [`Strategy::Direct`] — everyone sends to the root, which composites
//!   sequentially; the only strategy valid for *ordered alpha blending*,
//!   where a visibility order must be respected (volume rendering).
//!
//! The compositing operators themselves ([`CompositeOp`]) delegate to
//! `vizkit::Image`'s z-buffer and premultiplied-OVER primitives.

use vizkit::Image;

mod fragment;

pub use fragment::Fragment;

/// The transport abstraction (IceT's `IceTCommunicator`).
pub trait IceTComm: Send + Sync {
    /// This rank.
    fn rank(&self) -> usize;
    /// Number of ranks.
    fn size(&self) -> usize;
    /// Tagged send to a rank.
    fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<(), String>;
    /// Tagged receive from a rank.
    fn recv(&self, src: usize, tag: u16) -> Result<Vec<u8>, String>;
    /// Native closest-wins reduction of interleaved pixel records
    /// ([`pixels::interleave`]) to `root`, for transports backed by a
    /// collective engine (MoNA's pipelined reduce, MPI). Returns `None`
    /// when unsupported — callers fall back to the explicit send/recv
    /// tree — or `Some(Ok(Some(buf)))` at the root and `Some(Ok(None))`
    /// elsewhere when the collective ran.
    fn reduce_pixels(&self, _data: &[u8], _root: usize) -> Option<Result<Option<Vec<u8>>, String>> {
        None
    }
}

/// Interleaved pixel records for collective compositing.
///
/// A record is 8 bytes — `[f32 LE depth | 4 RGBA bytes]` — so a pixel's
/// depth and color travel together and an elementwise closest-wins fold
/// over records reproduces [`Image::composite_closest`] exactly. The
/// record width divides MoNA's 64-byte collective alignment, so pipeline
/// chunks and Rabenseifner blocks never split a record.
pub mod pixels {
    use vizkit::Image;

    /// Bytes per interleaved pixel record.
    pub const RECORD: usize = 8;

    /// Packs an image into interleaved records, row-major.
    pub fn interleave(img: &Image) -> Vec<u8> {
        let n = img.width * img.height;
        let mut out = Vec::with_capacity(n * RECORD);
        for i in 0..n {
            out.extend_from_slice(&img.depth[i].to_le_bytes());
            out.extend_from_slice(&img.rgba[i * 4..i * 4 + 4]);
        }
        out
    }

    /// Unpacks [`interleave`] output back into an image.
    pub fn deinterleave(data: &[u8], width: usize, height: usize) -> Image {
        let n = width * height;
        assert_eq!(data.len(), n * RECORD, "pixel record buffer length");
        let mut img = Image::new(width, height);
        for i in 0..n {
            let rec = &data[i * RECORD..(i + 1) * RECORD];
            img.depth[i] = f32::from_le_bytes(rec[0..4].try_into().unwrap());
            img.rgba[i * 4..i * 4 + 4].copy_from_slice(&rec[4..8]);
        }
        img
    }

    /// Closest-wins fold over interleaved records: a strictly closer
    /// `other` fragment replaces the accumulator's, ties keep the
    /// accumulator — the exact tie-breaking of
    /// [`Image::composite_closest`].
    pub fn fold_closest(acc: &mut [u8], other: &[u8]) {
        debug_assert_eq!(acc.len(), other.len());
        debug_assert_eq!(acc.len() % RECORD, 0);
        for (a, b) in acc.chunks_exact_mut(RECORD).zip(other.chunks_exact(RECORD)) {
            let da = f32::from_le_bytes(a[0..4].try_into().unwrap());
            let db = f32::from_le_bytes(b[0..4].try_into().unwrap());
            if db < da {
                a.copy_from_slice(b);
            }
        }
    }
}

/// Pixel-combination rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositeOp {
    /// Keep the fragment closest to the camera (opaque geometry).
    Closest,
    /// Ordered premultiplied-alpha OVER (volume rendering).
    Blend,
}

/// Compositing communication pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Binomial reduction to the root.
    Tree,
    /// Binary swap with non-power-of-two folding.
    BinarySwap,
    /// All-to-root sequential compositing.
    Direct,
}

/// Composites every rank's `local` image; the root returns the result.
///
/// For [`CompositeOp::Blend`], `order` must give the visibility order of
/// ranks front-to-back and the strategy must be [`Strategy::Direct`].
pub fn composite(
    comm: &dyn IceTComm,
    local: Image,
    op: CompositeOp,
    strategy: Strategy,
    order: Option<&[usize]>,
    root: usize,
) -> Result<Option<Image>, String> {
    if comm.size() == 1 {
        return Ok(Some(local));
    }
    match (strategy, op) {
        (Strategy::Direct, _) => direct(comm, local, op, order, root),
        (Strategy::Tree, CompositeOp::Closest) => tree(comm, local, root),
        (Strategy::BinarySwap, CompositeOp::Closest) => binary_swap(comm, local, root),
        (s, CompositeOp::Blend) => Err(format!(
            "{s:?} cannot honor a visibility order; use Strategy::Direct for blending"
        )),
    }
}

const TAG_TREE: u16 = 40;
const TAG_DIRECT: u16 = 41;
const TAG_FOLD: u16 = 42;
const TAG_GATHER: u16 = 44;
// Binary-swap rounds use TAG_SWAP_BASE + round.
const TAG_SWAP_BASE: u16 = 50;

fn direct(
    comm: &dyn IceTComm,
    local: Image,
    op: CompositeOp,
    order: Option<&[usize]>,
    root: usize,
) -> Result<Option<Image>, String> {
    let me = comm.rank();
    let n = comm.size();
    if me != root {
        comm.send(&local.to_bytes(), root, TAG_DIRECT)?;
        return Ok(None);
    }
    let mut images: Vec<Option<Image>> = (0..n).map(|_| None).collect();
    images[me] = Some(local);
    for r in 0..n {
        if r != root {
            images[r] = Some(Image::from_bytes(&comm.recv(r, TAG_DIRECT)?));
        }
    }
    let default_order: Vec<usize> = (0..n).collect();
    let order = order.unwrap_or(&default_order);
    if order.len() != n {
        return Err(format!("order has {} entries for {n} ranks", order.len()));
    }
    // Composite front-to-back: acc = acc OVER next (acc stays in front).
    let mut acc = images[order[0]].take().expect("image present");
    for &r in &order[1..] {
        let img = images[r].take().expect("image present");
        match op {
            CompositeOp::Blend => acc.composite_over(&img),
            CompositeOp::Closest => acc.composite_closest(&img),
        }
    }
    Ok(Some(acc))
}

fn tree(comm: &dyn IceTComm, local: Image, root: usize) -> Result<Option<Image>, String> {
    // Fast path: transports with a collective engine reduce the
    // interleaved depth+color records in one collective instead of
    // serializing whole images through explicit tree edges.
    let (width, height) = (local.width, local.height);
    if let Some(result) = comm.reduce_pixels(&pixels::interleave(&local), root) {
        let reduced = result?;
        return Ok(reduced.map(|buf| pixels::deinterleave(&buf, width, height)));
    }
    let n = comm.size();
    let me = comm.rank();
    let relative = (me + n - root) % n;
    let mut acc = local;
    let mut mask = 1usize;
    while mask < n {
        if relative & mask == 0 {
            let child_rel = relative | mask;
            if child_rel < n {
                let src = (child_rel + root) % n;
                let img = Image::from_bytes(&comm.recv(src, TAG_TREE)?);
                acc.composite_closest(&img);
            }
        } else {
            let parent = ((relative & !mask) + root) % n;
            comm.send(&acc.to_bytes(), parent, TAG_TREE)?;
            return Ok(None);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

fn binary_swap(comm: &dyn IceTComm, local: Image, root: usize) -> Result<Option<Image>, String> {
    let n = comm.size();
    let me = comm.rank();
    let (width, height) = (local.width, local.height);
    let total_px = width * height;
    let p2 = if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() / 2
    };

    // Fold ranks beyond the largest power of two into their partners.
    let mut frag = Fragment::whole(&local);
    if me >= p2 {
        comm.send(&frag.to_bytes(), me - p2, TAG_FOLD)?;
        // Folded ranks still participate in delivery of nothing.
        return Ok(None);
    }
    if me + p2 < n {
        let other = Fragment::from_bytes(&comm.recv(me + p2, TAG_FOLD)?);
        frag.composite_closest(&other);
    }

    // log2(p2) halving rounds.
    let mut bit = 1usize;
    let mut round: u16 = 0;
    while bit < p2 {
        let partner = me ^ bit;
        let (keep_low, send_part, keep_part) = {
            let (low, high) = frag.split();
            if me & bit == 0 {
                (true, high, low)
            } else {
                (false, low, high)
            }
        };
        let _ = keep_low;
        // Deterministic exchange order: large sends are synchronous, so a
        // send/send crossing would deadlock. The lower rank sends first.
        let their = if me < partner {
            comm.send(&send_part.to_bytes(), partner, TAG_SWAP_BASE + round)?;
            Fragment::from_bytes(&comm.recv(partner, TAG_SWAP_BASE + round)?)
        } else {
            let got = Fragment::from_bytes(&comm.recv(partner, TAG_SWAP_BASE + round)?);
            comm.send(&send_part.to_bytes(), partner, TAG_SWAP_BASE + round)?;
            got
        };
        frag = keep_part;
        frag.composite_closest(&their);
        bit <<= 1;
        round += 1;
    }

    // Gather the distributed slices at the root.
    if me == root % p2 && me == root {
        let mut out = Image::new(width, height);
        frag.blit_into(&mut out);
        for r in 0..p2 {
            if r != me {
                let piece = Fragment::from_bytes(&comm.recv(r, TAG_GATHER)?);
                piece.blit_into(&mut out);
            }
        }
        debug_assert_eq!(out.depth.len(), total_px);
        Ok(Some(out))
    } else {
        // Root outside the fold group cannot happen: root < p2 is required.
        let dst = if root < p2 { root } else { root - p2 };
        comm.send(&frag.to_bytes(), dst, TAG_GATHER)?;
        if me != root && root >= p2 && me == root - p2 {
            // Forwarding case: the folded root receives nothing here; the
            // assembled image lives at its partner. Keep semantics simple:
            // roots must be < p2.
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    use crossbeam::channel::{unbounded, Receiver, Sender};
    use parking_lot_stub::Mutex;

    /// Tiny in-memory comm for unit tests (threads + channels).
    mod parking_lot_stub {
        pub use std::sync::Mutex;
    }

    struct ChanComm {
        rank: usize,
        size: usize,
        txs: Vec<Sender<(usize, u16, Vec<u8>)>>,
        rx: Receiver<(usize, u16, Vec<u8>)>,
        stash: Mutex<Vec<(usize, u16, Vec<u8>)>>,
    }

    impl IceTComm for ChanComm {
        fn rank(&self) -> usize {
            self.rank
        }
        fn size(&self) -> usize {
            self.size
        }
        fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<(), String> {
            self.txs[dst]
                .send((self.rank, tag, data.to_vec()))
                .map_err(|e| e.to_string())
        }
        fn recv(&self, src: usize, tag: u16) -> Result<Vec<u8>, String> {
            let mut stash = self.stash.lock().unwrap();
            if let Some(pos) = stash.iter().position(|(s, t, _)| *s == src && *t == tag) {
                return Ok(stash.remove(pos).2);
            }
            loop {
                let msg = self.rx.recv().map_err(|e| e.to_string())?;
                if msg.0 == src && msg.1 == tag {
                    return Ok(msg.2);
                }
                stash.push(msg);
            }
        }
    }

    fn run_composite(
        n: usize,
        op: CompositeOp,
        strategy: Strategy,
        order: Option<Vec<usize>>,
        make_image: impl Fn(usize) -> Image + Send + Sync + 'static,
    ) -> Image {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let make_image = Arc::new(make_image);
        let mut handles = Vec::new();
        let mut results = HashMap::new();
        for (rank, rx) in rxs.into_iter().enumerate() {
            let comm = ChanComm {
                rank,
                size: n,
                txs: txs.clone(),
                rx,
                stash: Mutex::new(Vec::new()),
            };
            let make_image = Arc::clone(&make_image);
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                let img = make_image(rank);
                (
                    rank,
                    composite(&comm, img, op, strategy, order.as_deref(), 0).unwrap(),
                )
            }));
        }
        for h in handles {
            let (rank, out) = h.join().unwrap();
            results.insert(rank, out);
        }
        for (rank, out) in &results {
            if *rank != 0 {
                assert!(out.is_none(), "non-root {rank} returned an image");
            }
        }
        results.remove(&0).unwrap().expect("root image")
    }

    /// Each rank draws an opaque column at x == rank with depth rank/10.
    fn column_image(n: usize, w: usize, h: usize) -> impl Fn(usize) -> Image + Send + Sync {
        move |rank| {
            let _ = n;
            let mut img = Image::new(w, h);
            for y in 0..h {
                img.set_if_closer(rank, y, 0.1 + rank as f32 / 10.0, [rank as u8 + 1, 0, 0, 255]);
            }
            img
        }
    }

    /// Every rank draws the SAME pixel at a different depth; closest wins.
    fn overlapping_image() -> impl Fn(usize) -> Image + Send + Sync {
        |rank| {
            let mut img = Image::new(4, 4);
            img.set_if_closer(1, 1, 0.9 - rank as f32 / 10.0, [rank as u8, 7, 7, 255]);
            img
        }
    }

    #[test]
    fn strategies_agree_on_disjoint_columns() {
        for n in [2, 3, 4, 5, 8] {
            let direct = run_composite(n, CompositeOp::Closest, Strategy::Direct, None, column_image(n, 8, 4));
            let tree = run_composite(n, CompositeOp::Closest, Strategy::Tree, None, column_image(n, 8, 4));
            let swap = run_composite(n, CompositeOp::Closest, Strategy::BinarySwap, None, column_image(n, 8, 4));
            assert_eq!(direct, tree, "tree n={n}");
            assert_eq!(direct, swap, "swap n={n}");
            // And the content is right: column x holds rank x's color.
            for r in 0..n {
                assert_eq!(direct.rgba[direct.idx(r, 0) * 4], r as u8 + 1);
            }
        }
    }

    #[test]
    fn closest_rank_wins_overlap() {
        for strategy in [Strategy::Direct, Strategy::Tree, Strategy::BinarySwap] {
            let out = run_composite(5, CompositeOp::Closest, strategy, None, overlapping_image());
            // Rank 4 has the smallest depth (0.5).
            assert_eq!(out.rgba[out.idx(1, 1) * 4], 4, "{strategy:?}");
        }
    }

    #[test]
    fn blend_respects_visibility_order() {
        // Rank 0 in front (half-transparent red), rank 1 behind (opaque
        // green). Front-to-back order [0, 1].
        let make = |rank: usize| {
            let mut img = Image::new(1, 1);
            if rank == 0 {
                img.rgba = vec![128, 0, 0, 128];
                img.depth = vec![0.2];
            } else {
                img.rgba = vec![0, 255, 0, 255];
                img.depth = vec![0.8];
            }
            img
        };
        let out = run_composite(2, CompositeOp::Blend, Strategy::Direct, Some(vec![0, 1]), make);
        assert_eq!(out.rgba[0], 128);
        assert!((out.rgba[1] as i32 - 127).abs() <= 2);
        // Reversed order: green is opaque and fully hides red.
        let out = run_composite(2, CompositeOp::Blend, Strategy::Direct, Some(vec![1, 0]), make);
        assert_eq!(out.rgba[1], 255);
        assert_eq!(out.rgba[0], 0);
    }

    #[test]
    fn blend_refuses_unordered_strategies() {
        let comm_err = {
            // A 1-rank comm short-circuits, so check the validation path
            // directly.
            composite_strategy_check()
        };
        assert!(comm_err.contains("Direct"));
    }

    fn composite_strategy_check() -> String {
        struct NoComm;
        impl IceTComm for NoComm {
            fn rank(&self) -> usize {
                0
            }
            fn size(&self) -> usize {
                2
            }
            fn send(&self, _: &[u8], _: usize, _: u16) -> Result<(), String> {
                unreachable!()
            }
            fn recv(&self, _: usize, _: u16) -> Result<Vec<u8>, String> {
                unreachable!()
            }
        }
        composite(
            &NoComm,
            Image::new(1, 1),
            CompositeOp::Blend,
            Strategy::BinarySwap,
            None,
            0,
        )
        .unwrap_err()
    }

    #[test]
    fn single_rank_short_circuits() {
        struct Solo;
        impl IceTComm for Solo {
            fn rank(&self) -> usize {
                0
            }
            fn size(&self) -> usize {
                1
            }
            fn send(&self, _: &[u8], _: usize, _: u16) -> Result<(), String> {
                unreachable!()
            }
            fn recv(&self, _: usize, _: u16) -> Result<Vec<u8>, String> {
                unreachable!()
            }
        }
        let mut img = Image::new(2, 2);
        img.set_if_closer(0, 0, 0.1, [9, 9, 9, 255]);
        let out = composite(&Solo, img.clone(), CompositeOp::Closest, Strategy::BinarySwap, None, 0)
            .unwrap()
            .unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn pixel_records_roundtrip_and_fold_matches_compositing() {
        let mut a = Image::new(5, 3);
        let mut b = Image::new(5, 3);
        for i in 0..15 {
            a.set_if_closer(i % 5, i / 5, 0.1 + (i % 4) as f32 / 10.0, [i as u8, 1, 2, 255]);
            b.set_if_closer(i % 5, i / 5, 0.1 + (i % 3) as f32 / 10.0, [99, i as u8, 3, 255]);
        }
        assert_eq!(pixels::deinterleave(&pixels::interleave(&a), 5, 3), a);

        let mut acc = pixels::interleave(&a);
        pixels::fold_closest(&mut acc, &pixels::interleave(&b));
        let mut expect = a.clone();
        expect.composite_closest(&b);
        assert_eq!(pixels::deinterleave(&acc, 5, 3), expect);
    }

    /// A comm that offers a native pixel reduction (implemented here over
    /// the same channels) must see `tree()` take the collective fast path
    /// and produce the same image as the p2p tree.
    #[test]
    fn tree_uses_native_pixel_reduction() {
        struct ReducingComm {
            inner: ChanComm,
        }
        impl IceTComm for ReducingComm {
            fn rank(&self) -> usize {
                self.inner.rank()
            }
            fn size(&self) -> usize {
                self.inner.size()
            }
            fn send(&self, _data: &[u8], _dst: usize, _tag: u16) -> Result<(), String> {
                panic!("tree must not fall back to p2p when reduce_pixels is native");
            }
            fn recv(&self, _src: usize, _tag: u16) -> Result<Vec<u8>, String> {
                panic!("tree must not fall back to p2p when reduce_pixels is native");
            }
            fn reduce_pixels(
                &self,
                data: &[u8],
                root: usize,
            ) -> Option<Result<Option<Vec<u8>>, String>> {
                let run = || {
                    if self.rank() != root {
                        self.inner.send(data, root, 99)?;
                        return Ok(None);
                    }
                    let mut acc = data.to_vec();
                    for r in 0..self.size() {
                        if r != root {
                            pixels::fold_closest(&mut acc, &self.inner.recv(r, 99)?);
                        }
                    }
                    Ok(Some(acc))
                };
                Some(run())
            }
        }

        let n = 5;
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut handles = Vec::new();
        for (rank, rx) in rxs.into_iter().enumerate() {
            let comm = ReducingComm {
                inner: ChanComm {
                    rank,
                    size: n,
                    txs: txs.clone(),
                    rx,
                    stash: Mutex::new(Vec::new()),
                },
            };
            handles.push(std::thread::spawn(move || {
                let img = overlapping_image()(rank);
                (rank, composite(&comm, img, CompositeOp::Closest, Strategy::Tree, None, 0).unwrap())
            }));
        }
        let mut root_img = None;
        for h in handles {
            let (rank, out) = h.join().unwrap();
            if rank == 0 {
                root_img = out;
            } else {
                assert!(out.is_none());
            }
        }
        let out = root_img.expect("root image");
        let expect = run_composite(n, CompositeOp::Closest, Strategy::Direct, None, overlapping_image());
        assert_eq!(out, expect);
    }

    #[test]
    fn larger_images_survive_binary_swap() {
        let out = run_composite(4, CompositeOp::Closest, Strategy::BinarySwap, None, |rank| {
            let mut img = Image::new(33, 17); // odd sizes stress splitting
            for y in 0..17 {
                for x in 0..33 {
                    if (x + y) % 4 == rank {
                        img.set_if_closer(x, y, 0.3, [rank as u8 + 1, 0, 0, 255]);
                    }
                }
            }
            img
        });
        // Every pixel is covered by exactly one rank.
        for y in 0..17 {
            for x in 0..33 {
                let expect = ((x + y) % 4 + 1) as u8;
                assert_eq!(out.rgba[out.idx(x, y) * 4], expect, "({x},{y})");
            }
        }
    }
}
