//! Property tests: all z-buffer compositing strategies must agree
//! pixel-for-pixel on arbitrary per-rank images, for arbitrary group
//! sizes — the invariant that makes strategy choice a pure performance
//! ablation.

use std::collections::HashMap;
use std::sync::Mutex;

use crossbeam::channel::{unbounded, Receiver, Sender};
use icet::{composite, CompositeOp, IceTComm, Strategy as IcetStrategy};
use proptest::prelude::*;
use vizkit::Image;

struct ChanComm {
    rank: usize,
    size: usize,
    txs: Vec<Sender<(usize, u16, Vec<u8>)>>,
    rx: Receiver<(usize, u16, Vec<u8>)>,
    stash: Mutex<Vec<(usize, u16, Vec<u8>)>>,
}

impl IceTComm for ChanComm {
    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.size
    }
    fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<(), String> {
        self.txs[dst]
            .send((self.rank, tag, data.to_vec()))
            .map_err(|e| e.to_string())
    }
    fn recv(&self, src: usize, tag: u16) -> Result<Vec<u8>, String> {
        let mut stash = self.stash.lock().unwrap();
        if let Some(pos) = stash.iter().position(|(s, t, _)| *s == src && *t == tag) {
            return Ok(stash.remove(pos).2);
        }
        loop {
            let msg = self.rx.recv().map_err(|e| e.to_string())?;
            if msg.0 == src && msg.1 == tag {
                return Ok(msg.2);
            }
            stash.push(msg);
        }
    }
}

fn run(n: usize, strategy: IcetStrategy, images: Vec<Image>) -> Image {
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut handles = Vec::new();
    let mut results = HashMap::new();
    for (rank, (rx, img)) in rxs.into_iter().zip(images).enumerate() {
        let comm = ChanComm {
            rank,
            size: n,
            txs: txs.clone(),
            rx,
            stash: Mutex::new(Vec::new()),
        };
        handles.push(std::thread::spawn(move || {
            (
                rank,
                composite(&comm, img, CompositeOp::Closest, strategy, None, 0).unwrap(),
            )
        }));
    }
    for h in handles {
        let (rank, out) = h.join().unwrap();
        results.insert(rank, out);
    }
    results.remove(&0).unwrap().expect("root image")
}

/// Sequential oracle: fold with the closest-depth operator.
fn oracle(images: &[Image]) -> Image {
    let mut acc = images[0].clone();
    for img in &images[1..] {
        acc.composite_closest(img);
    }
    acc
}

fn arb_image(w: usize, h: usize) -> impl Strategy<Value = Image> {
    proptest::collection::vec((0u8..=255, 0.0f32..1.5), w * h).prop_map(move |px| {
        let mut img = Image::new(w, h);
        for (i, (color, depth)) in px.into_iter().enumerate() {
            if depth < 1.0 {
                img.depth[i] = depth;
                img.rgba[i * 4] = color;
                img.rgba[i * 4 + 3] = 255;
            }
        }
        img
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn strategies_match_sequential_oracle(
        n in 2usize..7,
        seed_images in proptest::collection::vec(arb_image(9, 5), 7),
    ) {
        let images: Vec<Image> = seed_images.into_iter().take(n).collect();
        prop_assume!(images.len() == n);
        let expect = oracle(&images);
        for strategy in [IcetStrategy::Direct, IcetStrategy::Tree, IcetStrategy::BinarySwap] {
            let got = run(n, strategy, images.clone());
            prop_assert_eq!(&got, &expect, "strategy {:?}", strategy);
        }
    }
}
