//! # baselines — the staging services Colza is compared against (Fig. 8)
//!
//! * [`damaris`] — a Damaris-like middleware in "dedicated nodes" mode:
//!   one MPI world split into client and server ranks, per-client
//!   `damaris_write`/`damaris_signal`, and a plugin triggered
//!   *independently by each client's signals* — the structural source of
//!   the skew penalty the paper observes. It inherits every MPI-era
//!   limitation the paper lists: deployment at application launch, world
//!   splitting, `clients % servers == 0`, shared launcher parameters.
//! * [`dataspaces`] — a DataSpaces-like staging service: margo-based
//!   put/get object store with a version-indexed metadata directory,
//!   executing the same MPI-backed pipeline as `Colza+MPI`. Deployable
//!   separately from the application (like Colza), but with a static
//!   server count.

pub mod damaris;
pub mod dataspaces;
