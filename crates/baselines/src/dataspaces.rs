//! A DataSpaces-like staging service.
//!
//! DataSpaces is an in-memory object store bridging coupled applications:
//! clients `put` versioned named objects, servers index them in a
//! distributed metadata directory, and consumers `get` or — in the in situ
//! configuration the paper benchmarks — run analysis directly in the
//! staging servers. The modern DataSpaces is itself Margo-based, which is
//! why the paper calls it architecturally close to Colza; our model shares
//! Colza's RPC substrate and pipeline but differs exactly where the real
//! systems differ:
//!
//! * a **static** server group fixed at launch (no SSG, no elasticity),
//! * a per-put **metadata indexing cost** (DHT directory update),
//! * execution over a static MPI communicator, like `Colza+MPI`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use catalyst::{CatalystConfig, CatalystPipeline, MpiVtkComm, PipelineScript};
use margo::{HandlerPool, MargoInstance};
use na::{Address, BulkHandle, Fabric};
use vizkit::Controller;

/// Per-put metadata indexing cost (virtual ns): hashing the object name,
/// updating the space-filling-curve directory, and acknowledging the
/// index servers. Calibrated to a few microseconds as measured for
/// DataSpaces' dspaces_put metadata path.
const INDEX_COST_NS: u64 = 4_000;

#[derive(Serialize, Deserialize, Clone)]
struct PutArgs {
    name: String,
    version: u64,
    block_id: u64,
    size: usize,
    bulk: BulkHandle,
}

#[derive(Serialize, Deserialize, Clone)]
struct ExecArgs {
    version: u64,
}

/// One staging server's state.
struct DsServer {
    store: Mutex<HashMap<u64, Vec<(u64, Bytes)>>>,
    pipeline: CatalystPipeline,
    world: Mutex<Option<minimpi::MpiComm>>,
}

/// A handle to a launched DataSpaces deployment.
pub struct DataSpacesDeployment {
    addrs: Vec<Address>,
    stop_txs: Vec<crossbeam::channel::Sender<()>>,
    handles: Vec<hpcsim::cluster::SimHandle<()>>,
}

impl DataSpacesDeployment {
    /// Launches `n` staging servers running the given pipeline script.
    pub fn launch(
        cluster: &hpcsim::Cluster,
        fabric: &Fabric,
        n: usize,
        per_node: usize,
        first_node: usize,
        profile: minimpi::Profile,
        script: PipelineScript,
    ) -> Self {
        let (addr_tx, addr_rx) = crossbeam::channel::unbounded();
        let (world_tx, world_rx) = crossbeam::channel::unbounded::<Vec<Address>>();
        let mut stop_txs = Vec::new();
        let mut handles = Vec::new();
        for i in 0..n {
            let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
            stop_txs.push(stop_tx);
            let fabric = fabric.clone();
            let addr_tx = addr_tx.clone();
            let world_rx = world_rx.clone();
            let script = script.clone();
            handles.push(cluster.spawn(
                &format!("dataspaces[{i}]"),
                first_node + i / per_node,
                move || {
                    let endpoint = Arc::new(fabric.open());
                    let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
                    let server = Arc::new(DsServer {
                        store: Mutex::new(HashMap::new()),
                        pipeline: CatalystPipeline::new(script, CatalystConfig::default()),
                        world: Mutex::new(None),
                    });
                    register_rpcs(&margo, &server);
                    addr_tx.send((i, margo.address())).unwrap();
                    // Static world bootstrap (PMI-style).
                    let members = world_rx.recv().unwrap();
                    *server.world.lock() = Some(minimpi::MpiComm::from_endpoint(
                        Arc::clone(&endpoint),
                        members,
                        profile,
                    ));
                    let _ = stop_rx.recv();
                    margo.finalize();
                },
            ));
        }
        let mut addrs = vec![Address(0); n];
        for _ in 0..n {
            let (i, a) = addr_rx.recv().unwrap();
            addrs[i] = a;
        }
        for _ in 0..n {
            world_tx.send(addrs.clone()).unwrap();
        }
        Self {
            addrs,
            stop_txs,
            handles,
        }
    }

    /// Server addresses.
    pub fn addrs(&self) -> &[Address] {
        &self.addrs
    }

    /// Shuts the deployment down.
    pub fn stop(self) {
        for tx in &self.stop_txs {
            let _ = tx.send(());
        }
        for h in self.handles {
            h.join();
        }
    }
}

fn register_rpcs(margo: &Arc<MargoInstance>, server: &Arc<DsServer>) {
    {
        let s = Arc::clone(server);
        margo.register("ds.put", move |args: PutArgs, ctx| {
            // Pull the object, then pay the metadata indexing cost.
            let data = ctx
                .endpoint
                .rdma_get(args.bulk, 0, args.size)
                .map_err(|e| e.to_string())?;
            hpcsim::current().advance(INDEX_COST_NS);
            s.store
                .lock()
                .entry(args.version)
                .or_default()
                .push((args.block_id, data));
            Ok(())
        });
    }
    {
        let s = Arc::clone(server);
        margo.register_in_pool("ds.exec", HandlerPool::Heavy, move |args: ExecArgs, _ctx| {
            let mut blocks = s
                .store
                .lock()
                .remove(&args.version)
                .unwrap_or_default();
            blocks.sort_by_key(|(id, _)| *id);
            let datasets: Vec<vizkit::DataSet> = blocks
                .iter()
                .map(|(_, b)| colza::codec::dataset_from_bytes(b).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let world = s.world.lock().clone().ok_or("world not ready")?;
            let ctrl = Controller::new(MpiVtkComm::new(world));
            s.pipeline.execute(&datasets, &ctrl)?;
            Ok(())
        });
    }
}

/// Client-side API (`dspaces_put` / triggered execution).
pub struct DsClient {
    margo: Arc<MargoInstance>,
    servers: Vec<Address>,
}

impl DsClient {
    /// Connects a client to the deployment.
    pub fn new(margo: Arc<MargoInstance>, servers: Vec<Address>) -> Self {
        Self { margo, servers }
    }

    /// Puts one object; the server is chosen by block id (the directory
    /// hash in real DataSpaces).
    pub fn put(
        &self,
        name: &str,
        version: u64,
        block_id: u64,
        payload: &Bytes,
    ) -> Result<(), String> {
        let target = self.servers[(block_id % self.servers.len() as u64) as usize];
        let endpoint = self.margo.endpoint();
        let bulk = endpoint.expose(payload.clone());
        let out: Result<(), margo::RpcError> = self.margo.forward_timeout(
            target,
            "ds.put",
            &PutArgs {
                name: name.to_string(),
                version,
                block_id,
                size: payload.len(),
                bulk,
            },
            Some(Duration::from_secs(60)),
        );
        endpoint.unexpose(bulk).ok();
        out.map_err(|e| e.to_string())
    }

    /// Triggers collective execution of the staged version on all servers.
    pub fn exec(&self, version: u64) -> Result<(), String> {
        let ctx = hpcsim::process::current();
        let handles: Vec<_> = self
            .servers
            .iter()
            .map(|&s| {
                let margo = Arc::clone(&self.margo);
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || {
                    hpcsim::process::enter(ctx, move || {
                        margo.forward_timeout::<_, ()>(
                            s,
                            "ds.exec",
                            &ExecArgs { version },
                            Some(Duration::from_secs(60)),
                        )
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap().map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_exec_roundtrip() {
        let cluster = hpcsim::Cluster::default();
        let fabric = Fabric::new(Arc::clone(cluster.shared()));
        let deployment = DataSpacesDeployment::launch(
            &cluster,
            &fabric,
            2,
            1,
            0,
            minimpi::Profile::Vendor,
            PipelineScript::mandelbulb(16, 16),
        );
        let servers = deployment.addrs().to_vec();
        let f2 = fabric.clone();
        cluster
            .spawn("ds-client", 9, move || {
                let margo = MargoInstance::init(&f2);
                let client = DsClient::new(Arc::clone(&margo), servers);
                for block in 0..4u64 {
                    let mut img = vizkit::ImageData::new([6, 6, 6]);
                    let mut vals = Vec::new();
                    for k in 0..6 {
                        for j in 0..6 {
                            for i in 0..6 {
                                let d = (((i - 3i32).pow(2) + (j - 3i32).pow(2)
                                    + (k - 3i32).pow(2))
                                    as f32)
                                    .sqrt();
                                vals.push(30.0 - 6.0 * d);
                            }
                        }
                    }
                    img.point_data
                        .set("iterations", vizkit::DataArray::F32(vals));
                    let payload =
                        colza::codec::dataset_to_bytes(&vizkit::DataSet::Image(img));
                    client.put("mandelbulb", 0, block, &payload).unwrap();
                }
                client.exec(0).unwrap();
                margo.finalize();
            })
            .join();
        deployment.stop();
    }
}
