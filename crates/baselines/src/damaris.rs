//! A Damaris-like staging middleware (dedicated-cores mode).
//!
//! Damaris deploys *with* the application: `MPI_COMM_WORLD` is split into
//! client ranks and dedicated server ranks. Clients push blocks with
//! `damaris_write` and fire `damaris_signal`; a server enters the analysis
//! plugin once all of *its* clients signaled. Because clients signal at
//! different times and the plugin is collective across servers, early
//! servers wait for late ones — the skew the paper credits for Damaris'
//! slower Fig. 8 times.

use std::sync::Arc;

use catalyst::{CatalystConfig, CatalystPipeline, MpiVtkComm, PipelineScript};
use minimpi::{MpiComm, MpiWorld, Profile};
use vizkit::{Controller, DataSet};

/// Deployment shape.
#[derive(Clone)]
pub struct DamarisConfig {
    /// Number of client (simulation) ranks.
    pub clients: usize,
    /// Number of dedicated server ranks. Must divide `clients`.
    pub servers: usize,
    /// MPI profile for the whole world.
    pub profile: Profile,
    /// The plugin's pipeline script.
    pub script: PipelineScript,
    /// Iterations to run.
    pub iterations: u64,
}

const TAG_DATA: u16 = 200;
const TAG_SIGNAL: u16 = 201;
const TAG_DONE: u16 = 202;

/// Modeled cost of processing one `damaris_write` event on the dedicated
/// core: shared-memory segment bookkeeping plus the XML-driven variable/
/// layout lookup Damaris performs per write. Tens of microseconds per
/// block in the real middleware.
const WRITE_EVENT_NS: u64 = 60_000;

/// Runs a full Damaris deployment. `make_blocks(client_rank, iteration)`
/// produces each client's blocks (one `damaris_write` each). Returns, per
/// iteration, the maximum plugin execution time across servers (virtual
/// ns).
pub fn run_damaris(
    cluster: &hpcsim::Cluster,
    fabric: &na::Fabric,
    cfg: DamarisConfig,
    make_blocks: impl Fn(usize, u64) -> Vec<DataSet> + Send + Sync + 'static,
) -> Vec<u64> {
    assert!(cfg.servers > 0 && cfg.clients > 0);
    assert_eq!(
        cfg.clients % cfg.servers,
        0,
        "Damaris requires the dedicated-core count to divide the client count"
    );
    let world = cfg.clients + cfg.servers;
    let clients_per_server = cfg.clients / cfg.servers;
    let make_blocks = Arc::new(make_blocks);
    let cfg2 = cfg.clone();

    let out = MpiWorld::launch(cluster, fabric, world, 4, 0, cfg.profile, move |comm| {
        let rank = comm.rank();
        let is_server = rank >= cfg2.clients;
        // Damaris splits the world; the application must use the client
        // sub-communicator from here on (the intrusive change the paper
        // criticizes).
        let sub = comm.split(is_server as u64, rank as u64).unwrap();
        if is_server {
            run_server(&comm, &sub, rank - cfg2.clients, clients_per_server, &cfg2)
        } else {
            run_client(&comm, rank, &cfg2, make_blocks.as_ref());
            Vec::new()
        }
    });
    // Fold server measurements: max across servers per iteration.
    let mut per_iter = vec![0u64; cfg.iterations as usize];
    for times in out.into_iter().filter(|t| !t.is_empty()) {
        for (i, t) in times.into_iter().enumerate() {
            per_iter[i] = per_iter[i].max(t);
        }
    }
    per_iter
}

fn run_client(
    world: &MpiComm,
    rank: usize,
    cfg: &DamarisConfig,
    make_blocks: &(dyn Fn(usize, u64) -> Vec<DataSet> + Send + Sync),
) {
    let clients_per_server = cfg.clients / cfg.servers;
    let my_server = cfg.clients + rank / clients_per_server;
    let ctx = hpcsim::current();
    for iter in 0..cfg.iterations {
        // Block generation is real simulation compute: clients with
        // heavier subdomains signal later — the source of the trigger
        // skew Damaris suffers from.
        let payloads: Vec<Vec<u8>> = ctx.charge_compute(|| {
            make_blocks(rank, iter)
                .iter()
                .map(|b| colza::codec::dataset_to_bytes(b).to_vec())
                .collect()
        });
        // damaris_write: push each block to the dedicated core.
        for payload in &payloads {
            world.send(payload, my_server, TAG_DATA).unwrap();
        }
        // damaris_signal: end-of-iteration event, carrying the number of
        // writes this client performed.
        let mut sig = iter.to_le_bytes().to_vec();
        sig.extend_from_slice(&(payloads.len() as u64).to_le_bytes());
        world.send(&sig, my_server, TAG_SIGNAL).unwrap();
    }
    // Wait for the final completion marker so teardown is orderly.
    world.recv(my_server, TAG_DONE).unwrap();
}

fn run_server(
    world: &MpiComm,
    servers: &MpiComm,
    server_idx: usize,
    clients_per_server: usize,
    cfg: &DamarisConfig,
) -> Vec<u64> {
    let pipeline = CatalystPipeline::new(cfg.script.clone(), CatalystConfig::default());
    let ctrl = Controller::new(MpiVtkComm::new(servers.clone()));
    let ctx = hpcsim::current();
    let mut times = Vec::with_capacity(cfg.iterations as usize);
    for _iter in 0..cfg.iterations {
        // Collect this iteration's raw blocks and signals from my clients.
        // Signals arrive in client-completion order; each carries how many
        // writes that client performed (FIFO ordering per pair guarantees
        // the data preceded it).
        let mut raw = Vec::with_capacity(clients_per_server);
        let mut signaled = 0usize;
        while signaled < clients_per_server {
            let (sig, src) = world.recv_any(TAG_SIGNAL).unwrap();
            let count = u64::from_le_bytes(sig[8..16].try_into().unwrap());
            for _ in 0..count {
                let payload = world.recv(src, TAG_DATA).unwrap();
                ctx.advance(WRITE_EVENT_NS);
                raw.push(payload);
            }
            signaled += 1;
        }
        // All of *my* clients signaled: enter the plugin. Other servers
        // may still be waiting — the collective inside makes me wait for
        // them (the skew cost). The plugin decodes the staged buffers
        // itself (comparable accounting to Colza's backend).
        let before = ctx.now();
        let blocks: Vec<DataSet> = ctx.charge_compute(|| {
            raw.iter()
                .map(|p| colza::codec::dataset_from_bytes(p).unwrap())
                .collect()
        });
        pipeline.execute(&blocks, &ctrl).unwrap();
        times.push(ctx.now() - before);
    }
    // Release my clients for teardown.
    for c in 0..clients_per_server {
        let client_rank = server_idx * clients_per_server + c;
        world.send(&[], client_rank, TAG_DONE).unwrap();
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_block(rank: usize, _iter: u64) -> Vec<DataSet> {
        let mut img = vizkit::ImageData::new([6, 6, 6]);
        img.origin = [rank as f32 * 6.0, 0.0, 0.0];
        let mut vals = Vec::new();
        for k in 0..6 {
            for j in 0..6 {
                for i in 0..6 {
                    let d = (((i - 3) * (i - 3) + (j - 3) * (j - 3) + (k - 3) * (k - 3)) as f32)
                        .sqrt();
                    vals.push(30.0 - 6.0 * d);
                }
            }
        }
        img.point_data
            .set("iterations", vizkit::DataArray::F32(vals));
        vec![DataSet::Image(img)]
    }

    #[test]
    fn damaris_runs_iterations_end_to_end() {
        let cluster = hpcsim::Cluster::default();
        let fabric = na::Fabric::new(Arc::clone(cluster.shared()));
        let cfg = DamarisConfig {
            clients: 4,
            servers: 2,
            profile: Profile::Vendor,
            script: PipelineScript::mandelbulb(24, 24),
            iterations: 2,
        };
        let times = run_damaris(&cluster, &fabric, cfg, tiny_block);
        assert_eq!(times.len(), 2);
        assert!(times.iter().all(|&t| t > 0));
    }

    #[test]
    #[should_panic(expected = "divide the client count")]
    fn uneven_client_split_is_rejected() {
        let cluster = hpcsim::Cluster::default();
        let fabric = na::Fabric::new(Arc::clone(cluster.shared()));
        let cfg = DamarisConfig {
            clients: 5,
            servers: 2,
            profile: Profile::Vendor,
            script: PipelineScript::mandelbulb(8, 8),
            iterations: 1,
        };
        run_damaris(&cluster, &fabric, cfg, tiny_block);
    }
}
