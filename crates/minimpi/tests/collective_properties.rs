//! Property tests: minimpi collectives agree with sequential oracles for
//! both profiles, arbitrary sizes and roots — including payloads that
//! straddle the Open profile's rendezvous/linear-reduce thresholds.

use minimpi::{MpiWorld, Profile};
use proptest::prelude::*;

fn xor(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a ^= b;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reduce_matches_oracle_across_profiles(
        n in 1usize..7,
        root_pick in 0usize..8,
        // Sizes chosen to cross the eager/rendezvous and linear-reduce
        // thresholds of the Open profile.
        len in prop_oneof![Just(16usize), Just(4096), Just(20 * 1024)],
        seed in any::<u8>(),
    ) {
        let root = root_pick % n;
        for profile in [Profile::Vendor, Profile::Open] {
            let out = MpiWorld::run(n, profile, move |comm| {
                let data = vec![seed ^ comm.rank() as u8; len];
                comm.reduce(&data, &xor, root).unwrap()
            });
            // Oracle: xor of every rank's payload byte.
            let mut expect = vec![0u8; len];
            for r in 0..n {
                for byte in expect.iter_mut() {
                    *byte ^= seed ^ r as u8;
                }
            }
            prop_assert_eq!(out[root].as_ref().unwrap(), &expect, "{:?}", profile);
        }
    }

    #[test]
    fn bcast_and_gather_roundtrip(
        n in 1usize..7,
        root_pick in 0usize..8,
        payload in proptest::collection::vec(any::<u8>(), 1..600),
    ) {
        let root = root_pick % n;
        for profile in [Profile::Vendor, Profile::Open] {
            let expect = payload.clone();
            let p2 = payload.clone();
            let out = MpiWorld::run(n, profile, move |comm| {
                let data = (comm.rank() == root).then(|| p2.clone());
                let got = comm.bcast(data.as_deref(), root).unwrap().to_vec();
                let gathered = comm.gather(&[comm.rank() as u8], root).unwrap();
                (got, gathered)
            });
            for (rank, (got, gathered)) in out.into_iter().enumerate() {
                prop_assert_eq!(&got, &expect);
                if rank == root {
                    let parts = gathered.unwrap();
                    for (r, p) in parts.iter().enumerate() {
                        prop_assert_eq!(p[0], r as u8);
                    }
                } else {
                    prop_assert!(gathered.is_none());
                }
            }
        }
    }

    #[test]
    fn allgather_matches_everywhere(n in 1usize..6, width in 1usize..64) {
        let out = MpiWorld::run(n, Profile::Open, move |comm| {
            let data = vec![comm.rank() as u8; width];
            comm.allgather(&data).unwrap().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
        });
        for parts in out {
            for (r, p) in parts.iter().enumerate() {
                prop_assert_eq!(p, &vec![r as u8; width]);
            }
        }
    }
}

/// Regression: the old collective tag packed the allgather ring step into a
/// 6-bit field, so steps 64.. aliased step 0.. at >64 ranks and frames
/// cross-talked. The widened 12-bit round field must keep 70 ranks clean.
#[test]
fn allgather_at_seventy_ranks_has_no_round_tag_crosstalk() {
    let n = 70;
    let out = MpiWorld::run(n, Profile::Vendor, move |comm| {
        let data = vec![comm.rank() as u8; 24];
        comm.allgather(&data)
            .unwrap()
            .iter()
            .map(|p| p.to_vec())
            .collect::<Vec<_>>()
    });
    assert_eq!(out.len(), n);
    for parts in out {
        for (r, p) in parts.iter().enumerate() {
            assert_eq!(p, &vec![r as u8; 24], "rank {r} part corrupted");
        }
    }
}

/// Large payloads cross the Vendor profile's pipeline threshold: bcast and
/// reduce run chunked, and the results must be byte-identical to the
/// sequential oracle (the chunked fold preserves element order exactly).
#[test]
fn pipelined_vendor_collectives_match_oracle() {
    let n = 6;
    let len = 40 * 1024; // > pipeline_threshold (12 KiB) -> 5 eager chunks
    let params = Profile::Vendor.params();
    let t = params.pipeline_threshold.expect("vendor pipelines");
    assert!(len >= t && len > params.pipeline_chunk);

    let out = MpiWorld::run(n, Profile::Vendor, move |comm| {
        let data = vec![(comm.rank() as u8).wrapping_mul(31); len];
        let red = comm.reduce(&data, &xor, 2).unwrap();
        let b = (comm.rank() == 1).then(|| vec![0xA5u8; len]);
        let got = comm.bcast(b.as_deref(), 1).unwrap().to_vec();
        (red, got)
    });
    let mut expect = vec![0u8; len];
    for r in 0..n {
        for byte in expect.iter_mut() {
            *byte ^= (r as u8).wrapping_mul(31);
        }
    }
    for (rank, (red, got)) in out.into_iter().enumerate() {
        assert_eq!(got, vec![0xA5u8; len], "bcast payload at rank {rank}");
        if rank == 2 {
            assert_eq!(red.unwrap(), expect, "pipelined reduce result");
        } else {
            assert!(red.is_none());
        }
    }
}
