//! Property tests: minimpi collectives agree with sequential oracles for
//! both profiles, arbitrary sizes and roots — including payloads that
//! straddle the Open profile's rendezvous/linear-reduce thresholds.

use minimpi::{MpiWorld, Profile};
use proptest::prelude::*;

fn xor(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a ^= b;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reduce_matches_oracle_across_profiles(
        n in 1usize..7,
        root_pick in 0usize..8,
        // Sizes chosen to cross the eager/rendezvous and linear-reduce
        // thresholds of the Open profile.
        len in prop_oneof![Just(16usize), Just(4096), Just(20 * 1024)],
        seed in any::<u8>(),
    ) {
        let root = root_pick % n;
        for profile in [Profile::Vendor, Profile::Open] {
            let out = MpiWorld::run(n, profile, move |comm| {
                let data = vec![seed ^ comm.rank() as u8; len];
                comm.reduce(&data, &xor, root).unwrap()
            });
            // Oracle: xor of every rank's payload byte.
            let mut expect = vec![0u8; len];
            for r in 0..n {
                for byte in expect.iter_mut() {
                    *byte ^= seed ^ r as u8;
                }
            }
            prop_assert_eq!(out[root].as_ref().unwrap(), &expect, "{:?}", profile);
        }
    }

    #[test]
    fn bcast_and_gather_roundtrip(
        n in 1usize..7,
        root_pick in 0usize..8,
        payload in proptest::collection::vec(any::<u8>(), 1..600),
    ) {
        let root = root_pick % n;
        for profile in [Profile::Vendor, Profile::Open] {
            let expect = payload.clone();
            let p2 = payload.clone();
            let out = MpiWorld::run(n, profile, move |comm| {
                let data = (comm.rank() == root).then(|| p2.clone());
                let got = comm.bcast(data.as_deref(), root).unwrap().to_vec();
                let gathered = comm.gather(&[comm.rank() as u8], root).unwrap();
                (got, gathered)
            });
            for (rank, (got, gathered)) in out.into_iter().enumerate() {
                prop_assert_eq!(&got, &expect);
                if rank == root {
                    let parts = gathered.unwrap();
                    for (r, p) in parts.iter().enumerate() {
                        prop_assert_eq!(p[0], r as u8);
                    }
                } else {
                    prop_assert!(gathered.is_none());
                }
            }
        }
    }

    #[test]
    fn allgather_matches_everywhere(n in 1usize..6, width in 1usize..64) {
        let out = MpiWorld::run(n, Profile::Open, move |comm| {
            let data = vec![comm.rank() as u8; width];
            comm.allgather(&data).unwrap().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
        });
        for parts in out {
            for (r, p) in parts.iter().enumerate() {
                prop_assert_eq!(p, &vec![r as u8; width]);
            }
        }
    }
}
