//! Communicators and the point-to-point protocol layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};

use na::{Address, Endpoint, NaError, RecvSelector};

use crate::Result;

/// Which MPI implementation this world models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Cray-mpich-like: vendor-optimized, uGNI-direct.
    Vendor,
    /// OpenMPI-like: generic, with the documented rendezvous cliff.
    Open,
}

/// Calibrated cost/protocol parameters of a profile.
#[derive(Debug, Clone, Copy)]
pub struct ProfileParams {
    /// Software overhead charged per send/recv operation.
    pub sw_op_ns: u64,
    /// Largest message sent eagerly; above this the large-message protocol
    /// kicks in.
    pub eager_max: usize,
    /// Large-message protocol: `true` → one-sided RDMA (vendor), `false`
    /// → two-sided rendezvous with handshake (open).
    pub large_uses_rdma: bool,
    /// Progress-synchronization penalty charged per rendezvous handshake
    /// (models mismatched polling between sender and receiver progress
    /// engines; only meaningful when `large_uses_rdma` is false).
    pub rndv_sync_ns: u64,
    /// Payload size at which `reduce` abandons the tree algorithm for a
    /// linear one (OpenMPI fallback); `None` keeps the tree at all sizes.
    pub linear_reduce_threshold: Option<usize>,
    /// Collective payloads at or above this size are segmented into
    /// pipeline chunks inside bcast/reduce trees (MPICH-style segmented
    /// algorithms); `None` keeps whole-payload trees at all sizes.
    pub pipeline_threshold: Option<usize>,
    /// Pipeline segment size (sized to ride the eager path).
    pub pipeline_chunk: usize,
    /// Upper end of the pipelining window: at this size and above the
    /// whole-payload RDMA tree wins again (zero-copy wire beats per-chunk
    /// eager copies) and segmentation is turned back off.
    pub pipeline_max: usize,
}

impl ProfileParams {
    /// Number of wire frames for a `len`-byte collective payload.
    pub(crate) fn coll_frames(&self, len: usize) -> (usize, usize) {
        match self.pipeline_threshold {
            Some(t) if len >= t && len < self.pipeline_max && self.pipeline_chunk > 0 => {
                (self.pipeline_chunk, len.div_ceil(self.pipeline_chunk))
            }
            _ => (len.max(1), 1),
        }
    }
}

impl Profile {
    /// The calibrated parameters for this profile.
    pub fn params(self) -> ProfileParams {
        match self {
            Profile::Vendor => ProfileParams {
                sw_op_ns: 20,
                eager_max: 8 * 1024,
                large_uses_rdma: true,
                rndv_sync_ns: 0,
                linear_reduce_threshold: None,
                pipeline_threshold: Some(12 * 1024),
                pipeline_chunk: 8 * 1024,
                pipeline_max: 160 * 1024,
            },
            Profile::Open => ProfileParams {
                sw_op_ns: 180,
                eager_max: 16 * 1024 - 1,
                large_uses_rdma: false,
                rndv_sync_ns: 27_000,
                linear_reduce_threshold: Some(16 * 1024),
                pipeline_threshold: None,
                pipeline_chunk: 8 * 1024,
                pipeline_max: 160 * 1024,
            },
        }
    }
}

const SUB_BITS: u64 = 26;
const CID_MASK: u64 = (1 << 18) - 1;
const ACK_BIT: u64 = 1 << 16;
const COLL_BIT: u64 = 1 << 25;
pub(crate) const COLL_ACK_BIT: u64 = 1 << 17;
/// Collective wire-tag round field: bits 5..=16 (12 bits).
pub(crate) const COLL_ROUND_SHIFT: u64 = 5;
/// Collective wire-tag seq field: bits 18..=24 (7 bits, wraps safely
/// because the mailbox is FIFO per (src, tag) and collectives issue
/// in seq order).
pub(crate) const COLL_SEQ_SHIFT: u64 = 18;
pub(crate) const COLL_SEQ_MASK: u64 = 0x7F;

const KIND_EAGER: u8 = 0;
const KIND_RDMA: u8 = 1;
const KIND_RTS: u8 = 2;

fn comm_id(members: &[Address], context: u64) -> u64 {
    let mut h: u64 = 0x84222325_cbf29ce4 ^ context.wrapping_mul(0x1000_0000_01b3);
    for a in members {
        h ^= a.0.rotate_left(17);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h & CID_MASK
}

/// An MPI communicator: fixed membership, ranks in member-list order.
#[derive(Clone)]
pub struct MpiComm {
    endpoint: Arc<Endpoint>,
    members: Arc<Vec<Address>>,
    rank: usize,
    cid: u64,
    context: u64,
    profile: Profile,
    params: ProfileParams,
    seq: Arc<AtomicU64>,
    pool: Arc<argo::Pool>,
}

impl MpiComm {
    /// Wraps an already-open endpoint into a communicator over `members`.
    /// Used by the launcher and by services embedding MPI next to an RPC
    /// layer. The caller's address must be in `members`.
    pub fn from_endpoint(
        endpoint: Arc<Endpoint>,
        members: Vec<Address>,
        profile: Profile,
    ) -> Self {
        Self::with_context(endpoint, members, profile, 0)
    }

    fn with_context(
        endpoint: Arc<Endpoint>,
        members: Vec<Address>,
        profile: Profile,
        context: u64,
    ) -> Self {
        let me = endpoint.address();
        let rank = members
            .iter()
            .position(|&a| a == me)
            .unwrap_or_else(|| panic!("{me} not in communicator"));
        let ctx = Arc::clone(endpoint.ctx());
        let pool = argo::PoolBuilder::new(format!("mpi-{me}"))
            .xstreams(2)
            .task_wrapper(Arc::new(move |task| {
                hpcsim::process::enter(Arc::clone(&ctx), task)
            }))
            .build();
        let cid = comm_id(&members, context);
        Self {
            endpoint,
            members: Arc::new(members),
            rank,
            cid,
            context,
            profile,
            params: profile.params(),
            seq: Arc::new(AtomicU64::new(0)),
            pool: Arc::new(pool),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The member list in rank order.
    pub fn members(&self) -> &[Address] {
        &self.members
    }

    /// The modeled MPI implementation.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The underlying endpoint (shared with RPC layers in services).
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    pub(crate) fn params(&self) -> &ProfileParams {
        &self.params
    }

    pub(crate) fn pool(&self) -> &argo::Pool {
        &self.pool
    }

    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn p2p_tag(&self, tag: u16) -> u64 {
        na::tags::MPI_BASE | (self.cid << SUB_BITS) | tag as u64
    }

    pub(crate) fn coll_tag(&self, seq: u64, op: u16, round: u32) -> u64 {
        debug_assert!(op < 32, "collective opcode must fit 5 bits");
        debug_assert!(round < 4096, "collective round must fit 12 bits");
        na::tags::MPI_BASE
            | (self.cid << SUB_BITS)
            | COLL_BIT
            | ((seq & COLL_SEQ_MASK) << COLL_SEQ_SHIFT)
            | ((round as u64) << COLL_ROUND_SHIFT)
            | op as u64
    }

    fn charge_op(&self) {
        self.endpoint.ctx().advance(self.params.sw_op_ns);
    }

    /// `MPI_Comm_split`: ranks with equal `color` form a new communicator,
    /// ordered by `key` (ties broken by old rank). This is how Damaris
    /// carves dedicated cores out of `MPI_COMM_WORLD`.
    pub fn split(&self, color: u64, key: u64) -> Result<MpiComm> {
        // Allgather (color, key, rank, address) and filter.
        let mut mine = Vec::with_capacity(32);
        mine.extend_from_slice(&color.to_le_bytes());
        mine.extend_from_slice(&key.to_le_bytes());
        mine.extend_from_slice(&(self.rank as u64).to_le_bytes());
        mine.extend_from_slice(&self.members[self.rank].0.to_le_bytes());
        let all = self.allgather(&mine)?;
        let mut rows: Vec<(u64, u64, u64, Address)> = all
            .iter()
            .map(|b| {
                let f = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
                (f(0), f(8), f(16), Address(f(24)))
            })
            .filter(|&(c, ..)| c == color)
            .collect();
        rows.sort_by_key(|&(_, key, old_rank, _)| (key, old_rank));
        let members: Vec<Address> = rows.iter().map(|&(.., a)| a).collect();
        Ok(MpiComm::with_context(
            Arc::clone(&self.endpoint),
            members,
            self.profile,
            self.context ^ color.wrapping_mul(0x9E37_79B9).wrapping_add(1),
        ))
    }

    /// Blocking tagged send. Eager below the profile threshold; RDMA or
    /// rendezvous above it (then it blocks until the receiver matched).
    pub fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<()> {
        self.raw_send(dst, self.p2p_tag(tag), data)
    }

    /// Blocking tagged receive from a specific rank.
    pub fn recv(&self, src: usize, tag: u16) -> Result<Bytes> {
        self.raw_recv(Some(src), self.p2p_tag(tag)).map(|(b, _)| b)
    }

    /// Receive from any source; returns payload and source rank.
    pub fn recv_any(&self, tag: u16) -> Result<(Bytes, usize)> {
        self.raw_recv(None, self.p2p_tag(tag))
    }

    /// Deadlock-safe simultaneous send and receive (`MPI_Sendrecv`).
    pub fn sendrecv(
        &self,
        data: &[u8],
        dst: usize,
        send_tag: u16,
        src: usize,
        recv_tag: u16,
    ) -> Result<Bytes> {
        let this = self.clone();
        let out_data = data.to_vec();
        let wire = self.p2p_tag(send_tag);
        let send = self.pool.spawn(move || this.raw_send(dst, wire, &out_data));
        let got = self.recv(src, recv_tag)?;
        send.wait()?;
        Ok(got)
    }

    pub(crate) fn raw_send(&self, dst: usize, wire_tag: u64, data: &[u8]) -> Result<()> {
        let ep = &self.endpoint;
        let dst_addr = self.members[dst];
        let mut sp = hpcsim::trace::span("mpi", "mpi.send");
        if sp.active() {
            let kind = if data.len() <= self.params.eager_max {
                "eager"
            } else if self.params.large_uses_rdma {
                "rdma"
            } else {
                "rendezvous"
            };
            sp.arg("kind", kind);
            sp.arg("bytes", data.len());
            sp.arg("dst", dst);
        }
        self.charge_op();
        if data.len() <= self.params.eager_max {
            let mut buf = BytesMut::with_capacity(data.len() + 1);
            buf.put_u8(KIND_EAGER);
            buf.put_slice(data);
            return ep.send(dst_addr, wire_tag, buf.freeze());
        }
        if self.params.large_uses_rdma {
            // Vendor path: expose + notice + remote get + ack.
            let handle = ep.expose(Bytes::copy_from_slice(data));
            let mut notice = BytesMut::with_capacity(25);
            notice.put_u8(KIND_RDMA);
            notice.put_u64_le(handle.owner.0);
            notice.put_u64_le(handle.key);
            notice.put_u64_le(handle.size as u64);
            ep.send_control(dst_addr, wire_tag, notice.freeze())?;
            let ack = ep.recv(RecvSelector::exact(dst_addr, wire_tag | ack_bit(wire_tag)));
            ep.unexpose(handle).ok();
            ack.map(|_| ())
        } else {
            // Open path: RTS → CTS → DATA rendezvous, paying the progress
            // synchronization penalty once the CTS is observed.
            let mut rts = BytesMut::with_capacity(9);
            rts.put_u8(KIND_RTS);
            rts.put_u64_le(data.len() as u64);
            ep.send_control(dst_addr, wire_tag, rts.freeze())?;
            ep.recv(RecvSelector::exact(dst_addr, wire_tag | ack_bit(wire_tag)))?;
            self.endpoint.ctx().advance(self.params.rndv_sync_ns);
            // The granted payload streams zero-copy (no eager bounce
            // buffers) — rendezvous' one redeeming feature.
            let mut buf = BytesMut::with_capacity(data.len() + 1);
            buf.put_u8(KIND_EAGER);
            buf.put_slice(data);
            ep.send_class(dst_addr, wire_tag, buf.freeze(), hpcsim::Xfer::Rdma)
        }
    }

    pub(crate) fn raw_recv(&self, src: Option<usize>, wire_tag: u64) -> Result<(Bytes, usize)> {
        let ep = &self.endpoint;
        let mut sp = hpcsim::trace::span("mpi", "mpi.recv");
        self.charge_op();
        let sel = match src {
            Some(r) => RecvSelector::exact(self.members[r], wire_tag),
            None => RecvSelector::tag(wire_tag),
        };
        let msg = ep.recv(sel)?;
        let src_rank = self
            .members
            .iter()
            .position(|&a| a == msg.src)
            .ok_or(NaError::Unreachable(msg.src))?;
        let (kind, body) = msg
            .data
            .split_first()
            .map(|(k, _)| (*k, msg.data.slice(1..)))
            .ok_or(NaError::ShortFrame { need: 1, have: 0 })?;
        match kind {
            KIND_EAGER => {
                if sp.active() {
                    sp.arg("kind", "eager");
                    sp.arg("bytes", body.len());
                    sp.arg("src", src_rank);
                }
                Ok((body, src_rank))
            }
            KIND_RDMA => {
                let owner = Address(u64_at(&body, 0)?);
                let key = u64_at(&body, 8)?;
                let size = u64_at(&body, 16)? as usize;
                if sp.active() {
                    sp.arg("kind", "rdma");
                    sp.arg("bytes", size);
                    sp.arg("src", src_rank);
                }
                let data = ep.rdma_get(na::BulkHandle { owner, key, size }, 0, size)?;
                ep.send_control(msg.src, wire_tag | ack_bit(wire_tag), Bytes::new())?;
                Ok((data, src_rank))
            }
            KIND_RTS => {
                // Grant the rendezvous and wait for the payload.
                ep.send_control(msg.src, wire_tag | ack_bit(wire_tag), Bytes::new())?;
                let data_msg = ep.recv(RecvSelector::exact(msg.src, wire_tag))?;
                let (k, body) = data_msg
                    .data
                    .split_first()
                    .map(|(k, _)| (*k, data_msg.data.slice(1..)))
                    .ok_or(NaError::ShortFrame { need: 1, have: 0 })?;
                assert_eq!(k, KIND_EAGER, "rendezvous DATA frame expected");
                if sp.active() {
                    sp.arg("kind", "rendezvous");
                    sp.arg("bytes", body.len());
                    sp.arg("src", src_rank);
                }
                Ok((body, src_rank))
            }
            other => Err(NaError::BadFrameKind(other)),
        }
    }
}

fn ack_bit(wire_tag: u64) -> u64 {
    if wire_tag & COLL_BIT != 0 {
        COLL_ACK_BIT
    } else {
        ACK_BIT
    }
}

/// Reads a little-endian u64 at `off`, surfacing a typed [`NaError::ShortFrame`]
/// instead of panicking when the frame is truncated.
fn u64_at(b: &[u8], off: usize) -> Result<u64> {
    match b.get(off..off + 8) {
        Some(s) => Ok(u64::from_le_bytes(s.try_into().expect("slice is 8 bytes"))),
        None => Err(NaError::ShortFrame {
            need: off + 8,
            have: b.len(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_at_surfaces_short_frames_as_typed_errors() {
        assert_eq!(u64_at(&[1, 0, 0, 0, 0, 0, 0, 0], 0), Ok(1));
        assert_eq!(
            u64_at(&[1, 2, 3], 0),
            Err(NaError::ShortFrame { need: 8, have: 3 })
        );
        assert_eq!(
            u64_at(&[0; 12], 8),
            Err(NaError::ShortFrame { need: 16, have: 12 })
        );
    }
}
