//! Collective algorithms.
//!
//! The Vendor profile keeps MPICH-style binomial trees at every size. The
//! Open profile switches `reduce` to a *linear* algorithm once payloads
//! reach its rendezvous threshold — the structural fallback that, combined
//! with the per-rendezvous synchronization penalty, reproduces Table II's
//! OpenMPI collapse.

use bytes::Bytes;

use crate::comm::MpiComm;
use crate::{ReduceOp, Result};

mod opcode {
    pub const BARRIER: u16 = 1;
    pub const BCAST: u16 = 2;
    pub const REDUCE: u16 = 3;
    pub const GATHER: u16 = 4;
    pub const ALLGATHER: u16 = 5;
    pub const SCATTER: u16 = 6;
}

impl MpiComm {
    /// Dissemination barrier.
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let seq = self.next_seq();
        let me = self.rank();
        let mut step = 1usize;
        let mut round: u16 = 0;
        while step < n {
            let tag = self.coll_tag(seq, opcode::BARRIER + (round << 4));
            self.raw_send((me + step) % n, tag, &[])?;
            self.raw_recv(Some((me + n - step) % n), tag)?;
            step <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast.
    pub fn bcast(&self, data: Option<&[u8]>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::BCAST);
        let relative = (me + n - root) % n;
        let mut buf: Option<Bytes> = data.map(Bytes::copy_from_slice);
        if me == root {
            assert!(buf.is_some(), "root must supply the broadcast payload");
        }
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = (relative - mask + root) % n;
                buf = Some(self.raw_recv(Some(src), tag)?.0);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        let payload = buf.expect("payload present");
        while mask > 0 {
            if relative + mask < n {
                self.raw_send((relative + mask + root) % n, tag, &payload)?;
            }
            mask >>= 1;
        }
        Ok(payload)
    }

    /// Reduce with a commutative operator; result only at the root.
    ///
    /// Algorithm selection follows the profile: binomial tree normally, or
    /// linear (root sequentially receives from every rank) once the Open
    /// profile's payloads reach rendezvous size.
    pub fn reduce(&self, data: &[u8], op: &dyn ReduceOp, root: usize) -> Result<Option<Vec<u8>>> {
        let linear = self
            .params()
            .linear_reduce_threshold
            .is_some_and(|t| data.len() >= t);
        if linear {
            self.reduce_linear(data, op, root)
        } else {
            self.reduce_binomial(data, op, root)
        }
    }

    fn reduce_binomial(
        &self,
        data: &[u8],
        op: &dyn ReduceOp,
        root: usize,
    ) -> Result<Option<Vec<u8>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::REDUCE);
        let relative = (me + n - root) % n;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let child_rel = relative | mask;
                if child_rel < n {
                    let (got, _) = self.raw_recv(Some((child_rel + root) % n), tag)?;
                    op.apply(&mut acc, &got);
                }
            } else {
                self.raw_send((relative & !mask).wrapping_add(root) % n, tag, &acc)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    fn reduce_linear(&self, data: &[u8], op: &dyn ReduceOp, root: usize) -> Result<Option<Vec<u8>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::REDUCE);
        if me == root {
            let mut acc = data.to_vec();
            // Sequential receipt: every child's rendezvous handshake is
            // serialized through the root — the structural cost driver.
            for _ in 0..n - 1 {
                let (got, _) = self.raw_recv(None, tag)?;
                op.apply(&mut acc, &got);
            }
            Ok(Some(acc))
        } else {
            self.raw_send(root, tag, data)?;
            Ok(None)
        }
    }

    /// Reduce-then-broadcast allreduce.
    pub fn allreduce(&self, data: &[u8], op: &dyn ReduceOp) -> Result<Vec<u8>> {
        let reduced = self.reduce(data, op, 0)?;
        Ok(self.bcast(reduced.as_deref(), 0)?.to_vec())
    }

    /// Linear gather (gatherv semantics); parts in rank order at the root.
    pub fn gather(&self, data: &[u8], root: usize) -> Result<Option<Vec<Bytes>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::GATHER);
        if me == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; n];
            parts[me] = Some(Bytes::copy_from_slice(data));
            for _ in 0..n - 1 {
                let (got, src) = self.raw_recv(None, tag)?;
                parts[src] = Some(got);
            }
            Ok(Some(parts.into_iter().map(|p| p.expect("all sent")).collect()))
        } else {
            self.raw_send(root, tag, data)?;
            Ok(None)
        }
    }

    /// Ring allgather.
    pub fn allgather(&self, data: &[u8]) -> Result<Vec<Bytes>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let mut parts: Vec<Option<Bytes>> = vec![None; n];
        parts[me] = Some(Bytes::copy_from_slice(data));
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut carry = parts[me].clone().expect("own part");
        for step in 0..n.saturating_sub(1) {
            let tag = self.coll_tag(seq, opcode::ALLGATHER + ((step as u16 & 0x3F) << 4));
            let this = self.clone();
            let payload = carry.to_vec();
            let send = self.pool().spawn(move || this.raw_send(right, tag, &payload));
            let (got, _) = self.raw_recv(Some(left), tag)?;
            send.wait()?;
            parts[(me + n - 1 - step) % n] = Some(got.clone());
            carry = got;
        }
        Ok(parts.into_iter().map(|p| p.expect("ring complete")).collect())
    }

    /// Linear scatter from the root.
    pub fn scatter(&self, parts: Option<&[Vec<u8>]>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::SCATTER);
        if me == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), n);
            for (dst, part) in parts.iter().enumerate() {
                if dst != me {
                    self.raw_send(dst, tag, part)?;
                }
            }
            Ok(Bytes::copy_from_slice(&parts[me]))
        } else {
            Ok(self.raw_recv(Some(root), tag)?.0)
        }
    }
}
