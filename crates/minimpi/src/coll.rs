//! Collective algorithms.
//!
//! The Vendor profile keeps MPICH-style binomial trees at every size and,
//! above `pipeline_threshold`, segments payloads into eager-sized chunks so
//! tree interior ranks forward chunk `k` while chunk `k+1` is still in
//! flight (MPICH's segmented pipeline). The Open profile switches `reduce`
//! to a *linear* algorithm once payloads reach its rendezvous threshold —
//! the structural fallback that, combined with the per-rendezvous
//! synchronization penalty, reproduces Table II's OpenMPI collapse.
//!
//! Wire framing: broadcast receivers cannot know the payload length ahead
//! of time, so the first broadcast frame is `[u64 LE total_len | chunk 0]`
//! and both sides derive the identical chunk plan from that length. Reduce
//! lengths are known on both sides, so reduce chunks travel bare. Each
//! chunk rides its own wire tag (the 12-bit `round` field), so mixed-size
//! collectives never cross-talk.

use bytes::Bytes;

use crate::comm::MpiComm;
use crate::{ReduceOp, Result};

mod opcode {
    pub const BARRIER: u16 = 1;
    pub const BCAST: u16 = 2;
    pub const REDUCE: u16 = 3;
    pub const GATHER: u16 = 4;
    pub const ALLGATHER: u16 = 5;
    pub const SCATTER: u16 = 6;
}

/// Byte range of chunk `k` in a `len`-byte payload cut into `chunk`-byte
/// segments.
fn chunk_range(k: usize, chunk: usize, len: usize) -> std::ops::Range<usize> {
    let start = (k * chunk).min(len);
    start..((k + 1) * chunk).min(len)
}

impl MpiComm {
    /// Dissemination barrier.
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let seq = self.next_seq();
        let me = self.rank();
        let mut step = 1usize;
        let mut round: u32 = 0;
        while step < n {
            let tag = self.coll_tag(seq, opcode::BARRIER, round);
            self.raw_send((me + step) % n, tag, &[])?;
            self.raw_recv(Some((me + n - step) % n), tag)?;
            step <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast, pipelined above the profile's threshold.
    pub fn bcast(&self, data: Option<&[u8]>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let relative = (me + n - root) % n;
        if me == root {
            assert!(data.is_some(), "root must supply the broadcast payload");
        }

        // Parent (if any) and the mask below which our children live.
        let mut recv_mask = 0usize;
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                recv_mask = mask;
                break;
            }
            mask <<= 1;
        }
        let top_mask = if recv_mask != 0 { recv_mask >> 1 } else { mask >> 1 };

        let send_chunk = |k: usize, frame: &[u8]| -> Result<()> {
            let tag = self.coll_tag(seq, opcode::BCAST, k as u32);
            let mut m = top_mask;
            while m > 0 {
                if relative + m < n {
                    self.raw_send((relative + m + root) % n, tag, frame)?;
                }
                m >>= 1;
            }
            Ok(())
        };

        if me == root {
            let payload = data.expect("payload present");
            let (chunk, count) = self.params().coll_frames(payload.len());
            for k in 0..count {
                let body = &payload[chunk_range(k, chunk, payload.len())];
                if k == 0 {
                    let mut frame = Vec::with_capacity(8 + body.len());
                    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                    frame.extend_from_slice(body);
                    send_chunk(0, &frame)?;
                } else {
                    send_chunk(k, body)?;
                }
            }
            return Ok(Bytes::copy_from_slice(payload));
        }

        // Non-root: frame 0 carries the total length; derive the plan,
        // forward each chunk to our subtree as soon as it arrives.
        let src = (relative - recv_mask + root) % n;
        let (frame0, _) = self.raw_recv(Some(src), self.coll_tag(seq, opcode::BCAST, 0))?;
        assert!(frame0.len() >= 8, "bcast frame 0 must carry the length prefix");
        let total = u64::from_le_bytes(frame0[..8].try_into().expect("8-byte prefix")) as usize;
        let (_chunk, count) = self.params().coll_frames(total);
        send_chunk(0, &frame0)?;
        if count == 1 {
            return Ok(frame0.slice(8..));
        }
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(&frame0[8..]);
        for k in 1..count {
            let (got, _) = self.raw_recv(Some(src), self.coll_tag(seq, opcode::BCAST, k as u32))?;
            send_chunk(k, &got)?;
            buf.extend_from_slice(&got);
        }
        assert_eq!(buf.len(), total, "reassembled bcast payload length");
        Ok(Bytes::from(buf))
    }

    /// Reduce with a commutative operator; result only at the root.
    ///
    /// Algorithm selection follows the profile: binomial tree normally
    /// (chunk-pipelined above `pipeline_threshold`), or linear (root
    /// sequentially receives from every rank) once the Open profile's
    /// payloads reach rendezvous size. The linear check runs first — it is
    /// the Table II cliff and must win over pipelining.
    pub fn reduce(&self, data: &[u8], op: &dyn ReduceOp, root: usize) -> Result<Option<Vec<u8>>> {
        let linear = self
            .params()
            .linear_reduce_threshold
            .is_some_and(|t| data.len() >= t);
        if linear {
            self.reduce_linear(data, op, root)
        } else {
            self.reduce_binomial(data, op, root)
        }
    }

    fn reduce_binomial(
        &self,
        data: &[u8],
        op: &dyn ReduceOp,
        root: usize,
    ) -> Result<Option<Vec<u8>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let relative = (me + n - root) % n;
        let (chunk, count) = self.params().coll_frames(data.len());
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let child_rel = relative | mask;
                if child_rel < n {
                    let child = (child_rel + root) % n;
                    // Fold chunk-by-chunk: same element order as the
                    // whole-payload fold, so results are bit-identical.
                    for k in 0..count {
                        let tag = self.coll_tag(seq, opcode::REDUCE, k as u32);
                        let (got, _) = self.raw_recv(Some(child), tag)?;
                        let range = chunk_range(k, chunk, acc.len());
                        assert_eq!(got.len(), range.len(), "reduce chunk length");
                        op.apply(&mut acc[range], &got);
                    }
                }
            } else {
                let parent = (relative & !mask).wrapping_add(root) % n;
                for k in 0..count {
                    let tag = self.coll_tag(seq, opcode::REDUCE, k as u32);
                    self.raw_send(parent, tag, &acc[chunk_range(k, chunk, acc.len())])?;
                }
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    fn reduce_linear(&self, data: &[u8], op: &dyn ReduceOp, root: usize) -> Result<Option<Vec<u8>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::REDUCE, 0);
        if me == root {
            let mut acc = data.to_vec();
            // Sequential receipt: every child's rendezvous handshake is
            // serialized through the root — the structural cost driver.
            for _ in 0..n - 1 {
                let (got, _) = self.raw_recv(None, tag)?;
                op.apply(&mut acc, &got);
            }
            Ok(Some(acc))
        } else {
            self.raw_send(root, tag, data)?;
            Ok(None)
        }
    }

    /// Reduce-then-broadcast allreduce.
    pub fn allreduce(&self, data: &[u8], op: &dyn ReduceOp) -> Result<Vec<u8>> {
        let reduced = self.reduce(data, op, 0)?;
        Ok(self.bcast(reduced.as_deref(), 0)?.to_vec())
    }

    /// Linear gather (gatherv semantics); parts in rank order at the root.
    pub fn gather(&self, data: &[u8], root: usize) -> Result<Option<Vec<Bytes>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::GATHER, 0);
        if me == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; n];
            parts[me] = Some(Bytes::copy_from_slice(data));
            for _ in 0..n - 1 {
                let (got, src) = self.raw_recv(None, tag)?;
                parts[src] = Some(got);
            }
            Ok(Some(parts.into_iter().map(|p| p.expect("all sent")).collect()))
        } else {
            self.raw_send(root, tag, data)?;
            Ok(None)
        }
    }

    /// Ring allgather. Each ring step gets its own 12-bit round tag, so
    /// rings up to 4096 ranks never alias (the old 6-bit field cross-talked
    /// past 64 ranks).
    pub fn allgather(&self, data: &[u8]) -> Result<Vec<Bytes>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let mut parts: Vec<Option<Bytes>> = vec![None; n];
        parts[me] = Some(Bytes::copy_from_slice(data));
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut carry = parts[me].clone().expect("own part");
        for step in 0..n.saturating_sub(1) {
            let tag = self.coll_tag(seq, opcode::ALLGATHER, step as u32);
            let this = self.clone();
            let payload = carry.clone();
            let send = self.pool().spawn(move || this.raw_send(right, tag, &payload));
            let (got, _) = self.raw_recv(Some(left), tag)?;
            send.wait()?;
            parts[(me + n - 1 - step) % n] = Some(got.clone());
            carry = got;
        }
        Ok(parts.into_iter().map(|p| p.expect("ring complete")).collect())
    }

    /// Linear scatter from the root.
    pub fn scatter(&self, parts: Option<&[Vec<u8>]>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let tag = self.coll_tag(seq, opcode::SCATTER, 0);
        if me == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), n);
            for (dst, part) in parts.iter().enumerate() {
                if dst != me {
                    self.raw_send(dst, tag, part)?;
                }
            }
            Ok(Bytes::copy_from_slice(&parts[me]))
        } else {
            Ok(self.raw_recv(Some(root), tag)?.0)
        }
    }
}
