//! # minimpi — a static MPI stand-in with calibrated vendor profiles
//!
//! The paper compares MoNA against two real MPI implementations on Cori:
//! Cray-mpich (vendor-optimized, driving the Aries NIC through uGNI) and
//! OpenMPI (generic, with a well-documented performance cliff at its
//! eager→rendezvous switchover on that system — see Table I/II). This
//! crate is the reproduction's stand-in for both, and the baseline
//! communication layer for the `Colza+MPI`, Damaris and DataSpaces
//! experiments.
//!
//! Like real MPI (and unlike MoNA), the world is **fixed at launch**:
//! [`MpiWorld::launch`] plays the role of `mpirun` and there is no way to
//! add a rank afterwards — this is precisely the limitation that motivates
//! MoNA in the paper.
//!
//! ## Profiles
//!
//! [`Profile::Vendor`] models Cray-mpich: tiny per-operation software
//! overhead, RDMA for large messages, tuned tree collectives.
//!
//! [`Profile::Open`] models OpenMPI on this fabric: moderate overhead, an
//! eager→rendezvous switch at 16 KiB whose handshake carries a large
//! progress-synchronization penalty, and a fallback to a *linear* reduce
//! algorithm for rendezvous-sized payloads. Those two structural choices
//! reproduce the Table I cliff (16 KiB send/recv jumping ~30×) and the
//! Table II collapse (reduce degrading by orders of magnitude), without
//! faking any numbers: the costs emerge from counting real protocol
//! messages against the fabric model.

mod coll;
mod comm;
mod world;

pub use comm::{MpiComm, Profile, ProfileParams};
pub use world::MpiWorld;

/// Errors surfaced by minimpi (today these are NA transport errors).
pub type MpiError = na::NaError;
/// Result alias.
pub type Result<T> = std::result::Result<T, MpiError>;

/// A reduction operator over raw element buffers (same contract as
/// `mona::ReduceOp`; duplicated because the two libraries are independent
/// stacks in the paper's architecture).
pub trait ReduceOp: Sync {
    /// Folds `other` into `acc` elementwise.
    fn apply(&self, acc: &mut [u8], other: &[u8]);
}

impl<F: Fn(&mut [u8], &[u8]) + Sync> ReduceOp for F {
    fn apply(&self, acc: &mut [u8], other: &[u8]) {
        self(acc, other)
    }
}
