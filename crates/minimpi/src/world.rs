//! The launcher: `mpirun` for the simulated cluster.

use std::sync::Arc;

use na::{Address, Fabric};

use crate::comm::{MpiComm, Profile};

/// Launch-time facilities for a fixed-size MPI world.
///
/// Unlike MoNA — where communicators are built from address lists at any
/// time — an MPI world exists only from launch to teardown, and its size
/// cannot change. `MpiWorld` makes that explicit: the only way to obtain
/// an `MpiComm` covering fresh processes is to launch them all together.
pub struct MpiWorld;

impl MpiWorld {
    /// Launches `n` ranks (placed `procs_per_node` per node starting at
    /// `first_node`) on a shared fabric and runs `f(world_comm)` on each.
    /// Plays the role of `mpirun`, including the PMI-style bootstrap that
    /// exchanges endpoint addresses before rank 0 releases the world.
    pub fn launch<R: Send + 'static>(
        cluster: &hpcsim::Cluster,
        fabric: &Fabric,
        n: usize,
        procs_per_node: usize,
        first_node: usize,
        profile: Profile,
        f: impl Fn(MpiComm) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let (addr_tx, addr_rx) = crossbeam::channel::unbounded();
        let (list_tx, list_rx) = crossbeam::channel::unbounded::<Vec<Address>>();
        let f = Arc::new(f);
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let fabric = fabric.clone();
                let addr_tx = addr_tx.clone();
                let list_rx = list_rx.clone();
                let f = Arc::clone(&f);
                cluster.spawn(
                    &format!("mpi[{rank}]"),
                    first_node + rank / procs_per_node,
                    move || {
                        let endpoint = Arc::new(fabric.open());
                        addr_tx.send((rank, endpoint.address())).unwrap();
                        let members = list_rx.recv().unwrap();
                        let comm = MpiComm::from_endpoint(endpoint, members, profile);
                        f(comm)
                    },
                )
            })
            .collect();
        let mut addrs = vec![Address(0); n];
        for _ in 0..n {
            let (rank, addr) = addr_rx.recv().unwrap();
            addrs[rank] = addr;
        }
        for _ in 0..n {
            list_tx.send(addrs.clone()).unwrap();
        }
        handles.into_iter().map(|h| h.join()).collect()
    }

    /// Convenience: fresh zero-latency cluster and fabric (tests).
    pub fn run<R: Send + 'static>(
        n: usize,
        profile: Profile,
        f: impl Fn(MpiComm) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let cluster = hpcsim::Cluster::default();
        let fabric = Fabric::new(Arc::clone(cluster.shared()));
        Self::launch(&cluster, &fabric, n, 4, 0, profile, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_op(acc: &mut [u8], other: &[u8]) {
        for (a, b) in acc.iter_mut().zip(other) {
            *a ^= b;
        }
    }

    #[test]
    fn world_ranks_are_dense() {
        for profile in [Profile::Vendor, Profile::Open] {
            let mut ranks = MpiWorld::run(5, profile, |comm| (comm.rank(), comm.size()));
            ranks.sort_unstable();
            assert_eq!(ranks, (0..5).map(|r| (r, 5)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn p2p_small_and_large_roundtrip_both_profiles() {
        for profile in [Profile::Vendor, Profile::Open] {
            let out = MpiWorld::run(2, profile, |comm| {
                if comm.rank() == 0 {
                    comm.send(b"small", 1, 1).unwrap();
                    comm.send(&vec![3u8; 64 * 1024], 1, 2).unwrap();
                    0
                } else {
                    let a = comm.recv(0, 1).unwrap();
                    let b = comm.recv(0, 2).unwrap();
                    assert_eq!(&a[..], b"small");
                    assert_eq!(b.len(), 64 * 1024);
                    assert!(b.iter().all(|&x| x == 3));
                    1
                }
            });
            assert_eq!(out, vec![0, 1], "{profile:?}");
        }
    }

    #[test]
    fn collectives_match_oracle_both_profiles() {
        for profile in [Profile::Vendor, Profile::Open] {
            let out = MpiWorld::run(6, profile, |comm| {
                comm.barrier().unwrap();
                let data = vec![comm.rank() as u8 + 1; 8];
                let red = comm.reduce(&data, &xor_op, 0).unwrap();
                let b = comm.bcast(Some(&[9, 9]), 0).unwrap();
                assert_eq!(&b[..], &[9, 9]);
                red
            });
            let expect = (1..=6u8).fold(0, |a, b| a ^ b);
            assert_eq!(out[0].as_ref().unwrap(), &vec![expect; 8], "{profile:?}");
        }
    }

    #[test]
    fn open_profile_linear_reduce_matches_tree_result() {
        // Payload over the rendezvous threshold triggers the linear
        // algorithm; the *result* must be identical to Vendor's tree.
        let big = 20 * 1024;
        let run = |profile| {
            MpiWorld::run(4, profile, move |comm| {
                let data = vec![comm.rank() as u8 + 1; big];
                comm.reduce(&data, &xor_op, 0).unwrap()
            })
        };
        assert_eq!(run(Profile::Vendor)[0], run(Profile::Open)[0]);
    }

    #[test]
    fn open_rendezvous_is_structurally_slower_than_vendor_rdma() {
        let time = |profile| {
            let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
            let fabric = Fabric::new(Arc::clone(cluster.shared()));
            let out = MpiWorld::launch(&cluster, &fabric, 2, 1, 0, profile, |comm| {
                let before = hpcsim::current().now();
                if comm.rank() == 0 {
                    for _ in 0..10 {
                        comm.send(&vec![0u8; 32 * 1024], 1, 0).unwrap();
                        comm.recv(1, 1).unwrap();
                    }
                } else {
                    for _ in 0..10 {
                        comm.recv(0, 0).unwrap();
                        comm.send(&vec![0u8; 32 * 1024], 0, 1).unwrap();
                    }
                }
                hpcsim::current().now() - before
            });
            out[0]
        };
        let vendor = time(Profile::Vendor);
        let open = time(Profile::Open);
        assert!(
            open > vendor * 3,
            "rendezvous cliff missing: vendor={vendor} open={open}"
        );
    }

    #[test]
    fn split_partitions_by_color_and_orders_by_key() {
        let out = MpiWorld::run(6, Profile::Vendor, |comm| {
            let color = (comm.rank() % 2) as u64;
            // Reverse key order within each color group.
            let key = 100 - comm.rank() as u64;
            let sub = comm.split(color, key).unwrap();
            // Verify the subgroup works as a communicator.
            let gathered = sub.gather(&[comm.rank() as u8], 0).unwrap();
            (comm.rank(), sub.rank(), sub.size(), gathered.map(|g| {
                g.iter().map(|p| p[0]).collect::<Vec<_>>()
            }))
        });
        for (world_rank, sub_rank, sub_size, gathered) in &out {
            assert_eq!(*sub_size, 3);
            // Keys were reversed, so higher world ranks get lower sub ranks.
            let peers: Vec<usize> = (0..6).filter(|r| r % 2 == world_rank % 2).collect();
            let expect_rank = peers.iter().rev().position(|&r| r == *world_rank).unwrap();
            assert_eq!(*sub_rank, expect_rank);
            if let Some(g) = gathered {
                let mut expect: Vec<u8> = peers.iter().rev().map(|&r| r as u8).collect();
                let got = g.clone();
                expect.sort_unstable();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, expect);
            }
        }
    }

    #[test]
    fn allgather_and_scatter_roundtrip() {
        let out = MpiWorld::run(4, Profile::Open, |comm| {
            let all = comm.allgather(&[comm.rank() as u8]).unwrap();
            let flat: Vec<u8> = all.iter().map(|p| p[0]).collect();
            let parts = (comm.rank() == 0)
                .then(|| (0..4).map(|i| vec![i as u8 * 2]).collect::<Vec<_>>());
            let mine = comm.scatter(parts.as_deref(), 0).unwrap();
            (flat, mine[0])
        });
        for (rank, (flat, mine)) in out.iter().enumerate() {
            assert_eq!(flat, &vec![0, 1, 2, 3]);
            assert_eq!(*mine, rank as u8 * 2);
        }
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let out = MpiWorld::run(2, Profile::Open, |comm| {
            let peer = 1 - comm.rank();
            let data = vec![comm.rank() as u8; 40 * 1024];
            comm.sendrecv(&data, peer, 0, peer, 0).unwrap()[0]
        });
        assert_eq!(out, vec![1, 0]);
    }
}
