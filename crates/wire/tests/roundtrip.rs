//! Property tests: every encodable value decodes back to itself, and the
//! decoder never panics on arbitrary input.

use proptest::prelude::*;
use proptest_derive::Arbitrary;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Arbitrary)]
enum Shape {
    Empty,
    Point(i64),
    Pair(u32, u32),
    Labeled { name: String, weight: f64 },
}

#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Arbitrary)]
struct Record {
    id: u64,
    flag: bool,
    tag: Option<i16>,
    name: String,
    values: Vec<f32>,
    shape: Shape,
    nested: Vec<Vec<u8>>,
}

fn assert_roundtrip<T>(v: &T)
where
    T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
{
    let bytes = wire::to_vec(v).expect("serialize");
    let back: T = wire::from_slice(&bytes).expect("deserialize");
    assert_eq!(&back, v);
}

proptest! {
    #[test]
    fn u64_roundtrips(v: u64) { assert_roundtrip(&v); }

    #[test]
    fn f64_roundtrips(v in prop::num::f64::NORMAL | prop::num::f64::ZERO) {
        assert_roundtrip(&v);
    }

    #[test]
    fn strings_roundtrip(v in "\\PC*") { assert_roundtrip(&v); }

    #[test]
    fn byte_vectors_roundtrip(v: Vec<u8>) { assert_roundtrip(&v); }

    #[test]
    fn tuples_roundtrip(v: (u8, i32, String, Option<u64>)) { assert_roundtrip(&v); }

    #[test]
    fn records_roundtrip(v: Record) { assert_roundtrip(&v); }

    #[test]
    fn decoder_never_panics_on_garbage(bytes: Vec<u8>) {
        let _ = wire::from_slice::<Record>(&bytes);
        let _ = wire::from_slice::<Vec<String>>(&bytes);
        let _ = wire::from_slice::<Shape>(&bytes);
    }

    #[test]
    fn encoding_is_deterministic(v: Record) {
        prop_assert_eq!(wire::to_vec(&v).unwrap(), wire::to_vec(&v).unwrap());
    }

    #[test]
    fn to_extend_appends(v: Record, prefix: Vec<u8>) {
        let mut buf = prefix.clone();
        let n = wire::to_extend(&v, &mut buf).unwrap();
        prop_assert_eq!(&buf[..prefix.len()], &prefix[..]);
        prop_assert_eq!(buf.len(), prefix.len() + n);
        let back: Record = wire::from_slice(&buf[prefix.len()..]).unwrap();
        prop_assert_eq!(back, v);
    }
}
