//! The wire serializer.

use serde::ser::{self, Serialize};

use crate::error::{Error, Result};
use crate::write_varint;

/// Serializes `value` into a fresh byte vector.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(64);
    {
        let mut ser = Serializer::new(&mut buf);
        value.serialize(&mut ser)?;
    }
    Ok(buf)
}

/// A serde serializer writing the wire format into a borrowed buffer.
pub struct Serializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Serializer<'a> {
    /// Wraps an output buffer.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Self { out }
    }
}

impl<'a, 'b> ser::Serializer for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.out.push(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        write_varint(self.out, v.len() as u64);
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        write_varint(self.out, v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        write_varint(self.out, variant_index as u64);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        write_varint(self.out, variant_index as u64);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or(Error::Unsupported("sequences of unknown length"))?;
        write_varint(self.out, len as u64);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        write_varint(self.out, variant_index as u64);
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or(Error::Unsupported("maps of unknown length"))?;
        write_varint(self.out, len as u64);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        write_varint(self.out, variant_index as u64);
        Ok(self)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

macro_rules! impl_compound {
    ($trait_:ident, $method:ident $(, $key:ident)?) => {
        impl<'a, 'b> ser::$trait_ for &'b mut Serializer<'a> {
            type Ok = ();
            type Error = Error;

            $(
                fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
                    key.serialize(&mut **self)
                }
            )?

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut **self)
            }

            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element);
impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);
impl_compound!(SerializeMap, serialize_value, serialize_key);

impl<'a, 'b> ser::SerializeStruct for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_fixed_width() {
        assert_eq!(to_vec(&0x01020304u32).unwrap(), vec![4, 3, 2, 1]);
        assert_eq!(to_vec(&true).unwrap(), vec![1]);
        assert_eq!(to_vec(&1.0f64).unwrap().len(), 8);
    }

    #[test]
    fn strings_are_length_prefixed() {
        assert_eq!(to_vec(&"hi").unwrap(), vec![2, b'h', b'i']);
    }

    #[test]
    fn unit_is_zero_bytes() {
        assert!(to_vec(&()).unwrap().is_empty());
    }

    #[test]
    fn option_tags() {
        assert_eq!(to_vec(&Option::<u8>::None).unwrap(), vec![0]);
        assert_eq!(to_vec(&Some(7u8)).unwrap(), vec![1, 7]);
    }

    #[test]
    fn vec_has_varint_length() {
        let v: Vec<u16> = vec![1, 2];
        assert_eq!(to_vec(&v).unwrap(), vec![2, 1, 0, 2, 0]);
    }
}
