//! The wire deserializer.

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};

use crate::error::{Error, Result};
use crate::read_varint;

/// Deserializes a value of type `T` from `input`, requiring the entire
/// slice to be consumed.
pub fn from_slice<'de, T: de::Deserialize<'de>>(input: &'de [u8]) -> Result<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(Error::TrailingBytes(de.input.len()))
    }
}

/// A serde deserializer reading the wire format from a byte slice.
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Wraps an input slice.
    pub fn new(input: &'de [u8]) -> Self {
        Self { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(Error::Eof);
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        Ok(self.take(N)?.try_into().expect("exact split"))
    }

    fn read_len(&mut self) -> Result<usize> {
        let n = read_varint(&mut self.input)?;
        if n > self.input.len() as u64 {
            return Err(Error::BadLength(n));
        }
        Ok(n as usize)
    }
}

macro_rules! de_fixed {
    ($method:ident, $ty:ty, $visit:ident) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = <$ty>::from_le_bytes(self.take_array()?);
            visitor.$visit(v)
        }
    };
}

impl<'de, 'a> de::Deserializer<'de> for &'a mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Unsupported("deserialize_any: wire is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(Error::BadBool(b)),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i8(self.take(1)?[0] as i8)
    }

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u8(self.take(1)?[0])
    }

    de_fixed!(deserialize_i16, i16, visit_i16);
    de_fixed!(deserialize_i32, i32, visit_i32);
    de_fixed!(deserialize_i64, i64, visit_i64);
    de_fixed!(deserialize_u16, u16, visit_u16);
    de_fixed!(deserialize_u32, u32, visit_u32);
    de_fixed!(deserialize_u64, u64, visit_u64);
    de_fixed!(deserialize_f32, f32, visit_f32);
    de_fixed!(deserialize_f64, f64, visit_f64);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let scalar = u32::from_le_bytes(self.take_array()?);
        let c = char::from_u32(scalar).ok_or(Error::BadChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let n = self.read_len()?;
        let bytes = self.take(n)?;
        let s = std::str::from_utf8(bytes).map_err(|_| Error::BadUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let n = self.read_len()?;
        visitor.visit_borrowed_bytes(self.take(n)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(Error::BadOptionTag(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_map(Counted { de: self, left: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Unsupported("identifiers are never encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Unsupported("cannot skip values in a non-self-describing format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'de, 'a> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for Counted<'de, 'a> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'de, 'a> de::MapAccess<'de> for Counted<'de, 'a> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'de, 'a> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'de, 'a> {
    type Error = Error;
    type Variant = &'a mut Deserializer<'de>;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self::Variant)> {
        let idx = read_varint(&mut self.de.input)?;
        if idx > u32::MAX as u64 {
            return Err(Error::VarintOverflow);
        }
        let val = seed.deserialize((idx as u32).into_deserializer())?;
        Ok((val, self.de))
    }
}

impl<'de, 'a> de::VariantAccess<'de> for &'a mut Deserializer<'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_vec;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Meta {
        name: String,
        dims: [u64; 3],
        kind: Kind,
        tag: Option<u32>,
        payload: Vec<u8>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Kind {
        Unit,
        Newtype(i32),
        Tuple(u8, u8),
        Struct { x: f32 },
    }

    fn roundtrip<T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_vec(&v).unwrap();
        let back: T = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn struct_roundtrip() {
        roundtrip(Meta {
            name: "density".into(),
            dims: [64, 64, 128],
            kind: Kind::Struct { x: 2.5 },
            tag: Some(9),
            payload: vec![1, 2, 3, 4, 5],
        });
    }

    #[test]
    fn enum_variants_roundtrip() {
        roundtrip(Kind::Unit);
        roundtrip(Kind::Newtype(-7));
        roundtrip(Kind::Tuple(3, 4));
        roundtrip(Kind::Struct { x: -0.0 });
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        roundtrip(m);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_vec(&7u8).unwrap();
        bytes.push(0);
        assert!(matches!(
            from_slice::<u8>(&bytes),
            Err(Error::TrailingBytes(1))
        ));
    }

    #[test]
    fn truncation_is_an_error() {
        let bytes = to_vec(&0xAABBCCDDu32).unwrap();
        assert!(matches!(from_slice::<u32>(&bytes[..3]), Err(Error::Eof)));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // A vec claiming u64::MAX elements must not allocate.
        let mut bytes = Vec::new();
        crate::write_varint(&mut bytes, u64::MAX);
        assert!(matches!(
            from_slice::<Vec<u8>>(&bytes),
            Err(Error::BadLength(_))
        ));
    }

    #[test]
    fn bad_bool_is_rejected() {
        assert!(matches!(from_slice::<bool>(&[2]), Err(Error::BadBool(2))));
    }

    #[test]
    fn chars_and_floats() {
        roundtrip('λ');
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(f32::NEG_INFINITY);
    }

    #[test]
    fn borrowed_bytes_are_zero_copy() {
        // Manual impls: the shim derive rejects lifetime-generic types, and
        // this struct needs `serialize_bytes`/`deserialize_bytes` anyway.
        #[derive(PartialEq, Debug)]
        struct B<'a> {
            data: &'a [u8],
        }
        impl serde::Serialize for B<'_> {
            fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
                struct AsBytes<'a>(&'a [u8]);
                impl serde::Serialize for AsBytes<'_> {
                    fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
                        s.serialize_bytes(self.0)
                    }
                }
                use serde::ser::SerializeStruct;
                let mut st = s.serialize_struct("B", 1)?;
                st.serialize_field("data", &AsBytes(self.data))?;
                st.end()
            }
        }
        impl<'de> serde::Deserialize<'de> for B<'de> {
            fn deserialize<D: serde::Deserializer<'de>>(d: D) -> std::result::Result<Self, D::Error> {
                struct V;
                impl<'de> serde::de::Visitor<'de> for V {
                    type Value = B<'de>;
                    fn expecting(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
                        f.write_str("struct B")
                    }
                    fn visit_seq<A: serde::de::SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> std::result::Result<Self::Value, A::Error> {
                        let data: &'de [u8] = seq
                            .next_element()?
                            .ok_or_else(|| serde::de::Error::custom("missing field `data`"))?;
                        Ok(B { data })
                    }
                }
                d.deserialize_struct("B", &["data"], V)
            }
        }
        let payload = vec![9u8; 1000];
        let bytes = to_vec(&B { data: &payload }).unwrap();
        let back: B = from_slice(&bytes).unwrap();
        assert_eq!(back.data, &payload[..]);
        // The decoded slice must point into the encoded buffer, not a copy.
        let enc_range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(enc_range.contains(&(back.data.as_ptr() as usize)));
    }
}
