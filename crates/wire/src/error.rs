//! Error type shared by the serializer and deserializer.

use std::fmt;

/// Result alias for wire operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended before the value was complete.
    Eof,
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// A length prefix exceeded the remaining input.
    BadLength(u64),
    /// A `bool` byte was neither 0 nor 1.
    BadBool(u8),
    /// An `Option` tag was neither 0 nor 1.
    BadOptionTag(u8),
    /// A `char` was not a valid Unicode scalar value.
    BadChar(u32),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// The input had trailing bytes after a complete value.
    TrailingBytes(usize),
    /// The format cannot encode this (e.g. `deserialize_any`).
    Unsupported(&'static str),
    /// Custom message from serde.
    Message(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "unexpected end of input"),
            Error::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            Error::BadLength(n) => write!(f, "length prefix {n} exceeds remaining input"),
            Error::BadBool(b) => write!(f, "invalid bool byte {b:#x}"),
            Error::BadOptionTag(b) => write!(f, "invalid option tag {b:#x}"),
            Error::BadChar(c) => write!(f, "invalid char scalar {c:#x}"),
            Error::BadUtf8 => write!(f, "string is not valid UTF-8"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            Error::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}
