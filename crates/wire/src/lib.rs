//! # wire — compact binary serde format for RPC payloads
//!
//! Mercury encodes RPC arguments with hand-written `proc` routines; this
//! crate is the reproduction's equivalent: a small, allocation-conscious,
//! self-contained binary format with a `serde` front end, used by `margo`
//! for RPC argument and response encoding.
//!
//! Format rules (little-endian throughout):
//! * fixed-width primitives are stored verbatim;
//! * `bool` is one byte (0/1);
//! * lengths (strings, byte strings, sequences, maps) are LEB128 varints;
//! * `Option` is a 1-byte tag followed by the value when present;
//! * enum variants are encoded by their u32 variant index as a varint;
//! * structs and tuples are field concatenations (no framing) — both sides
//!   must agree on the schema, as is standard for HPC RPC layers.

mod de;
mod error;
mod ser;

pub use de::{from_slice, Deserializer};
pub use error::{Error, Result};
pub use ser::{to_vec, Serializer};

/// Serializes `value` and appends it to `buf`, returning the number of
/// bytes written. Lets callers reuse buffers on hot paths.
pub fn to_extend<T: serde::Serialize>(value: &T, buf: &mut Vec<u8>) -> Result<usize> {
    let before = buf.len();
    {
        let mut ser = Serializer::new(buf);
        value.serialize(&mut ser)?;
    }
    Ok(buf.len() - before)
}

pub(crate) fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn read_varint(input: &mut &[u8]) -> Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or(Error::Eof)?;
        *input = rest;
        if shift >= 64 {
            return Err(Error::VarintOverflow);
        }
        out |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod varint_tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut s: &[u8] = &[0x80];
        assert!(matches!(read_varint(&mut s), Err(Error::Eof)));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let mut s: &[u8] = &[0x80; 11];
        assert!(matches!(read_varint(&mut s), Err(Error::VarintOverflow)));
    }
}
