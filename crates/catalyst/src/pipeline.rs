//! Pipeline execution.

use std::sync::atomic::{AtomicBool, Ordering};

use vizkit::data::{DataSet, PolyData, UnstructuredGrid};
use vizkit::filters;
use vizkit::math::{vec3, Vec3};
use vizkit::render::{render_surface, render_volume, Camera, ColorMap, Image, TransferFunction};
use vizkit::Controller;

use crate::icet_context;
use crate::script::{CameraSpec, FilterSpec, PipelineScript, RenderMode};

/// Catalyst runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct CatalystConfig {
    /// Virtual cost charged on a process's *first* `execute`: VTK shared
    /// libraries loading plus Python interpreter start. The paper observes
    /// this as the large first-iteration time (§III-C2) and as the spike
    /// whenever a joined node runs its first iteration (Figs. 9, 10).
    pub init_cost_ns: u64,
}

impl Default for CatalystConfig {
    fn default() -> Self {
        Self {
            init_cost_ns: 3 * hpcsim::SEC,
        }
    }
}

/// An instantiated pipeline: a parsed script plus per-process state.
pub struct CatalystPipeline {
    script: PipelineScript,
    config: CatalystConfig,
    initialized: AtomicBool,
}

impl CatalystPipeline {
    /// Builds a pipeline from a parsed script.
    pub fn new(script: PipelineScript, config: CatalystConfig) -> Self {
        Self {
            script,
            config,
            initialized: AtomicBool::new(false),
        }
    }

    /// Builds a pipeline from a JSON configuration string (the payload of
    /// Colza's `create_pipeline`).
    pub fn from_json(json: &str, config: CatalystConfig) -> Result<Self, String> {
        Ok(Self::new(PipelineScript::from_json(json)?, config))
    }

    /// The script.
    pub fn script(&self) -> &PipelineScript {
        &self.script
    }

    /// Whether the first-execute initialization has already been paid.
    pub fn is_initialized(&self) -> bool {
        self.initialized.load(Ordering::Acquire)
    }

    /// Executes the pipeline over this rank's staged blocks. All ranks of
    /// `ctrl` must call collectively; the compositing root (rank 0)
    /// receives `Some(image)`.
    pub fn execute(&self, blocks: &[DataSet], ctrl: &Controller) -> Result<Option<Image>, String> {
        let ctx = hpcsim::process::try_current();
        if !self.initialized.swap(true, Ordering::AcqRel) {
            if let Some(ctx) = &ctx {
                ctx.advance(self.config.init_cost_ns);
            }
        }
        let charge = |f: &mut dyn FnMut() -> Result<LocalRender, String>| match &ctx {
            Some(ctx) => ctx.charge_compute(f),
            None => f(),
        };

        let spec = &self.script.render;
        let mut produce = || -> Result<LocalRender, String> {
            match spec.mode {
                RenderMode::Surface => self.render_surface_local(blocks, ctrl),
                RenderMode::Volume => self.render_volume_local(blocks, ctrl),
            }
        };
        let local = charge(&mut produce)?;

        // Composite across the staging area through the converted
        // communicator (the vtkIceTContext path).
        let icet_comm = icet_context::icet_comm_for(ctrl.comm())?;
        let (op, strategy, order) = match spec.mode {
            RenderMode::Surface => (icet::CompositeOp::Closest, spec.strategy.to_icet(), None),
            RenderMode::Volume => {
                // Visibility order: ranks sorted by view depth, resolved
                // at the root from gathered local depths.
                let depth_bytes = local.view_depth.to_le_bytes();
                let gathered = ctrl.comm().gather(&depth_bytes, 0)?;
                let order = gathered.map(|parts| {
                    let mut order: Vec<usize> = (0..parts.len()).collect();
                    let depths: Vec<f32> = parts
                        .iter()
                        .map(|p| f32::from_le_bytes(p[..4].try_into().unwrap()))
                        .collect();
                    order.sort_by(|&a, &b| depths[a].total_cmp(&depths[b]));
                    order
                });
                (icet::CompositeOp::Blend, icet::Strategy::Direct, order)
            }
        };
        icet::composite(
            icet_comm.as_ref(),
            local.image,
            op,
            strategy,
            order.as_deref(),
            0,
        )
    }

    fn render_surface_local(
        &self,
        blocks: &[DataSet],
        ctrl: &Controller,
    ) -> Result<LocalRender, String> {
        let spec = &self.script.render;
        // Run the filter chain on each block and merge the surfaces.
        let mut merged = PolyData::new();
        for block in blocks {
            let poly = self.apply_filters(block)?;
            if merged.points.is_empty() {
                merged = poly;
            } else {
                merged.append(&poly);
            }
        }
        // Collective consensus on camera framing and color range.
        let bounds = global_bounds(ctrl, merged.bounds())?;
        let camera = self.camera(bounds);
        let range = match spec.range {
            Some(r) => r,
            None => {
                let local = spec
                    .field
                    .as_deref()
                    .and_then(|f| merged.point_data.get(f))
                    .and_then(|a| a.range())
                    .map(|(lo, hi)| (lo as f32, hi as f32));
                global_range(ctrl, local)?
            }
        };
        let colors = ColorMap::by_name(&spec.colormap, range);
        let image = render_surface(
            &merged,
            &camera,
            &colors,
            spec.field.as_deref(),
            spec.width,
            spec.height,
        );
        let center = merged
            .bounds()
            .map(|(lo, hi)| (lo + hi) * 0.5)
            .unwrap_or_default();
        Ok(LocalRender {
            view_depth: camera.view_depth(center),
            image,
        })
    }

    fn render_volume_local(
        &self,
        blocks: &[DataSet],
        ctrl: &Controller,
    ) -> Result<LocalRender, String> {
        let spec = &self.script.render;
        let field = spec
            .field
            .as_deref()
            .ok_or("volume rendering needs a field")?;
        // Merge this rank's unstructured blocks and resample.
        let ugrids: Vec<&UnstructuredGrid> =
            blocks.iter().filter_map(|b| b.as_ugrid()).collect();
        let merged = filters::merge_blocks(&ugrids);
        let dims = if spec.adaptive_resample {
            // Grid resolution tracks the local mesh size, so rendering
            // cost grows with the data (real unstructured volume
            // rendering behaves this way).
            let n = ((merged.num_cells() as f64).cbrt() * 1.6).clamp(16.0, 96.0) as usize;
            [n, n, n]
        } else {
            spec.resample_dims
        };
        let vol = filters::resample_to_image(&merged, field, dims, f32::NEG_INFINITY);

        let bounds = global_bounds(ctrl, merged.bounds())?;
        let camera = self.camera(bounds);
        let range = match spec.range {
            Some(r) => r,
            None => {
                let local = merged
                    .cell_data
                    .get(field)
                    .and_then(|a| a.range())
                    .map(|(lo, hi)| (lo as f32, hi as f32));
                global_range(ctrl, local)?
            }
        };
        let tf = TransferFunction::with_opacity(
            ColorMap::by_name(&spec.colormap, range),
            vec![(0.0, 0.0), (0.35, spec.max_opacity * 0.3), (1.0, spec.max_opacity)],
        );
        let step = {
            let (lo, hi) = bounds;
            ((hi - lo).length() / dims[0].max(16) as f32).max(1e-3)
        };
        let image = if merged.num_cells() == 0 {
            Image::new(spec.width, spec.height)
        } else {
            render_volume(&vol, field, &camera, &tf, spec.width, spec.height, step)
        };
        let center = merged
            .bounds()
            .map(|(lo, hi)| (lo + hi) * 0.5)
            .unwrap_or(camera.focal_point);
        Ok(LocalRender {
            view_depth: camera.view_depth(center),
            image,
        })
    }

    /// Runs the filter chain on one block, ending in a surface.
    fn apply_filters(&self, block: &DataSet) -> Result<PolyData, String> {
        enum Working {
            Img(vizkit::ImageData),
            UG(UnstructuredGrid),
            Poly(PolyData),
        }
        let mut cur = match block {
            DataSet::Image(i) => Working::Img(i.clone()),
            DataSet::UGrid(g) => Working::UG(g.clone()),
            DataSet::Poly(p) => Working::Poly(p.clone()),
        };
        for f in &self.script.filters {
            cur = match (f, cur) {
                (FilterSpec::Contour { field, isovalues }, Working::Img(img)) => {
                    Working::Poly(filters::contour(&img, field, isovalues))
                }
                (FilterSpec::Clip { origin, normal }, Working::Poly(p)) => {
                    let plane = filters::Plane::through(
                        Vec3::from_array(*origin),
                        Vec3::from_array(*normal),
                    );
                    Working::Poly(filters::clip(&p, plane))
                }
                (FilterSpec::Threshold { field, min, max }, Working::UG(g)) => {
                    Working::UG(filters::threshold_cells(&g, field, *min, *max))
                }
                (f, _) => {
                    return Err(format!("filter {f:?} cannot apply to the current data type"))
                }
            };
        }
        match cur {
            Working::Poly(p) => Ok(p),
            Working::Img(_) | Working::UG(_) => {
                Err("pipeline must end in surface geometry for surface rendering".to_string())
            }
        }
    }

    fn camera(&self, bounds: (Vec3, Vec3)) -> Camera {
        match self.script.render.camera {
            Some(CameraSpec {
                position,
                focal_point,
                up,
                fovy_deg,
            }) => Camera {
                position: Vec3::from_array(position),
                focal_point: Vec3::from_array(focal_point),
                up: Vec3::from_array(up),
                fovy_deg,
                ..Camera::default()
            },
            None => Camera::fit_bounds(bounds.0, bounds.1),
        }
    }
}

struct LocalRender {
    image: Image,
    view_depth: f32,
}

/// Collective min/max of axis-aligned bounds across ranks.
fn global_bounds(
    ctrl: &Controller,
    local: Option<(Vec3, Vec3)>,
) -> Result<(Vec3, Vec3), String> {
    let (lo, hi) = local.unwrap_or((
        vec3(f32::INFINITY, f32::INFINITY, f32::INFINITY),
        vec3(f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY),
    ));
    let mut payload = Vec::with_capacity(24);
    for v in [lo.x, lo.y, lo.z, hi.x, hi.y, hi.z] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let fold = |acc: &mut [u8], other: &[u8]| {
        for i in 0..6 {
            let a = f32::from_le_bytes(acc[i * 4..i * 4 + 4].try_into().unwrap());
            let b = f32::from_le_bytes(other[i * 4..i * 4 + 4].try_into().unwrap());
            let v = if i < 3 { a.min(b) } else { a.max(b) };
            acc[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    };
    let out = ctrl.comm().allreduce(&payload, &fold)?;
    let f = |i: usize| f32::from_le_bytes(out[i * 4..i * 4 + 4].try_into().unwrap());
    let (lo, hi) = (vec3(f(0), f(1), f(2)), vec3(f(3), f(4), f(5)));
    if lo.x > hi.x {
        // Every rank was empty: use a unit box so cameras stay finite.
        Ok((vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0)))
    } else {
        Ok((lo, hi))
    }
}

/// Collective scalar-range consensus.
fn global_range(ctrl: &Controller, local: Option<(f32, f32)>) -> Result<(f32, f32), String> {
    let (lo, hi) = local.unwrap_or((f32::INFINITY, f32::NEG_INFINITY));
    let mut payload = Vec::with_capacity(8);
    payload.extend_from_slice(&lo.to_le_bytes());
    payload.extend_from_slice(&hi.to_le_bytes());
    let fold = |acc: &mut [u8], other: &[u8]| {
        let alo = f32::from_le_bytes(acc[0..4].try_into().unwrap());
        let ahi = f32::from_le_bytes(acc[4..8].try_into().unwrap());
        let blo = f32::from_le_bytes(other[0..4].try_into().unwrap());
        let bhi = f32::from_le_bytes(other[4..8].try_into().unwrap());
        acc[0..4].copy_from_slice(&alo.min(blo).to_le_bytes());
        acc[4..8].copy_from_slice(&ahi.max(bhi).to_le_bytes());
    };
    let out = ctrl.comm().allreduce(&payload, &fold)?;
    let lo = f32::from_le_bytes(out[0..4].try_into().unwrap());
    let hi = f32::from_le_bytes(out[4..8].try_into().unwrap());
    if lo > hi {
        Ok((0.0, 1.0))
    } else {
        Ok((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vizkit::controller::DummyComm;
    use vizkit::data::{CellType, DataArray, ImageData};

    fn sphere_block(n: usize, offset: [f32; 3]) -> DataSet {
        let mut g = ImageData::new([n, n, n]);
        g.origin = offset;
        let c = (n - 1) as f32 / 2.0;
        let mut vals = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let d = vec3(i as f32 - c, j as f32 - c, k as f32 - c).length();
                    vals.push(c - d); // positive inside a sphere
                }
            }
        }
        g.point_data.set("v", DataArray::F32(vals));
        DataSet::Image(g)
    }

    fn voxel_block(value: f32) -> DataSet {
        let mut g = UnstructuredGrid::new();
        for k in 0..2u32 {
            for j in 0..2u32 {
                for i in 0..2u32 {
                    g.points.push([i as f32 * 4.0, j as f32 * 4.0, k as f32 * 4.0]);
                }
            }
        }
        g.add_cell(CellType::Voxel, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g.cell_data.set("v02", DataArray::F32(vec![value]));
        DataSet::UGrid(g)
    }

    fn serial_ctrl() -> Controller {
        Controller::new(Arc::new(DummyComm))
    }

    fn surface_script() -> PipelineScript {
        PipelineScript {
            filters: vec![FilterSpec::Contour {
                field: "v".to_string(),
                isovalues: vec![1.0],
            }],
            render: crate::script::RenderSpec {
                mode: RenderMode::Surface,
                width: 48,
                height: 48,
                field: Some("v".to_string()),
                colormap: "viridis".to_string(),
                range: None,
                max_opacity: 0.7,
                resample_dims: [16, 16, 16],
                adaptive_resample: false,
                strategy: Default::default(),
                camera: None,
            },
        }
    }

    #[test]
    fn serial_surface_pipeline_renders() {
        let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
        let img = pipe
            .execute(&[sphere_block(12, [0.0; 3])], &serial_ctrl())
            .unwrap()
            .unwrap();
        assert!(img.coverage() > 0.02, "coverage {}", img.coverage());
    }

    #[test]
    fn serial_volume_pipeline_renders() {
        let pipe = CatalystPipeline::new(
            PipelineScript::deep_water_impact(32, 32),
            CatalystConfig::default(),
        );
        let img = pipe
            .execute(&[voxel_block(5.0)], &serial_ctrl())
            .unwrap()
            .unwrap();
        assert!(img.coverage() > 0.01, "coverage {}", img.coverage());
    }

    #[test]
    fn empty_blocks_render_background() {
        let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
        let img = pipe.execute(&[], &serial_ctrl()).unwrap().unwrap();
        assert_eq!(img.coverage(), 0.0);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
        // Contour expects ImageData; feed it an unstructured block.
        let err = pipe
            .execute(&[voxel_block(1.0)], &serial_ctrl())
            .unwrap_err();
        assert!(err.contains("cannot apply"), "{err}");
    }

    #[test]
    fn parallel_surface_matches_serial_union() {
        // Two ranks each hold half of the data; the composited image must
        // show geometry from both.
        let script = PipelineScript {
            filters: vec![FilterSpec::Contour {
                field: "v".to_string(),
                isovalues: vec![1.0],
            }],
            render: crate::script::RenderSpec {
                camera: Some(crate::script::CameraSpec {
                    position: [30.0, 24.0, 36.0],
                    focal_point: [8.0, 4.0, 4.0],
                    up: [0.0, 0.0, 1.0],
                    fovy_deg: 45.0,
                }),
                ..surface_script().render
            },
        };
        let out = mona::testing::with_comm(2, mona::MonaConfig::default(), move |comm| {
            let vtk = crate::adapters::MonaVtkComm::new(comm);
            let rank = vizkit::VtkComm::rank(vtk.as_ref());
            let ctrl = Controller::new(vtk);
            let pipe = CatalystPipeline::new(script.clone(), CatalystConfig::default());
            let offset = [rank as f32 * 11.0, 0.0, 0.0];
            let img = pipe.execute(&[sphere_block(10, offset)], &ctrl).unwrap();
            img.map(|i| i.coverage())
        });
        let root_cov = out[0].unwrap();
        assert!(out[1].is_none());
        assert!(root_cov > 0.01, "root coverage {root_cov}");
    }

    #[test]
    fn first_execute_charges_init_cost() {
        let cluster = hpcsim::Cluster::default();
        let cov = cluster
            .spawn("cat", 0, || {
                let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
                let before = hpcsim::current().now();
                pipe.execute(&[sphere_block(8, [0.0; 3])], &serial_ctrl())
                    .unwrap();
                let first = hpcsim::current().now() - before;
                let before = hpcsim::current().now();
                pipe.execute(&[sphere_block(8, [0.0; 3])], &serial_ctrl())
                    .unwrap();
                let second = hpcsim::current().now() - before;
                (first, second)
            })
            .join();
        let (first, second) = cov;
        assert!(
            first > second + 2 * hpcsim::SEC,
            "init cost missing: {first} vs {second}"
        );
    }
}
