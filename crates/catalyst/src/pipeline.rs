//! Pipeline execution.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use vizkit::data::{ArrayStats, DataSet, PolyData, UnstructuredGrid};
use vizkit::filters;
use vizkit::math::{vec3, Vec3};
use vizkit::render::{render_surface, render_volume, Camera, ColorMap, Image, TransferFunction};
use vizkit::Controller;

use crate::icet_context;
use crate::script::{CameraSpec, FilterSpec, PipelineScript, RenderMode};
use crate::trigger::{Reparam, TriggerProgram, TriggerState};

/// Catalyst runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct CatalystConfig {
    /// Virtual cost charged on a process's *first* `execute`: VTK shared
    /// libraries loading plus Python interpreter start. The paper observes
    /// this as the large first-iteration time (§III-C2) and as the spike
    /// whenever a joined node runs its first iteration (Figs. 9, 10).
    pub init_cost_ns: u64,
}

impl Default for CatalystConfig {
    fn default() -> Self {
        Self {
            init_cost_ns: 3 * hpcsim::SEC,
        }
    }
}

/// What one reactive execution produced. `skipped` means the trigger
/// program decided against running this iteration — a normal outcome,
/// distinct from any error: no filters ran, no image was composited, and
/// (aside from the one stats allreduce) no virtual time was charged.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The composited image on the root rank of iterations that ran.
    pub image: Option<Image>,
    /// Whether the trigger program skipped this iteration.
    pub skipped: bool,
}

/// An instantiated pipeline: a parsed script plus per-process state.
pub struct CatalystPipeline {
    script: PipelineScript,
    config: CatalystConfig,
    initialized: AtomicBool,
    triggers: TriggerProgram,
    trigger_state: Mutex<TriggerState>,
}

impl CatalystPipeline {
    /// Builds a pipeline from a parsed script.
    ///
    /// Panics when the script's trigger section does not compile; scripts
    /// from untrusted input go through [`Self::from_json`], which
    /// validates triggers and returns a typed error instead.
    pub fn new(script: PipelineScript, config: CatalystConfig) -> Self {
        Self::try_new(script, config).expect("pipeline script triggers must compile")
    }

    /// Builds a pipeline, compiling the trigger section fallibly.
    pub fn try_new(script: PipelineScript, config: CatalystConfig) -> Result<Self, String> {
        let triggers = script.compile_triggers().map_err(|e| e.to_string())?;
        Ok(Self {
            script,
            config,
            initialized: AtomicBool::new(false),
            triggers,
            trigger_state: Mutex::new(TriggerState::new()),
        })
    }

    /// Builds a pipeline from a JSON configuration string (the payload of
    /// Colza's `create_pipeline`).
    pub fn from_json(json: &str, config: CatalystConfig) -> Result<Self, String> {
        Self::try_new(PipelineScript::from_json(json)?, config)
    }

    /// The script.
    pub fn script(&self) -> &PipelineScript {
        &self.script
    }

    /// The compiled trigger program.
    pub fn triggers(&self) -> &TriggerProgram {
        &self.triggers
    }

    /// Whether the first-execute initialization has already been paid.
    pub fn is_initialized(&self) -> bool {
        self.initialized.load(Ordering::Acquire)
    }

    /// Executes the pipeline over this rank's staged blocks. All ranks of
    /// `ctrl` must call collectively; the compositing root (rank 0)
    /// receives `Some(image)`. Compatibility entry point for untriggered
    /// pipelines — triggered ones should call [`Self::execute_reactive`]
    /// with the real iteration number.
    pub fn execute(&self, blocks: &[DataSet], ctrl: &Controller) -> Result<Option<Image>, String> {
        self.execute_reactive(blocks, ctrl, 0).map(|o| o.image)
    }

    /// Reactive execution (DESIGN.md §15): evaluates the script's trigger
    /// program against fused global statistics of the staged data, then
    /// either runs the pipeline (possibly re-parameterized by fired
    /// triggers) or skips it. Deterministic across ranks: the predicate
    /// inputs come from one allreduce, so every rank reaches the same
    /// decision independently.
    pub fn execute_reactive(
        &self,
        blocks: &[DataSet],
        ctrl: &Controller,
        iteration: u64,
    ) -> Result<PipelineOutcome, String> {
        let spec = &self.script.render;
        let mut plan = RenderPlan::default();
        let mut precomputed = None;

        if !self.triggers.is_empty() {
            let _sp = hpcsim::trace::span("catalyst", "catalyst.trigger.eval");
            // The agreed field layout: every field a trigger term reads,
            // plus the render field when the script needs a computed
            // color range — so the render reuses this same collective.
            let mut local: BTreeMap<String, ArrayStats> = BTreeMap::new();
            for f in self.triggers.fields() {
                local.insert(f.clone(), ArrayStats::empty());
            }
            if spec.range.is_none() {
                if let Some(f) = spec.field.as_deref() {
                    local.entry(f.to_string()).or_insert_with(ArrayStats::empty);
                }
            }
            for (name, acc) in local.iter_mut() {
                for b in blocks {
                    acc.merge(&b.field_stats(name));
                }
            }
            let stats = global_stats(ctrl, local_blocks_bounds(blocks), &local)?;
            let decision = {
                let mut st = self.trigger_state.lock();
                self.triggers
                    .evaluate(iteration, &stats.fields, &mut st)
                    .map_err(|e| format!("trigger evaluation failed: {e}"))?
            };
            hpcsim::trace::counter_add("colza.trigger.evaluated", 1);
            hpcsim::trace::counter_add("colza.trigger.fired", decision.fired);
            if !decision.run {
                hpcsim::trace::counter_add("colza.trigger.skipped", 1);
                return Ok(PipelineOutcome {
                    image: None,
                    skipped: true,
                });
            }
            hpcsim::trace::counter_add("colza.trigger.reparam", decision.reparams.len() as u64);
            for r in decision.reparams {
                match r {
                    Reparam::Contour { field, value } => {
                        plan.contours.insert(field, vec![value]);
                    }
                    Reparam::Range { lo, hi } => plan.range = Some((lo, hi)),
                    Reparam::CameraZoom(z) => plan.zoom = z,
                }
            }
            precomputed = Some(stats);
        }

        let ctx = hpcsim::process::try_current();
        // Catalyst initialization is paid on the first iteration that
        // actually runs — skipped iterations never load the libraries.
        if !self.initialized.swap(true, Ordering::AcqRel) {
            if let Some(ctx) = &ctx {
                ctx.advance(self.config.init_cost_ns);
            }
        }
        let charge = |f: &mut dyn FnMut() -> Result<LocalRender, String>| match &ctx {
            Some(ctx) => ctx.charge_compute(f),
            None => f(),
        };

        let mut produce = || -> Result<LocalRender, String> {
            match spec.mode {
                RenderMode::Surface => {
                    self.render_surface_local(blocks, ctrl, &plan, precomputed.as_ref())
                }
                RenderMode::Volume => {
                    self.render_volume_local(blocks, ctrl, &plan, precomputed.as_ref())
                }
            }
        };
        let local = charge(&mut produce)?;

        // Composite across the staging area through the converted
        // communicator (the vtkIceTContext path).
        let icet_comm = icet_context::icet_comm_for(ctrl.comm())?;
        let (op, strategy, order) = match spec.mode {
            RenderMode::Surface => (icet::CompositeOp::Closest, spec.strategy.to_icet(), None),
            RenderMode::Volume => {
                // Visibility order: ranks sorted by view depth, resolved
                // at the root from gathered local depths.
                let depth_bytes = local.view_depth.to_le_bytes();
                let gathered = ctrl.comm().gather(&depth_bytes, 0)?;
                let order = gathered.map(|parts| {
                    let mut order: Vec<usize> = (0..parts.len()).collect();
                    let depths: Vec<f32> = parts
                        .iter()
                        .map(|p| f32::from_le_bytes(p[..4].try_into().unwrap()))
                        .collect();
                    order.sort_by(|&a, &b| depths[a].total_cmp(&depths[b]));
                    order
                });
                (icet::CompositeOp::Blend, icet::Strategy::Direct, order)
            }
        };
        let image = icet::composite(
            icet_comm.as_ref(),
            local.image,
            op,
            strategy,
            order.as_deref(),
            0,
        )?;
        Ok(PipelineOutcome {
            image,
            skipped: false,
        })
    }

    fn render_surface_local(
        &self,
        blocks: &[DataSet],
        ctrl: &Controller,
        plan: &RenderPlan,
        precomputed: Option<&GlobalStats>,
    ) -> Result<LocalRender, String> {
        let spec = &self.script.render;
        // Run the filter chain on each block and merge the surfaces.
        let mut merged = PolyData::new();
        for block in blocks {
            let poly = self.apply_filters(block, plan)?;
            if merged.points.is_empty() {
                merged = poly;
            } else {
                merged.append(&poly);
            }
        }
        // Collective consensus on camera framing and color range — one
        // fused allreduce carrying bounds and any needed field stats
        // (reused from the trigger evaluation when it already ran one).
        let stats = match precomputed {
            Some(s) => s.clone(),
            None => {
                let mut local = BTreeMap::new();
                if spec.range.is_none() && plan.range.is_none() {
                    if let Some(f) = spec.field.as_deref() {
                        let s = merged
                            .point_data
                            .get(f)
                            .map(|a| a.stats())
                            .unwrap_or_else(ArrayStats::empty);
                        local.insert(f.to_string(), s);
                    }
                }
                global_stats(ctrl, merged.bounds(), &local)?
            }
        };
        let camera = self.camera(stats.bounds, plan.zoom);
        let range = plan
            .range
            .or(spec.range)
            .unwrap_or_else(|| stats.field_range(spec.field.as_deref()));
        let colors = ColorMap::by_name(&spec.colormap, range);
        let image = render_surface(
            &merged,
            &camera,
            &colors,
            spec.field.as_deref(),
            spec.width,
            spec.height,
        );
        let center = merged
            .bounds()
            .map(|(lo, hi)| (lo + hi) * 0.5)
            .unwrap_or_default();
        Ok(LocalRender {
            view_depth: camera.view_depth(center),
            image,
        })
    }

    fn render_volume_local(
        &self,
        blocks: &[DataSet],
        ctrl: &Controller,
        plan: &RenderPlan,
        precomputed: Option<&GlobalStats>,
    ) -> Result<LocalRender, String> {
        let spec = &self.script.render;
        let field = spec
            .field
            .as_deref()
            .ok_or("volume rendering needs a field")?;
        // Merge this rank's unstructured blocks and resample.
        let ugrids: Vec<&UnstructuredGrid> =
            blocks.iter().filter_map(|b| b.as_ugrid()).collect();
        let merged = filters::merge_blocks(&ugrids);
        let dims = if spec.adaptive_resample {
            // Grid resolution tracks the local mesh size, so rendering
            // cost grows with the data (real unstructured volume
            // rendering behaves this way).
            let n = ((merged.num_cells() as f64).cbrt() * 1.6).clamp(16.0, 96.0) as usize;
            [n, n, n]
        } else {
            spec.resample_dims
        };
        let vol = filters::resample_to_image(&merged, field, dims, f32::NEG_INFINITY);

        let stats = match precomputed {
            Some(s) => s.clone(),
            None => {
                let mut local = BTreeMap::new();
                if spec.range.is_none() && plan.range.is_none() {
                    let s = merged
                        .cell_data
                        .get(field)
                        .map(|a| a.stats())
                        .unwrap_or_else(ArrayStats::empty);
                    local.insert(field.to_string(), s);
                }
                global_stats(ctrl, merged.bounds(), &local)?
            }
        };
        let camera = self.camera(stats.bounds, plan.zoom);
        let range = plan
            .range
            .or(spec.range)
            .unwrap_or_else(|| stats.field_range(Some(field)));
        let tf = TransferFunction::with_opacity(
            ColorMap::by_name(&spec.colormap, range),
            vec![(0.0, 0.0), (0.35, spec.max_opacity * 0.3), (1.0, spec.max_opacity)],
        );
        let step = {
            let (lo, hi) = stats.bounds;
            ((hi - lo).length() / dims[0].max(16) as f32).max(1e-3)
        };
        let image = if merged.num_cells() == 0 {
            Image::new(spec.width, spec.height)
        } else {
            render_volume(&vol, field, &camera, &tf, spec.width, spec.height, step)
        };
        let center = merged
            .bounds()
            .map(|(lo, hi)| (lo + hi) * 0.5)
            .unwrap_or(camera.focal_point);
        Ok(LocalRender {
            view_depth: camera.view_depth(center),
            image,
        })
    }

    /// Runs the filter chain on one block, ending in a surface. Contour
    /// isovalues may be re-parameterized by a fired trigger.
    fn apply_filters(&self, block: &DataSet, plan: &RenderPlan) -> Result<PolyData, String> {
        enum Working {
            Img(vizkit::ImageData),
            UG(UnstructuredGrid),
            Poly(PolyData),
        }
        let mut cur = match block {
            DataSet::Image(i) => Working::Img(i.clone()),
            DataSet::UGrid(g) => Working::UG(g.clone()),
            DataSet::Poly(p) => Working::Poly(p.clone()),
        };
        for f in &self.script.filters {
            cur = match (f, cur) {
                (FilterSpec::Contour { field, isovalues }, Working::Img(img)) => {
                    let values = plan.contours.get(field).unwrap_or(isovalues);
                    Working::Poly(filters::contour(&img, field, values))
                }
                (FilterSpec::Clip { origin, normal }, Working::Poly(p)) => {
                    let plane = filters::Plane::through(
                        Vec3::from_array(*origin),
                        Vec3::from_array(*normal),
                    );
                    Working::Poly(filters::clip(&p, plane))
                }
                (FilterSpec::Threshold { field, min, max }, Working::UG(g)) => {
                    Working::UG(filters::threshold_cells(&g, field, *min, *max))
                }
                (f, _) => {
                    return Err(format!("filter {f:?} cannot apply to the current data type"))
                }
            };
        }
        match cur {
            Working::Poly(p) => Ok(p),
            Working::Img(_) | Working::UG(_) => {
                Err("pipeline must end in surface geometry for surface rendering".to_string())
            }
        }
    }

    fn camera(&self, bounds: (Vec3, Vec3), zoom: f64) -> Camera {
        let mut cam = match self.script.render.camera {
            Some(CameraSpec {
                position,
                focal_point,
                up,
                fovy_deg,
            }) => Camera {
                position: Vec3::from_array(position),
                focal_point: Vec3::from_array(focal_point),
                up: Vec3::from_array(up),
                fovy_deg,
                ..Camera::default()
            },
            None => Camera::fit_bounds(bounds.0, bounds.1),
        };
        // A camera(zoom) trigger scales the eye's distance to the feature
        // bounds by 1/zoom (zoom > 1 moves in).
        if zoom.is_finite() && zoom > 0.0 && zoom != 1.0 {
            let dir = cam.position - cam.focal_point;
            cam.position = cam.focal_point + dir * (1.0 / zoom as f32);
        }
        cam
    }
}

/// Per-execution render adjustments from fired triggers.
#[derive(Debug, Clone)]
struct RenderPlan {
    /// Contour isovalue overrides by filter field.
    contours: BTreeMap<String, Vec<f64>>,
    /// Color-range override.
    range: Option<(f32, f32)>,
    /// Camera zoom factor (1.0 = as scripted).
    zoom: f64,
}

impl Default for RenderPlan {
    fn default() -> Self {
        RenderPlan {
            contours: BTreeMap::new(),
            range: None,
            zoom: 1.0,
        }
    }
}

struct LocalRender {
    image: Image,
    view_depth: f32,
}

/// Fused global reduction result: spatial bounds plus per-field summary
/// statistics, all carried by one allreduce.
#[derive(Debug, Clone)]
pub struct GlobalStats {
    /// Global axis-aligned bounds (a unit box when every rank is empty,
    /// so cameras stay finite).
    pub bounds: (Vec3, Vec3),
    /// Global per-field statistics, keyed by field name.
    pub fields: BTreeMap<String, ArrayStats>,
}

impl GlobalStats {
    /// The color range for `field`: its global `(min, max)` as `f32`, or
    /// `(0, 1)` when the field is absent/empty everywhere (the historic
    /// `global_range` fallback).
    pub fn field_range(&self, field: Option<&str>) -> (f32, f32) {
        field
            .and_then(|f| self.fields.get(f))
            .filter(|s| !s.is_empty())
            .map(|s| (s.min as f32, s.max as f32))
            .unwrap_or((0.0, 1.0))
    }
}

/// Combined bounds of this rank's staged blocks.
fn local_blocks_bounds(blocks: &[DataSet]) -> Option<(Vec3, Vec3)> {
    let mut acc: Option<(Vec3, Vec3)> = None;
    for b in blocks {
        let bb = match b {
            DataSet::Image(i) => Some(i.bounds()),
            DataSet::UGrid(g) => g.bounds(),
            DataSet::Poly(p) => p.bounds(),
        };
        if let Some((lo, hi)) = bb {
            acc = Some(match acc {
                None => (lo, hi),
                Some((alo, ahi)) => (
                    vec3(alo.x.min(lo.x), alo.y.min(lo.y), alo.z.min(lo.z)),
                    vec3(ahi.x.max(hi.x), ahi.y.max(hi.y), ahi.z.max(hi.z)),
                ),
            });
        }
    }
    acc
}

/// The fused statistics collective: ONE allreduce carrying the spatial
/// bounds (6 × f32) plus, for every agreed field, the `ArrayStats`
/// monoid (min/max/sum as f64, count as u64 — 32 bytes each). All ranks
/// must pass the same field set, which callers derive from the script
/// alone, never from the data. `min`, `max`, `range` and `mean` of every
/// field all fall out of this single collective.
fn global_stats(
    ctrl: &Controller,
    local_bounds: Option<(Vec3, Vec3)>,
    local_fields: &BTreeMap<String, ArrayStats>,
) -> Result<GlobalStats, String> {
    hpcsim::trace::counter_add("colza.trigger.stats.collectives", 1);
    let (lo, hi) = local_bounds.unwrap_or((
        vec3(f32::INFINITY, f32::INFINITY, f32::INFINITY),
        vec3(f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY),
    ));
    let mut payload = Vec::with_capacity(24 + 32 * local_fields.len());
    for v in [lo.x, lo.y, lo.z, hi.x, hi.y, hi.z] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for s in local_fields.values() {
        payload.extend_from_slice(&s.min.to_le_bytes());
        payload.extend_from_slice(&s.max.to_le_bytes());
        payload.extend_from_slice(&s.sum.to_le_bytes());
        payload.extend_from_slice(&s.count.to_le_bytes());
    }
    let nfields = local_fields.len();
    let fold = move |acc: &mut [u8], other: &[u8]| {
        for i in 0..6 {
            let a = f32::from_le_bytes(acc[i * 4..i * 4 + 4].try_into().unwrap());
            let b = f32::from_le_bytes(other[i * 4..i * 4 + 4].try_into().unwrap());
            let v = if i < 3 { a.min(b) } else { a.max(b) };
            acc[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        for i in 0..nfields {
            let at = 24 + i * 32;
            let f = |buf: &[u8], off: usize| {
                f64::from_le_bytes(buf[at + off..at + off + 8].try_into().unwrap())
            };
            let min = f(acc, 0).min(f(other, 0));
            let max = f(acc, 8).max(f(other, 8));
            let sum = f(acc, 16) + f(other, 16);
            let count = u64::from_le_bytes(acc[at + 24..at + 32].try_into().unwrap())
                + u64::from_le_bytes(other[at + 24..at + 32].try_into().unwrap());
            acc[at..at + 8].copy_from_slice(&min.to_le_bytes());
            acc[at + 8..at + 16].copy_from_slice(&max.to_le_bytes());
            acc[at + 16..at + 24].copy_from_slice(&sum.to_le_bytes());
            acc[at + 24..at + 32].copy_from_slice(&count.to_le_bytes());
        }
    };
    let out = ctrl.comm().allreduce(&payload, &fold)?;
    let f = |i: usize| f32::from_le_bytes(out[i * 4..i * 4 + 4].try_into().unwrap());
    let (lo, hi) = (vec3(f(0), f(1), f(2)), vec3(f(3), f(4), f(5)));
    let bounds = if lo.x > hi.x {
        // Every rank was empty: use a unit box so cameras stay finite.
        (vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0))
    } else {
        (lo, hi)
    };
    let mut fields = BTreeMap::new();
    for (i, name) in local_fields.keys().enumerate() {
        let at = 24 + i * 32;
        let g = |off: usize| f64::from_le_bytes(out[at + off..at + off + 8].try_into().unwrap());
        fields.insert(
            name.clone(),
            ArrayStats {
                min: g(0),
                max: g(8),
                sum: g(16),
                count: u64::from_le_bytes(out[at + 24..at + 32].try_into().unwrap()),
            },
        );
    }
    Ok(GlobalStats { bounds, fields })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vizkit::controller::DummyComm;
    use vizkit::data::{CellType, DataArray, ImageData};

    fn sphere_block(n: usize, offset: [f32; 3]) -> DataSet {
        let mut g = ImageData::new([n, n, n]);
        g.origin = offset;
        let c = (n - 1) as f32 / 2.0;
        let mut vals = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let d = vec3(i as f32 - c, j as f32 - c, k as f32 - c).length();
                    vals.push(c - d); // positive inside a sphere
                }
            }
        }
        g.point_data.set("v", DataArray::F32(vals));
        DataSet::Image(g)
    }

    fn voxel_block(value: f32) -> DataSet {
        let mut g = UnstructuredGrid::new();
        for k in 0..2u32 {
            for j in 0..2u32 {
                for i in 0..2u32 {
                    g.points.push([i as f32 * 4.0, j as f32 * 4.0, k as f32 * 4.0]);
                }
            }
        }
        g.add_cell(CellType::Voxel, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g.cell_data.set("v02", DataArray::F32(vec![value]));
        DataSet::UGrid(g)
    }

    fn serial_ctrl() -> Controller {
        Controller::new(Arc::new(DummyComm))
    }

    fn surface_script() -> PipelineScript {
        PipelineScript {
            filters: vec![FilterSpec::Contour {
                field: "v".to_string(),
                isovalues: vec![1.0],
            }],
            render: crate::script::RenderSpec {
                mode: RenderMode::Surface,
                width: 48,
                height: 48,
                field: Some("v".to_string()),
                colormap: "viridis".to_string(),
                range: None,
                max_opacity: 0.7,
                resample_dims: [16, 16, 16],
                adaptive_resample: false,
                strategy: Default::default(),
                camera: None,
            },
            triggers: Vec::new(),
        }
    }

    #[test]
    fn serial_surface_pipeline_renders() {
        let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
        let img = pipe
            .execute(&[sphere_block(12, [0.0; 3])], &serial_ctrl())
            .unwrap()
            .unwrap();
        assert!(img.coverage() > 0.02, "coverage {}", img.coverage());
    }

    #[test]
    fn serial_volume_pipeline_renders() {
        let pipe = CatalystPipeline::new(
            PipelineScript::deep_water_impact(32, 32),
            CatalystConfig::default(),
        );
        let img = pipe
            .execute(&[voxel_block(5.0)], &serial_ctrl())
            .unwrap()
            .unwrap();
        assert!(img.coverage() > 0.01, "coverage {}", img.coverage());
    }

    #[test]
    fn empty_blocks_render_background() {
        let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
        let img = pipe.execute(&[], &serial_ctrl()).unwrap().unwrap();
        assert_eq!(img.coverage(), 0.0);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
        // Contour expects ImageData; feed it an unstructured block.
        let err = pipe
            .execute(&[voxel_block(1.0)], &serial_ctrl())
            .unwrap_err();
        assert!(err.contains("cannot apply"), "{err}");
    }

    #[test]
    fn parallel_surface_matches_serial_union() {
        // Two ranks each hold half of the data; the composited image must
        // show geometry from both.
        let script = PipelineScript {
            filters: vec![FilterSpec::Contour {
                field: "v".to_string(),
                isovalues: vec![1.0],
            }],
            render: crate::script::RenderSpec {
                camera: Some(crate::script::CameraSpec {
                    position: [30.0, 24.0, 36.0],
                    focal_point: [8.0, 4.0, 4.0],
                    up: [0.0, 0.0, 1.0],
                    fovy_deg: 45.0,
                }),
                ..surface_script().render
            },
            triggers: Vec::new(),
        };
        let out = mona::testing::with_comm(2, mona::MonaConfig::default(), move |comm| {
            let vtk = crate::adapters::MonaVtkComm::new(comm);
            let rank = vizkit::VtkComm::rank(vtk.as_ref());
            let ctrl = Controller::new(vtk);
            let pipe = CatalystPipeline::new(script.clone(), CatalystConfig::default());
            let offset = [rank as f32 * 11.0, 0.0, 0.0];
            let img = pipe.execute(&[sphere_block(10, offset)], &ctrl).unwrap();
            img.map(|i| i.coverage())
        });
        let root_cov = out[0].unwrap();
        assert!(out[1].is_none());
        assert!(root_cov > 0.01, "root coverage {root_cov}");
    }

    #[test]
    fn first_execute_charges_init_cost() {
        let cluster = hpcsim::Cluster::default();
        let cov = cluster
            .spawn("cat", 0, || {
                let pipe = CatalystPipeline::new(surface_script(), CatalystConfig::default());
                let before = hpcsim::current().now();
                pipe.execute(&[sphere_block(8, [0.0; 3])], &serial_ctrl())
                    .unwrap();
                let first = hpcsim::current().now() - before;
                let before = hpcsim::current().now();
                pipe.execute(&[sphere_block(8, [0.0; 3])], &serial_ctrl())
                    .unwrap();
                let second = hpcsim::current().now() - before;
                (first, second)
            })
            .join();
        let (first, second) = cov;
        assert!(
            first > second + 2 * hpcsim::SEC,
            "init cost missing: {first} vs {second}"
        );
    }

    #[test]
    fn fused_stats_single_payload_roundtrip() {
        // Serial allreduce: globals equal the locals, bounds included.
        let mut local = BTreeMap::new();
        local.insert(
            "a".to_string(),
            ArrayStats {
                min: -1.0,
                max: 4.0,
                sum: 6.0,
                count: 3,
            },
        );
        local.insert("b".to_string(), ArrayStats::empty());
        let ctrl = serial_ctrl();
        let g = global_stats(
            &ctrl,
            Some((vec3(0.0, -1.0, 2.0), vec3(3.0, 4.0, 5.0))),
            &local,
        )
        .unwrap();
        assert_eq!(g.bounds, (vec3(0.0, -1.0, 2.0), vec3(3.0, 4.0, 5.0)));
        assert_eq!(g.fields["a"], local["a"]);
        assert!(g.fields["b"].is_empty());
        assert_eq!(g.field_range(Some("a")), (-1.0, 4.0));
        // Absent/empty fields fall back to the historic (0, 1).
        assert_eq!(g.field_range(Some("b")), (0.0, 1.0));
        assert_eq!(g.field_range(None), (0.0, 1.0));
        // All-empty bounds fall back to the unit box.
        let g = global_stats(&ctrl, None, &BTreeMap::new()).unwrap();
        assert_eq!(g.bounds, (vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0)));
    }

    #[test]
    fn triggered_skip_returns_outcome_without_init_cost() {
        let cluster = hpcsim::Cluster::default();
        let (skip_ns, first_run_ns) = cluster
            .spawn("cat", 0, || {
                let pipe = CatalystPipeline::new(
                    PipelineScript::deep_water_impact_triggered(24, 24),
                    CatalystConfig::default(),
                );
                // Iteration 0, quiescent data: jet threshold not met and
                // iter % 4 != 1 — the run gate defaults to skip.
                let before = hpcsim::current().now();
                let out = pipe
                    .execute_reactive(&[voxel_block(0.5)], &serial_ctrl(), 0)
                    .unwrap();
                assert!(out.skipped && out.image.is_none());
                assert!(!pipe.is_initialized(), "skip must not pay catalyst init");
                let skip_ns = hpcsim::current().now() - before;
                // Iteration 1 matches the keyframe cadence: runs, pays init.
                let before = hpcsim::current().now();
                let out = pipe
                    .execute_reactive(&[voxel_block(0.5)], &serial_ctrl(), 1)
                    .unwrap();
                assert!(!out.skipped && out.image.is_some());
                (skip_ns, hpcsim::current().now() - before)
            })
            .join();
        assert!(
            first_run_ns > skip_ns + 2 * hpcsim::SEC,
            "skip {skip_ns} vs run {first_run_ns}"
        );
    }

    #[test]
    fn triggered_run_fires_on_jet_velocity() {
        let pipe = CatalystPipeline::new(
            PipelineScript::deep_water_impact_triggered(24, 24),
            CatalystConfig::default(),
        );
        // Iteration 2 misses the cadence, but the jet velocity exceeds
        // the threshold, so the run gate and the range reparam both fire.
        let out = pipe
            .execute_reactive(&[voxel_block(5.0)], &serial_ctrl(), 2)
            .unwrap();
        assert!(!out.skipped && out.image.is_some());
    }

    #[test]
    fn contour_reparam_retargets_isovalue() {
        // The scripted isovalue (way above the data) extracts nothing;
        // the trigger retargets it to the live mean, which does.
        let mut script = surface_script();
        script.filters = vec![FilterSpec::Contour {
            field: "v".to_string(),
            isovalues: vec![1e9],
        }];
        script.triggers = vec![crate::trigger::TriggerSpec::new(
            "max(v) > 0",
            "contour(v, mean(v))",
        )];
        let pipe = CatalystPipeline::new(script, CatalystConfig::default());
        let out = pipe
            .execute_reactive(&[sphere_block(12, [0.0; 3])], &serial_ctrl(), 0)
            .unwrap();
        let cov = out.image.unwrap().coverage();
        assert!(cov > 0.02, "reparam contour coverage {cov}");
    }
}
