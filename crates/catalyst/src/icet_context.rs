//! The `vtkIceTContext` converter factory.
//!
//! Stock ParaView builds its `IceTCommunicator` by *downcasting* the
//! active `vtkCommunicator` to `vtkMPICommunicator` and extracting the raw
//! `MPI_Comm` — which makes any non-MPI controller fail. The paper's
//! ParaView patch adds a registry of factory functions keyed by controller
//! kind; this module is that registry. `mona` and `mpi` converters are
//! pre-registered; asking for an unknown kind reproduces stock ParaView's
//! failure mode with a useful error.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use icet::IceTComm;
use vizkit::VtkComm;

/// A converter from an abstract controller to an IceT communicator.
pub type Converter = Arc<dyn Fn(&Arc<dyn VtkComm>) -> Arc<dyn IceTComm> + Send + Sync>;

static REGISTRY: RwLock<Option<HashMap<&'static str, Converter>>> = RwLock::new(None);

/// Registers (or replaces) the converter for a controller kind.
pub fn register_converter(kind: &'static str, conv: Converter) {
    REGISTRY
        .write()
        .get_or_insert_with(HashMap::new)
        .insert(kind, conv);
}

/// Converts a controller's communicator for IceT use.
///
/// Fails for kinds with no registered converter — the behavior stock
/// ParaView has for anything that is not `vtkMPICommunicator`.
pub fn icet_comm_for(comm: &Arc<dyn VtkComm>) -> Result<Arc<dyn IceTComm>, String> {
    ensure_defaults();
    let reg = REGISTRY.read();
    let conv = reg
        .as_ref()
        .and_then(|r| r.get(comm.kind()))
        .cloned()
        .ok_or_else(|| {
            format!(
                "no IceT converter registered for communicator kind {:?} \
                 (stock ParaView only supports \"mpi\")",
                comm.kind()
            )
        })?;
    Ok(conv(comm))
}

/// Pre-registers the converters this reproduction ships: `mona` and `mpi`
/// both wrap the abstract communicator in a p2p adapter.
fn ensure_defaults() {
    let mut reg = REGISTRY.write();
    let reg = reg.get_or_insert_with(HashMap::new);
    for kind in ["mona", "mpi", "dummy"] {
        reg.entry(kind).or_insert_with(|| {
            Arc::new(|comm: &Arc<dyn VtkComm>| {
                Arc::new(VtkAsIceT {
                    comm: Arc::clone(comm),
                }) as Arc<dyn IceTComm>
            })
        });
    }
}

/// IceT communicator backed by the abstract controller's p2p primitives.
struct VtkAsIceT {
    comm: Arc<dyn VtkComm>,
}

impl IceTComm for VtkAsIceT {
    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<(), String> {
        // IceT traffic gets its own tag window above VTK's.
        self.comm.send(data, dst, 0x4000 | tag)
    }

    fn recv(&self, src: usize, tag: u16) -> Result<Vec<u8>, String> {
        self.comm.recv(src, 0x4000 | tag)
    }

    fn reduce_pixels(&self, data: &[u8], root: usize) -> Option<Result<Option<Vec<u8>>, String>> {
        // Route IceT's tree compositing through the controller's native
        // reduce: MoNA runs its pipelined binomial tree (chunked above the
        // pipeline threshold), MPI its profile-selected algorithm —
        // instead of serializing whole images over p2p edges.
        Some(self.comm.reduce(data, &icet::pixels::fold_closest, root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizkit::controller::DummyComm;

    struct FakeComm;
    impl VtkComm for FakeComm {
        fn rank(&self) -> usize {
            0
        }
        fn size(&self) -> usize {
            1
        }
        fn kind(&self) -> &'static str {
            "visit-libsim"
        }
        fn send(&self, _: &[u8], _: usize, _: u16) -> Result<(), String> {
            unreachable!()
        }
        fn recv(&self, _: usize, _: u16) -> Result<Vec<u8>, String> {
            unreachable!()
        }
        fn bcast(&self, _: Option<&[u8]>, _: usize) -> Result<Vec<u8>, String> {
            unreachable!()
        }
        fn reduce(
            &self,
            _: &[u8],
            _: &(dyn Fn(&mut [u8], &[u8]) + Sync),
            _: usize,
        ) -> Result<Option<Vec<u8>>, String> {
            unreachable!()
        }
        fn gather(&self, _: &[u8], _: usize) -> Result<Option<Vec<Vec<u8>>>, String> {
            unreachable!()
        }
        fn barrier(&self) -> Result<(), String> {
            unreachable!()
        }
    }

    #[test]
    fn known_kinds_convert() {
        let comm: Arc<dyn VtkComm> = Arc::new(DummyComm);
        let icet = icet_comm_for(&comm).unwrap();
        assert_eq!(icet.rank(), 0);
        assert_eq!(icet.size(), 1);
    }

    struct UnknownComm;
    impl VtkComm for UnknownComm {
        fn rank(&self) -> usize {
            0
        }
        fn size(&self) -> usize {
            1
        }
        fn kind(&self) -> &'static str {
            "never-registered"
        }
        fn send(&self, _: &[u8], _: usize, _: u16) -> Result<(), String> {
            unreachable!()
        }
        fn recv(&self, _: usize, _: u16) -> Result<Vec<u8>, String> {
            unreachable!()
        }
        fn bcast(&self, _: Option<&[u8]>, _: usize) -> Result<Vec<u8>, String> {
            unreachable!()
        }
        fn reduce(
            &self,
            _: &[u8],
            _: &(dyn Fn(&mut [u8], &[u8]) + Sync),
            _: usize,
        ) -> Result<Option<Vec<u8>>, String> {
            unreachable!()
        }
        fn gather(&self, _: &[u8], _: usize) -> Result<Option<Vec<Vec<u8>>>, String> {
            unreachable!()
        }
        fn barrier(&self) -> Result<(), String> {
            unreachable!()
        }
    }

    #[test]
    fn unknown_kind_fails_like_stock_paraview() {
        let comm: Arc<dyn VtkComm> = Arc::new(UnknownComm);
        let err = match icet_comm_for(&comm) {
            Err(e) => e,
            Ok(_) => panic!("unknown kind must fail"),
        };
        assert!(err.contains("never-registered"), "{err}");
    }

    #[test]
    fn registering_a_converter_enables_the_kind() {
        let comm: Arc<dyn VtkComm> = Arc::new(FakeComm);
        register_converter(
            "visit-libsim",
            Arc::new(|c: &Arc<dyn VtkComm>| {
                Arc::new(VtkAsIceT {
                    comm: Arc::clone(c),
                }) as Arc<dyn IceTComm>
            }),
        );
        assert!(icet_comm_for(&comm).is_ok());
    }
}
