//! Reactive triggers: a small declarative expression language that gates
//! and re-parameterizes pipeline execution from live data statistics
//! (the DIVA model — DESIGN.md §15).
//!
//! A pipeline script may carry `triggers`, each a `when` predicate and an
//! `action`:
//!
//! ```json
//! {"triggers": [
//!     {"when": "max(v02) > 3.2 || iter % 4 == 0", "action": "run"},
//!     {"when": "delta(max(v02)) < 0.01",          "action": "skip"},
//!     {"when": "max(v02) > 3.2", "action": "range(min(v02), max(v02))"}
//! ]}
//! ```
//!
//! Predicates combine comparisons with `&&`/`||`/`!` over arithmetic on
//! `iter` (the iteration number), numeric literals, the data terms
//! `min(field)`, `max(field)`, `range(field)`, `mean(field)`, and
//! `delta(expr)` — the absolute change of `expr` since the last evaluated
//! iteration. The data terms come from **one fused stats allreduce**, so
//! every rank evaluates the same inputs and reaches the same decision;
//! the whole language is a pure function of `(script, staged data, iter)`
//! and same-seed traces stay byte-identical.
//!
//! Actions: `run` and `skip` gate the pipeline (last fired gate wins; the
//! default is *skip* when any `run` trigger exists, *run* otherwise), and
//! the re-parameterization actions `contour(field, expr)`,
//! `range(lo, hi)` and `camera(zoom)` adapt the stages of the iterations
//! that do run.

use std::collections::BTreeMap;
use std::fmt;

pub use vizkit::data::ArrayStats as FieldStats;

/// One trigger as it appears in the pipeline script JSON.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TriggerSpec {
    /// Boolean predicate source text.
    pub when: String,
    /// Action source text: `run`, `skip`, `contour(field, expr)`,
    /// `range(lo, hi)` or `camera(zoom)`.
    pub action: String,
}

impl TriggerSpec {
    /// Convenience constructor.
    pub fn new(when: impl Into<String>, action: impl Into<String>) -> Self {
        TriggerSpec {
            when: when.into(),
            action: action.into(),
        }
    }
}

/// A typed parse/compile failure: where in the source text, and why.
/// Malformed trigger scripts always surface as this — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the offending source string.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trigger parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A typed evaluation failure. Inputs are global (the fused reduction),
/// so when one rank fails this way, all ranks fail identically.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A data term referenced a field no staged block carries (global
    /// count is zero).
    FieldUnavailable(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::FieldUnavailable(n) => {
                write!(f, "trigger field {n:?} is absent from the staged data")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The statistic a data term extracts from a field's fused summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatFn {
    /// Global minimum.
    Min,
    /// Global maximum.
    Max,
    /// `max - min`.
    Range,
    /// Global arithmetic mean (from the fused sum + count).
    Mean,
}

impl StatFn {
    fn name(self) -> &'static str {
        match self {
            StatFn::Min => "min",
            StatFn::Max => "max",
            StatFn::Range => "range",
            StatFn::Mean => "mean",
        }
    }
}

/// Binary operators, loosest-binding first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or.
    Or,
    /// Logical and.
    And,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical not.
    Not,
}

/// A parsed trigger expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// The iteration number.
    Iter,
    /// A data term: `min(f)`, `max(f)`, `range(f)`, `mean(f)`.
    Stat(StatFn, String),
    /// Absolute change of the inner expression since the last evaluated
    /// iteration (`+inf` on the first evaluation, so a `delta`-skip rule
    /// can never suppress the very first iteration).
    Delta(Box<Expr>),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl fmt::Display for Expr {
    /// Canonical, fully parenthesized form — also the `delta` memory key,
    /// so structurally identical sub-expressions share one slot.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Iter => write!(f, "iter"),
            Expr::Stat(s, field) => write!(f, "{}({field})", s.name()),
            Expr::Delta(e) => write!(f, "delta({e})"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(!{e})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

/// Static type of an expression: trigger predicates must be `Bool`,
/// re-parameterization arguments must be `Num`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A number.
    Num,
    /// A truth value.
    Bool,
}

impl Expr {
    /// Type-checks the expression; `Err` carries the offending
    /// sub-expression in canonical form.
    pub fn type_of(&self) -> Result<Ty, String> {
        match self {
            Expr::Num(_) | Expr::Iter | Expr::Stat(..) => Ok(Ty::Num),
            Expr::Delta(e) => match e.type_of()? {
                Ty::Num => Ok(Ty::Num),
                Ty::Bool => Err(format!("delta needs a numeric argument in {self}")),
            },
            Expr::Unary(UnOp::Neg, e) => match e.type_of()? {
                Ty::Num => Ok(Ty::Num),
                Ty::Bool => Err(format!("unary '-' needs a number in {self}")),
            },
            Expr::Unary(UnOp::Not, e) => match e.type_of()? {
                Ty::Bool => Ok(Ty::Bool),
                Ty::Num => Err(format!("'!' needs a boolean in {self}")),
            },
            Expr::Binary(op, a, b) => {
                let (ta, tb) = (a.type_of()?, b.type_of()?);
                match op {
                    BinOp::Or | BinOp::And => {
                        if ta == Ty::Bool && tb == Ty::Bool {
                            Ok(Ty::Bool)
                        } else {
                            Err(format!("'{}' needs boolean operands in {self}", op.symbol()))
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        if ta == Ty::Num && tb == Ty::Num {
                            Ok(Ty::Bool)
                        } else {
                            Err(format!("'{}' compares numbers in {self}", op.symbol()))
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        if ta == Ty::Num && tb == Ty::Num {
                            Ok(Ty::Num)
                        } else {
                            Err(format!(
                                "'{}' needs numeric operands in {self}",
                                op.symbol()
                            ))
                        }
                    }
                }
            }
        }
    }

    /// Collects every field name referenced by a data term, in sorted
    /// order — the agreed layout of the fused stats allreduce.
    pub fn collect_fields(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Num(_) | Expr::Iter => {}
            Expr::Stat(_, f) => {
                out.insert(f.clone());
            }
            Expr::Delta(e) | Expr::Unary(_, e) => e.collect_fields(out),
            Expr::Binary(_, a, b) => {
                a.collect_fields(out);
                b.collect_fields(out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    LParen,
    RParen,
    Comma,
    Op(&'static str),
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '+' | '-' | '*' | '/' | '%' => {
                toks.push((i, Tok::Op(match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    _ => "%",
                })));
                i += 1;
            }
            '|' | '&' => {
                if i + 1 < b.len() && b[i + 1] == b[i] {
                    toks.push((i, Tok::Op(if c == '|' { "||" } else { "&&" })));
                    i += 2;
                } else {
                    return Err(ParseError {
                        pos: i,
                        msg: format!("expected '{c}{c}'"),
                    });
                }
            }
            '<' | '>' | '=' | '!' => {
                let two = i + 1 < b.len() && b[i + 1] == b'=';
                let sym = match (c, two) {
                    ('<', true) => "<=",
                    ('<', false) => "<",
                    ('>', true) => ">=",
                    ('>', false) => ">",
                    ('=', true) => "==",
                    ('!', true) => "!=",
                    ('!', false) => "!",
                    ('=', false) => {
                        return Err(ParseError {
                            pos: i,
                            msg: "'=' is not an operator; use '=='".to_string(),
                        })
                    }
                    _ => unreachable!(),
                };
                toks.push((i, Tok::Op(sym)));
                i += if two { 2 } else { 1 };
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                // Optional exponent.
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| ParseError {
                    pos: start,
                    msg: format!("malformed number {text:?}"),
                })?;
                if !n.is_finite() {
                    return Err(ParseError {
                        pos: start,
                        msg: format!("non-finite literal {text:?}"),
                    });
                }
                toks.push((start, Tok::Num(n)));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push((start, Tok::Ident(src[start..i].to_string())));
            }
            _ => {
                return Err(ParseError {
                    pos: i,
                    msg: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser (recursive descent; precedence: || < && < cmp < +- < */% < unary)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [(usize, Tok)],
    pos: usize,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(p, _)| p)
            .unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_op(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                pos: self.here(),
                msg: format!("expected {what}"),
            })
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.here(),
            msg: msg.into(),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_op("||") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_op("&&") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Op("<")) => Some(BinOp::Lt),
            Some(Tok::Op("<=")) => Some(BinOp::Le),
            Some(Tok::Op(">")) => Some(BinOp::Gt),
            Some(Tok::Op(">=")) => Some(BinOp::Ge),
            Some(Tok::Op("==")) => Some(BinOp::Eq),
            Some(Tok::Op("!=")) => Some(BinOp::Ne),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.parse_add()?;
                // Comparisons do not chain: `a < b < c` is a type error
                // caught by the checker, not silently associated.
                Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
            }
            None => Ok(lhs),
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("+")) => BinOp::Add,
                Some(Tok::Op("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("*")) => BinOp::Mul,
                Some(Tok::Op("/")) => BinOp::Div,
                Some(Tok::Op("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_op("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat_op("!") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "iter" => Ok(Expr::Iter),
                "delta" => {
                    self.expect(&Tok::LParen, "'(' after delta")?;
                    let e = self.parse_expr()?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::Delta(Box::new(e)))
                }
                "min" | "max" | "range" | "mean" => {
                    let stat = match name.as_str() {
                        "min" => StatFn::Min,
                        "max" => StatFn::Max,
                        "range" => StatFn::Range,
                        _ => StatFn::Mean,
                    };
                    self.expect(&Tok::LParen, &format!("'(' after {name}"))?;
                    let field = match self.bump() {
                        Some(Tok::Ident(f)) => f,
                        _ => {
                            self.pos -= 1;
                            return Err(self.err(format!("{name}(...) needs a field name")));
                        }
                    };
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::Stat(stat, field))
                }
                other => {
                    self.pos -= 1;
                    Err(self.err(format!(
                        "unknown identifier {other:?} (fields only appear inside \
                         min/max/range/mean)"
                    )))
                }
            },
            Some(tok) => {
                self.pos -= 1;
                Err(self.err(format!("unexpected token {tok:?}")))
            }
            None => Err(self.err("unexpected end of expression")),
        }
    }
}

/// Parses one expression, requiring all input consumed.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        end: src.len(),
    };
    let e = p.parse_expr()?;
    if p.pos != toks.len() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

/// Parses and type-checks a `when` predicate (must be boolean).
pub fn parse_predicate(src: &str) -> Result<Expr, ParseError> {
    let e = parse_expr(src)?;
    match e.type_of().map_err(|msg| ParseError { pos: 0, msg })? {
        Ty::Bool => Ok(e),
        Ty::Num => Err(ParseError {
            pos: 0,
            msg: format!("'when' must be a boolean predicate, got a number: {e}"),
        }),
    }
}

fn parse_numeric_arg(src: &str) -> Result<Expr, ParseError> {
    let e = parse_expr(src)?;
    match e.type_of().map_err(|msg| ParseError { pos: 0, msg })? {
        Ty::Num => Ok(e),
        Ty::Bool => Err(ParseError {
            pos: 0,
            msg: format!("action argument must be numeric, got a boolean: {e}"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

/// A compiled trigger action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Gate: execute the pipeline this iteration.
    Run,
    /// Gate: skip the pipeline this iteration.
    Skip,
    /// Re-parameterize: replace the isovalues of the contour filter on
    /// `field` with the value of `expr` (e.g. track the live mean).
    Contour {
        /// Contour filter field to retarget.
        field: String,
        /// New isovalue.
        value: Expr,
    },
    /// Re-parameterize: override the render color range with `[lo, hi]`
    /// (e.g. the live `min`/`max` of the colored field).
    Range {
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
    },
    /// Re-parameterize: scale the bounds-fitted camera distance by
    /// `1/zoom` (zoom > 1 moves the eye closer to the feature bounds).
    Camera {
        /// Zoom factor.
        zoom: Expr,
    },
}

/// Parses an action string.
pub fn parse_action(src: &str) -> Result<Action, ParseError> {
    let t = src.trim();
    if t == "run" {
        return Ok(Action::Run);
    }
    if t == "skip" {
        return Ok(Action::Skip);
    }
    let (head, rest) = match t.find('(') {
        Some(i) if t.ends_with(')') => (&t[..i], &t[i + 1..t.len() - 1]),
        _ => {
            return Err(ParseError {
                pos: 0,
                msg: format!(
                    "unknown action {t:?} (expected run, skip, contour(field, expr), \
                     range(lo, hi) or camera(zoom))"
                ),
            })
        }
    };
    // Split top-level commas (argument expressions may contain their own
    // commas only inside parens).
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1).ok_or(ParseError {
                    pos: i,
                    msg: "unbalanced ')' in action arguments".to_string(),
                })?
            }
            ',' if depth == 0 => {
                args.push(&rest[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    args.push(&rest[start..]);
    match head.trim() {
        "contour" => {
            if args.len() != 2 {
                return Err(ParseError {
                    pos: 0,
                    msg: "contour takes (field, expr)".to_string(),
                });
            }
            let field = args[0].trim();
            if field.is_empty()
                || !field
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                return Err(ParseError {
                    pos: 0,
                    msg: format!("bad contour field name {:?}", args[0].trim()),
                });
            }
            Ok(Action::Contour {
                field: field.to_string(),
                value: parse_numeric_arg(args[1])?,
            })
        }
        "range" => {
            if args.len() != 2 {
                return Err(ParseError {
                    pos: 0,
                    msg: "range takes (lo, hi)".to_string(),
                });
            }
            Ok(Action::Range {
                lo: parse_numeric_arg(args[0])?,
                hi: parse_numeric_arg(args[1])?,
            })
        }
        "camera" => {
            if args.len() != 1 {
                return Err(ParseError {
                    pos: 0,
                    msg: "camera takes (zoom)".to_string(),
                });
            }
            Ok(Action::Camera {
                zoom: parse_numeric_arg(args[0])?,
            })
        }
        other => Err(ParseError {
            pos: 0,
            msg: format!("unknown action {other:?}"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// One `delta` memory slot. Keeping both the previous and the current
/// value (with the iteration that wrote it) makes re-evaluation of the
/// *same* iteration idempotent: an execute retried after a mid-iteration
/// abort recomputes the delta against the same base and reaches the same
/// decision — on every survivor, whether or not its first attempt got as
/// far as evaluating (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq)]
struct DeltaSlot {
    prev: Option<f64>,
    cur: f64,
    iter: u64,
}

/// Per-pipeline `delta` history, keyed by the canonical form of the
/// inner expression. Deterministic: it only ever holds values computed
/// from fused global statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriggerState {
    memory: BTreeMap<String, DeltaSlot>,
}

impl TriggerState {
    /// Fresh, empty history.
    pub fn new() -> Self {
        Self::default()
    }
}

struct EvalCtx<'a> {
    iter: u64,
    fields: &'a BTreeMap<String, FieldStats>,
    state: &'a mut TriggerState,
}

fn eval_num(e: &Expr, cx: &mut EvalCtx<'_>) -> Result<f64, EvalError> {
    Ok(match e {
        Expr::Num(n) => *n,
        Expr::Iter => cx.iter as f64,
        Expr::Stat(stat, field) => {
            let s = cx
                .fields
                .get(field)
                .copied()
                .unwrap_or_else(FieldStats::empty);
            if s.is_empty() {
                return Err(EvalError::FieldUnavailable(field.clone()));
            }
            match stat {
                StatFn::Min => s.min,
                StatFn::Max => s.max,
                StatFn::Range => s.range(),
                StatFn::Mean => s.mean(),
            }
        }
        Expr::Delta(inner) => {
            let cur = eval_num(inner, cx)?;
            let key = inner.to_string();
            let slot = cx.state.memory.get(&key).copied();
            let (base, prev) = match slot {
                // Re-evaluating the iteration that last wrote the slot:
                // diff against the value before it.
                Some(s) if s.iter == cx.iter => (s.prev, s.prev),
                Some(s) => (Some(s.cur), Some(s.cur)),
                None => (None, None),
            };
            cx.state.memory.insert(
                key,
                DeltaSlot {
                    prev,
                    cur,
                    iter: cx.iter,
                },
            );
            match base {
                Some(b) => (cur - b).abs(),
                None => f64::INFINITY,
            }
        }
        Expr::Unary(UnOp::Neg, inner) => -eval_num(inner, cx)?,
        Expr::Unary(UnOp::Not, _) => unreachable!("type checker rejects"),
        Expr::Binary(op, a, b) => {
            let (x, y) = (eval_num(a, cx)?, eval_num(b, cx)?);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!("type checker rejects"),
            }
        }
    })
}

fn eval_bool(e: &Expr, cx: &mut EvalCtx<'_>) -> Result<bool, EvalError> {
    Ok(match e {
        Expr::Unary(UnOp::Not, inner) => !eval_bool(inner, cx)?,
        Expr::Binary(BinOp::And, a, b) => {
            // No short-circuit: both sides always evaluate so `delta`
            // memories advance identically regardless of outcome.
            let (x, y) = (eval_bool(a, cx)?, eval_bool(b, cx)?);
            x && y
        }
        Expr::Binary(BinOp::Or, a, b) => {
            let (x, y) = (eval_bool(a, cx)?, eval_bool(b, cx)?);
            x || y
        }
        Expr::Binary(op, a, b) => {
            let (x, y) = (eval_num(a, cx)?, eval_num(b, cx)?);
            match op {
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                _ => unreachable!("type checker rejects"),
            }
        }
        _ => unreachable!("type checker rejects"),
    })
}

/// Evaluates a type-checked expression. Public so oracle tests can drive
/// single expressions; pipelines go through [`TriggerProgram::evaluate`].
pub fn evaluate(
    e: &Expr,
    iter: u64,
    fields: &BTreeMap<String, FieldStats>,
    state: &mut TriggerState,
) -> Result<Value, EvalError> {
    let mut cx = EvalCtx {
        iter,
        fields,
        state,
    };
    match e.type_of() {
        Ok(Ty::Bool) => eval_bool(e, &mut cx).map(Value::Bool),
        _ => eval_num(e, &mut cx).map(Value::Num),
    }
}

/// An evaluated expression value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A number.
    Num(f64),
    /// A truth value.
    Bool(bool),
}

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

/// One compiled trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// Compiled predicate.
    pub when: Expr,
    /// Compiled action.
    pub action: Action,
}

/// A resolved re-parameterization, produced by a fired trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum Reparam {
    /// Replace the contour isovalue on `field`.
    Contour {
        /// Filter field.
        field: String,
        /// Resolved isovalue.
        value: f64,
    },
    /// Override the render color range.
    Range {
        /// Resolved bounds.
        lo: f32,
        /// Resolved upper bound.
        hi: f32,
    },
    /// Scale the fitted camera distance by `1/zoom`.
    CameraZoom(f64),
}

/// The decision one evaluation reaches — identical on every rank because
/// the inputs are one global reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Whether the pipeline executes this iteration.
    pub run: bool,
    /// How many triggers fired (their `when` held).
    pub fired: u64,
    /// Re-parameterizations from fired triggers, in trigger order;
    /// applied only when `run`.
    pub reparams: Vec<Reparam>,
}

/// A compiled trigger program: what a [`crate::PipelineScript`]'s
/// `triggers` section becomes at `create_pipeline` time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TriggerProgram {
    triggers: Vec<Trigger>,
    fields: Vec<String>,
    has_run_gate: bool,
}

impl TriggerProgram {
    /// Compiles trigger specs. Any parse or type error is reported with
    /// the index of the offending trigger — typed, never a panic.
    pub fn compile(specs: &[TriggerSpec]) -> Result<Self, ParseError> {
        let mut triggers = Vec::with_capacity(specs.len());
        let mut fields = std::collections::BTreeSet::new();
        for (i, spec) in specs.iter().enumerate() {
            let when = parse_predicate(&spec.when).map_err(|e| ParseError {
                pos: e.pos,
                msg: format!("trigger {i} 'when' {:?}: {}", spec.when, e.msg),
            })?;
            let action = parse_action(&spec.action).map_err(|e| ParseError {
                pos: e.pos,
                msg: format!("trigger {i} 'action' {:?}: {}", spec.action, e.msg),
            })?;
            when.collect_fields(&mut fields);
            match &action {
                Action::Contour { value, .. } => value.collect_fields(&mut fields),
                Action::Range { lo, hi } => {
                    lo.collect_fields(&mut fields);
                    hi.collect_fields(&mut fields);
                }
                Action::Camera { zoom } => zoom.collect_fields(&mut fields),
                Action::Run | Action::Skip => {}
            }
            triggers.push(Trigger { when, action });
        }
        let has_run_gate = triggers.iter().any(|t| t.action == Action::Run);
        Ok(TriggerProgram {
            triggers,
            fields: fields.into_iter().collect(),
            has_run_gate,
        })
    }

    /// Whether the program has no triggers at all.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Every field referenced by any trigger, sorted — the field layout
    /// the fused stats allreduce must carry.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// The compiled triggers.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Evaluates every trigger in order against the fused global
    /// statistics. Gate semantics: the default is *skip* when any `run`
    /// trigger exists (opt-in execution) and *run* otherwise; each fired
    /// `run`/`skip` overrides the current decision, so the last fired
    /// gate wins. Every predicate always evaluates (no short-circuiting
    /// across triggers), so `delta` histories advance identically on
    /// every rank and every iteration; re-parameterization arguments are
    /// resolved only for fired triggers.
    pub fn evaluate(
        &self,
        iter: u64,
        fields: &BTreeMap<String, FieldStats>,
        state: &mut TriggerState,
    ) -> Result<Decision, EvalError> {
        let mut run = !self.has_run_gate;
        let mut fired = 0u64;
        let mut reparams = Vec::new();
        for t in &self.triggers {
            let mut cx = EvalCtx {
                iter,
                fields,
                state,
            };
            let hit = eval_bool(&t.when, &mut cx)?;
            if !hit {
                continue;
            }
            fired += 1;
            match &t.action {
                Action::Run => run = true,
                Action::Skip => run = false,
                Action::Contour { field, value } => {
                    let mut cx = EvalCtx {
                        iter,
                        fields,
                        state,
                    };
                    let v = eval_num(value, &mut cx)?;
                    reparams.push(Reparam::Contour {
                        field: field.clone(),
                        value: v,
                    });
                }
                Action::Range { lo, hi } => {
                    let mut cx = EvalCtx {
                        iter,
                        fields,
                        state,
                    };
                    let l = eval_num(lo, &mut cx)?;
                    let h = eval_num(hi, &mut cx)?;
                    reparams.push(Reparam::Range {
                        lo: l as f32,
                        hi: h as f32,
                    });
                }
                Action::Camera { zoom } => {
                    let mut cx = EvalCtx {
                        iter,
                        fields,
                        state,
                    };
                    let z = eval_num(zoom, &mut cx)?;
                    reparams.push(Reparam::CameraZoom(z));
                }
            }
        }
        Ok(Decision {
            run,
            fired,
            reparams,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(entries: &[(&str, f64, f64, f64, u64)]) -> BTreeMap<String, FieldStats> {
        entries
            .iter()
            .map(|&(n, min, max, sum, count)| {
                (
                    n.to_string(),
                    FieldStats {
                        min,
                        max,
                        sum,
                        count,
                    },
                )
            })
            .collect()
    }

    fn eval_bool_str(src: &str, iter: u64, f: &BTreeMap<String, FieldStats>) -> bool {
        let e = parse_predicate(src).unwrap();
        let mut st = TriggerState::new();
        match evaluate(&e, iter, f, &mut st).unwrap() {
            Value::Bool(b) => b,
            v => panic!("expected bool, got {v:?}"),
        }
    }

    #[test]
    fn precedence_matches_convention() {
        let f = stats(&[("u", 0.0, 1.0, 5.0, 10)]);
        // * binds tighter than +, + tighter than <, < tighter than &&,
        // && tighter than ||.
        assert!(eval_bool_str("1 + 2 * 3 == 7", 0, &f));
        assert!(eval_bool_str("2 * 3 + 1 == 7", 0, &f));
        assert!(eval_bool_str("1 < 2 && 3 < 4 || 5 < 4", 0, &f));
        assert!(eval_bool_str("5 < 4 || 1 < 2 && 3 < 4", 0, &f));
        assert!(!eval_bool_str("5 < 4 && 1 < 2 || 4 < 3", 0, &f));
        assert!(eval_bool_str("-2 * -3 == 6", 0, &f));
        assert!(eval_bool_str("10 % 4 == 2", 0, &f));
        assert!(eval_bool_str("!(1 > 2)", 0, &f));
    }

    #[test]
    fn stat_terms_read_fused_stats() {
        let f = stats(&[("u", -1.0, 3.0, 10.0, 8)]);
        assert!(eval_bool_str("min(u) == -1", 0, &f));
        assert!(eval_bool_str("max(u) == 3", 0, &f));
        assert!(eval_bool_str("range(u) == 4", 0, &f));
        assert!(eval_bool_str("mean(u) == 1.25", 0, &f));
        assert!(eval_bool_str("iter % 4 == 1", 5, &f));
    }

    #[test]
    fn missing_field_is_a_typed_eval_error() {
        let e = parse_predicate("max(nope) > 0").unwrap();
        let mut st = TriggerState::new();
        let err = evaluate(&e, 0, &stats(&[]), &mut st).unwrap_err();
        assert_eq!(err, EvalError::FieldUnavailable("nope".to_string()));
    }

    #[test]
    fn delta_chain_semantics() {
        let e = parse_expr("delta(max(u))").unwrap();
        let mut st = TriggerState::new();
        let at = |v: f64| stats(&[("u", 0.0, v, v, 1)]);
        // First evaluation: no history -> infinite change.
        match evaluate(&e, 1, &at(2.0), &mut st).unwrap() {
            Value::Num(d) => assert_eq!(d, f64::INFINITY),
            v => panic!("{v:?}"),
        }
        // Subsequent evaluations diff against the last evaluated iter.
        match evaluate(&e, 2, &at(2.5), &mut st).unwrap() {
            Value::Num(d) => assert!((d - 0.5).abs() < 1e-12),
            v => panic!("{v:?}"),
        }
        // Skipping iterations of the *simulation* does not matter; the
        // base is the last evaluation, not iter-1.
        match evaluate(&e, 10, &at(4.5), &mut st).unwrap() {
            Value::Num(d) => assert!((d - 2.0).abs() < 1e-12),
            v => panic!("{v:?}"),
        }
        // Re-evaluating the same iteration (abort-and-recover) is
        // idempotent: same base, same delta.
        match evaluate(&e, 10, &at(4.5), &mut st).unwrap() {
            Value::Num(d) => assert!((d - 2.0).abs() < 1e-12),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn malformed_sources_return_typed_errors() {
        for src in [
            "", "1 +", "max(", "max()", "max(u", "(1", "1 = 2", "&& 1", "foo",
            "min(u) +", "1 < 2 < 3", "delta(1 > 2)", "!3", "1 && 2", "iter ^ 2",
            "max(u) @", "min(u,v)", "2..5 > 1", "1e > 0",
        ] {
            assert!(parse_predicate(src).is_err(), "{src:?} should fail");
        }
        // Numeric expressions are not predicates.
        assert!(parse_predicate("1 + 2").is_err());
        assert!(parse_numeric_arg("1 > 2").is_err());
    }

    #[test]
    fn action_grammar() {
        assert_eq!(parse_action("run").unwrap(), Action::Run);
        assert_eq!(parse_action(" skip ").unwrap(), Action::Skip);
        assert!(matches!(
            parse_action("contour(v, mean(v))").unwrap(),
            Action::Contour { .. }
        ));
        assert!(matches!(
            parse_action("range(min(v02), max(v02))").unwrap(),
            Action::Range { .. }
        ));
        assert!(matches!(
            parse_action("camera(1.5)").unwrap(),
            Action::Camera { .. }
        ));
        for bad in [
            "walk", "contour(v)", "contour(1+1, 2)", "range(1)", "camera()",
            "range(1 > 2, 3)", "camera(iter, 2)", "run()", "contour(v, max(v) >)",
        ] {
            assert!(parse_action(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn program_gate_semantics() {
        let f = stats(&[("u", 0.0, 1.0, 5.0, 10)]);
        let mut st = TriggerState::new();
        // With a run gate present the default is skip.
        let p = TriggerProgram::compile(&[TriggerSpec::new("iter % 2 == 0", "run")]).unwrap();
        assert!(p.evaluate(0, &f, &mut st).unwrap().run);
        assert!(!p.evaluate(1, &f, &mut st).unwrap().run);
        // Without one, the default is run and skip rules opt out.
        let p = TriggerProgram::compile(&[TriggerSpec::new("iter % 2 == 1", "skip")]).unwrap();
        assert!(p.evaluate(0, &f, &mut st).unwrap().run);
        assert!(!p.evaluate(1, &f, &mut st).unwrap().run);
        // Last fired gate wins.
        let p = TriggerProgram::compile(&[
            TriggerSpec::new("iter >= 0", "run"),
            TriggerSpec::new("iter == 1", "skip"),
        ])
        .unwrap();
        assert!(p.evaluate(0, &f, &mut st).unwrap().run);
        assert!(!p.evaluate(1, &f, &mut st).unwrap().run);
    }

    #[test]
    fn program_reparams_resolve_from_stats() {
        let f = stats(&[("v", 1.0, 3.0, 8.0, 4)]);
        let mut st = TriggerState::new();
        let p = TriggerProgram::compile(&[
            TriggerSpec::new("max(v) > 2", "contour(v, mean(v))"),
            TriggerSpec::new("max(v) > 2", "range(min(v), max(v))"),
            TriggerSpec::new("max(v) > 100", "camera(2)"),
        ])
        .unwrap();
        assert_eq!(p.fields(), &["v".to_string()]);
        let d = p.evaluate(3, &f, &mut st).unwrap();
        assert!(d.run);
        assert_eq!(d.fired, 2);
        assert_eq!(
            d.reparams,
            vec![
                Reparam::Contour {
                    field: "v".to_string(),
                    value: 2.0
                },
                Reparam::Range { lo: 1.0, hi: 3.0 },
            ]
        );
    }

    #[test]
    fn compile_reports_trigger_index() {
        let err = TriggerProgram::compile(&[
            TriggerSpec::new("iter > 0", "run"),
            TriggerSpec::new("max(", "run"),
        ])
        .unwrap_err();
        assert!(err.msg.contains("trigger 1"), "{err}");
    }

    #[test]
    fn canonical_display_roundtrips() {
        for src in [
            "max(u) > 0.35 && iter % 4 == 0",
            "delta(mean(v02)) < 0.01 || !(min(u) >= -2.5)",
            "-iter * 3 + 1 <= range(f_1) / 2",
        ] {
            let e = parse_expr(src).unwrap();
            let back = parse_expr(&e.to_string()).unwrap();
            assert_eq!(e, back, "{src}");
        }
    }
}
