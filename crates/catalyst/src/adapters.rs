//! Controller adapters: `vtkMonaController` / `vtkMPIController`.

use std::sync::Arc;

use vizkit::VtkComm;

/// A `VtkComm` backed by a MoNA communicator (the paper's
/// `vtkMonaCommunicator`/`vtkMonaController`).
pub struct MonaVtkComm {
    comm: mona::Communicator,
}

impl MonaVtkComm {
    /// Wraps a MoNA communicator.
    pub fn new(comm: mona::Communicator) -> Arc<Self> {
        Arc::new(Self { comm })
    }

    /// The underlying communicator.
    pub fn inner(&self) -> &mona::Communicator {
        &self.comm
    }
}

impl VtkComm for MonaVtkComm {
    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn kind(&self) -> &'static str {
        "mona"
    }

    fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<(), String> {
        self.comm.send(data, dst, tag).map_err(|e| e.to_string())
    }

    fn recv(&self, src: usize, tag: u16) -> Result<Vec<u8>, String> {
        self.comm
            .recv(src, tag)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }

    fn bcast(&self, data: Option<&[u8]>, root: usize) -> Result<Vec<u8>, String> {
        self.comm
            .bcast(data, root)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }

    fn reduce(
        &self,
        data: &[u8],
        op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
        root: usize,
    ) -> Result<Option<Vec<u8>>, String> {
        self.comm.reduce(data, &op, root).map_err(|e| e.to_string())
    }

    fn gather(&self, data: &[u8], root: usize) -> Result<Option<Vec<Vec<u8>>>, String> {
        self.comm
            .gather(data, root)
            .map(|o| o.map(|parts| parts.iter().map(|p| p.to_vec()).collect()))
            .map_err(|e| e.to_string())
    }

    fn barrier(&self) -> Result<(), String> {
        self.comm.barrier().map_err(|e| e.to_string())
    }

    fn allreduce(
        &self,
        data: &[u8],
        op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
    ) -> Result<Vec<u8>, String> {
        // Native single-collective allreduce: MoNA picks Rabenseifner or a
        // pipelined tree by size, instead of the default reduce+bcast pair.
        self.comm
            .allreduce(data, &op)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }
}

/// A `VtkComm` backed by a minimpi communicator (`vtkMPIController`).
pub struct MpiVtkComm {
    comm: minimpi::MpiComm,
}

impl MpiVtkComm {
    /// Wraps an MPI communicator.
    pub fn new(comm: minimpi::MpiComm) -> Arc<Self> {
        Arc::new(Self { comm })
    }

    /// The underlying communicator.
    pub fn inner(&self) -> &minimpi::MpiComm {
        &self.comm
    }
}

impl VtkComm for MpiVtkComm {
    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn kind(&self) -> &'static str {
        "mpi"
    }

    fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<(), String> {
        self.comm.send(data, dst, tag).map_err(|e| e.to_string())
    }

    fn recv(&self, src: usize, tag: u16) -> Result<Vec<u8>, String> {
        self.comm
            .recv(src, tag)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }

    fn bcast(&self, data: Option<&[u8]>, root: usize) -> Result<Vec<u8>, String> {
        self.comm
            .bcast(data, root)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }

    fn reduce(
        &self,
        data: &[u8],
        op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
        root: usize,
    ) -> Result<Option<Vec<u8>>, String> {
        self.comm.reduce(data, &op, root).map_err(|e| e.to_string())
    }

    fn gather(&self, data: &[u8], root: usize) -> Result<Option<Vec<Vec<u8>>>, String> {
        self.comm
            .gather(data, root)
            .map(|o| o.map(|parts| parts.iter().map(|p| p.to_vec()).collect()))
            .map_err(|e| e.to_string())
    }

    fn barrier(&self) -> Result<(), String> {
        self.comm.barrier().map_err(|e| e.to_string())
    }

    fn allreduce(
        &self,
        data: &[u8],
        op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
    ) -> Result<Vec<u8>, String> {
        self.comm.allreduce(data, &op).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mona_adapter_collectives_work() {
        let out = mona::testing::with_comm(4, mona::MonaConfig::default(), |comm| {
            let vtk = MonaVtkComm::new(comm);
            assert_eq!(vtk.kind(), "mona");
            let got = vtk.bcast((vtk.rank() == 0).then_some(&[7u8][..]), 0).unwrap();
            let red = vtk
                .reduce(&[vtk.rank() as u8], &|a, b| a[0] += b[0], 0)
                .unwrap();
            vtk.barrier().unwrap();
            (got, red)
        });
        for (rank, (got, red)) in out.into_iter().enumerate() {
            assert_eq!(got, vec![7]);
            if rank == 0 {
                assert_eq!(red.unwrap(), vec![0 + 1 + 2 + 3]);
            } else {
                assert!(red.is_none());
            }
        }
    }

    #[test]
    fn mpi_adapter_collectives_work() {
        let out = minimpi::MpiWorld::run(3, minimpi::Profile::Vendor, |comm| {
            let vtk = MpiVtkComm::new(comm);
            assert_eq!(vtk.kind(), "mpi");
            let g = vtk.gather(&[vtk.rank() as u8 * 2], 1).unwrap();
            vtk.barrier().unwrap();
            g
        });
        assert_eq!(out[1].as_ref().unwrap(), &vec![vec![0], vec![2], vec![4]]);
        assert!(out[0].is_none() && out[2].is_none());
    }

    #[test]
    fn adapters_p2p_roundtrip() {
        let out = mona::testing::with_comm(2, mona::MonaConfig::default(), |comm| {
            let vtk = MonaVtkComm::new(comm);
            if vtk.rank() == 0 {
                vtk.send(b"abc", 1, 3).unwrap();
                Vec::new()
            } else {
                vtk.recv(0, 3).unwrap()
            }
        });
        assert_eq!(out[1], b"abc");
    }
}
