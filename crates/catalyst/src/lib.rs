//! # catalyst — the in situ adapter layer
//!
//! ParaView Catalyst turns a simulation's data plus a pipeline script into
//! rendered images, running VTK filters in parallel and compositing with
//! IceT. This crate reproduces that role and, crucially, the paper's
//! integration work (§II-D):
//!
//! * [`adapters`] — `vtkMonaController`/`vtkMPIController` equivalents:
//!   implementations of `vizkit::VtkComm` backed by MoNA communicators and
//!   minimpi communicators. Neither `vizkit` nor `icet` was modified to
//!   support MoNA — only this layer knows both sides, exactly as in the
//!   paper.
//! * [`icet_context`] — the `vtkIceTContext` factory-function registry:
//!   converting an abstract `VtkComm` into an `IceTComm` goes through a
//!   per-kind converter table instead of a hard-coded downcast to the MPI
//!   implementation (the paper's ParaView patch).
//! * [`script`] — JSON pipeline scripts ("exported from ParaView"): a
//!   filter chain plus render settings.
//! * [`pipeline`] — the executor: runs the filters on local blocks,
//!   renders, composites across the staging area through the injected
//!   controller, and models Catalyst's expensive first-iteration
//!   initialization (library loading + interpreter start), the overhead
//!   visible at every node join in the paper's Figs. 9 and 10.
//! * [`trigger`] — the reactive trigger language (DIVA): declarative
//!   data-driven predicates embedded in the script that gate and
//!   re-parameterize execution from one fused global-stats allreduce.

pub mod adapters;
pub mod icet_context;
pub mod pipeline;
pub mod script;
pub mod trigger;

pub use adapters::{MonaVtkComm, MpiVtkComm};
pub use pipeline::{CatalystConfig, CatalystPipeline, PipelineOutcome};
pub use script::{CameraSpec, FilterSpec, PipelineScript, RenderMode, RenderSpec};
pub use trigger::{Decision, TriggerProgram, TriggerSpec, TriggerState};
