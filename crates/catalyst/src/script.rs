//! JSON pipeline scripts.
//!
//! The paper exports visualization pipelines from ParaView as Python
//! scripts; this reproduction uses JSON documents with the same content —
//! a filter chain plus render settings — passed through Colza's
//! `create_pipeline` configuration string.

use serde::{Deserialize, Serialize};

use crate::trigger::{ParseError, TriggerProgram, TriggerSpec};

/// One filter stage.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum FilterSpec {
    /// Marching-tetrahedra isosurfaces of a point field.
    Contour {
        /// Point-data field to contour.
        field: String,
        /// Isovalues to extract.
        isovalues: Vec<f64>,
    },
    /// Plane clip (keeps the positive half-space).
    Clip {
        /// A point on the plane.
        origin: [f32; 3],
        /// Plane normal.
        normal: [f32; 3],
    },
    /// Keep cells whose cell-data scalar lies in `[min, max]`.
    Threshold {
        /// Cell-data field.
        field: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
}

/// Surface or volume rendering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
#[serde(rename_all = "snake_case")]
pub enum RenderMode {
    /// Rasterize triangle geometry; composite by depth.
    Surface,
    /// Ray-cast a scalar volume; composite by ordered blending.
    Volume,
}

/// Compositing strategy selection.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq, Default)]
#[serde(rename_all = "snake_case")]
pub enum StrategySpec {
    /// Binary swap (default for surfaces).
    #[default]
    BinarySwap,
    /// Binomial tree.
    Tree,
    /// All-to-root (required for volumes).
    Direct,
}

impl StrategySpec {
    /// The icet strategy.
    pub fn to_icet(self) -> icet::Strategy {
        match self {
            StrategySpec::BinarySwap => icet::Strategy::BinarySwap,
            StrategySpec::Tree => icet::Strategy::Tree,
            StrategySpec::Direct => icet::Strategy::Direct,
        }
    }
}

/// Camera placement; omitted fields fall back to fitting the data bounds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct CameraSpec {
    /// Eye position.
    pub position: [f32; 3],
    /// Look-at point.
    pub focal_point: [f32; 3],
    /// View-up vector.
    pub up: [f32; 3],
    /// Vertical field of view (degrees).
    pub fovy_deg: f32,
}

/// Render settings.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RenderSpec {
    /// Surface or volume.
    pub mode: RenderMode,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Field used for coloring (point data after filtering; cell data for
    /// volume resampling).
    pub field: Option<String>,
    /// Color map preset name ("viridis", "cool_to_warm").
    #[serde(default = "default_colormap")]
    pub colormap: String,
    /// Explicit scalar range; computed across ranks when omitted.
    pub range: Option<(f32, f32)>,
    /// Peak opacity for the volume transfer function.
    #[serde(default = "default_opacity")]
    pub max_opacity: f32,
    /// Target grid resolution for unstructured-volume resampling.
    #[serde(default = "default_resample")]
    pub resample_dims: [usize; 3],
    /// Scale the resampling grid with the local mesh's cell count (how
    /// ParaView sizes resample-to-image by default). Makes volume
    /// rendering cost track data size, as with real unstructured meshes.
    #[serde(default)]
    pub adaptive_resample: bool,
    /// Compositing strategy.
    #[serde(default)]
    pub strategy: StrategySpec,
    /// Explicit camera, or fit-to-bounds when omitted.
    pub camera: Option<CameraSpec>,
}

fn default_colormap() -> String {
    "cool_to_warm".to_string()
}

fn default_opacity() -> f32 {
    0.7
}

fn default_resample() -> [usize; 3] {
    [64, 64, 64]
}

/// A complete pipeline: filters then render, optionally gated and
/// re-parameterized by reactive triggers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PipelineScript {
    /// Filter chain applied to each staged block.
    #[serde(default)]
    pub filters: Vec<FilterSpec>,
    /// Final render stage.
    pub render: RenderSpec,
    /// Reactive triggers evaluated before each execute (DESIGN.md §15).
    /// Empty means always-on.
    #[serde(default)]
    pub triggers: Vec<TriggerSpec>,
}

impl PipelineScript {
    /// Parses a script from its JSON form. Trigger expressions are
    /// compiled here too, so a malformed trigger is rejected at
    /// `create_pipeline` time with a typed error, not at execute time.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let s: Self =
            serde_json::from_str(json).map_err(|e| format!("bad pipeline script: {e}"))?;
        s.compile_triggers().map_err(|e| e.to_string())?;
        Ok(s)
    }

    /// Compiles the trigger section (validation + the executable form).
    pub fn compile_triggers(&self) -> Result<TriggerProgram, ParseError> {
        TriggerProgram::compile(&self.triggers)
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("script serializes")
    }

    /// The Gray–Scott pipeline from the paper: multiple isosurface levels
    /// combined with a clip to look inside the domain (Fig. 3a).
    pub fn gray_scott(width: usize, height: usize) -> Self {
        Self {
            filters: vec![
                FilterSpec::Contour {
                    field: "v".to_string(),
                    isovalues: vec![0.1, 0.3, 0.5],
                },
                FilterSpec::Clip {
                    origin: [0.0, 0.0, 0.0],
                    normal: [1.0, 0.4, 0.2],
                },
            ],
            render: RenderSpec {
                mode: RenderMode::Surface,
                width,
                height,
                field: Some("v".to_string()),
                colormap: "cool_to_warm".to_string(),
                range: Some((0.0, 0.6)),
                max_opacity: default_opacity(),
                resample_dims: default_resample(),
                adaptive_resample: false,
                strategy: StrategySpec::BinarySwap,
                camera: None,
            },
            triggers: Vec::new(),
        }
    }

    /// The Mandelbulb pipeline: a single isosurface level (Fig. 3b).
    pub fn mandelbulb(width: usize, height: usize) -> Self {
        Self {
            filters: vec![FilterSpec::Contour {
                field: "iterations".to_string(),
                isovalues: vec![25.0],
            }],
            render: RenderSpec {
                mode: RenderMode::Surface,
                width,
                height,
                field: Some("iterations".to_string()),
                colormap: "viridis".to_string(),
                range: Some((0.0, 30.0)),
                max_opacity: default_opacity(),
                resample_dims: default_resample(),
                adaptive_resample: false,
                strategy: StrategySpec::BinarySwap,
                camera: None,
            },
            triggers: Vec::new(),
        }
    }

    /// The Deep Water Impact pipeline: merge blocks, then volume-render
    /// the unstructured mesh colored by velocity magnitude (Fig. 1b).
    pub fn deep_water_impact(width: usize, height: usize) -> Self {
        Self {
            filters: Vec::new(),
            render: RenderSpec {
                mode: RenderMode::Volume,
                width,
                height,
                field: Some("v02".to_string()),
                colormap: "cool_to_warm".to_string(),
                range: None,
                max_opacity: 0.9,
                resample_dims: [48, 48, 48],
                adaptive_resample: true,
                strategy: StrategySpec::Direct,
                camera: None,
            },
            triggers: Vec::new(),
        }
    }

    /// The reactive Deep Water Impact pipeline (DESIGN.md §15): render
    /// only while the asteroid's water jet is visible (`max(v02)` above
    /// the crown-splash velocity) or on a coarse keyframe cadence, skip
    /// quiescent iterations, and re-fit the color range to the live
    /// min/max whenever the jet fires.
    pub fn deep_water_impact_triggered(width: usize, height: usize) -> Self {
        let mut s = Self::deep_water_impact(width, height);
        s.triggers = vec![
            TriggerSpec::new("max(v02) > 3.2 || iter % 4 == 1", "run"),
            TriggerSpec::new("max(v02) > 3.2", "range(min(v02), max(v02))"),
        ];
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        for script in [
            PipelineScript::gray_scott(64, 64),
            PipelineScript::mandelbulb(32, 32),
            PipelineScript::deep_water_impact(128, 96),
        ] {
            let json = script.to_json();
            let back = PipelineScript::from_json(&json).unwrap();
            assert_eq!(back, script);
        }
    }

    #[test]
    fn defaults_fill_in() {
        let json = r#"{
            "render": {"mode": "surface", "width": 10, "height": 10, "field": null,
                        "range": null, "camera": null}
        }"#;
        let s = PipelineScript::from_json(json).unwrap();
        assert!(s.filters.is_empty());
        assert_eq!(s.render.colormap, "cool_to_warm");
        assert_eq!(s.render.strategy, StrategySpec::BinarySwap);
    }

    #[test]
    fn bad_json_is_reported() {
        assert!(PipelineScript::from_json("not json").is_err());
        assert!(PipelineScript::from_json("{}").is_err());
    }

    #[test]
    fn triggered_script_roundtrips_and_compiles() {
        let s = PipelineScript::deep_water_impact_triggered(64, 64);
        let back = PipelineScript::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        let prog = back.compile_triggers().unwrap();
        assert_eq!(prog.fields(), &["v02".to_string()]);
    }

    #[test]
    fn malformed_trigger_rejected_at_parse() {
        let json = r#"{
            "render": {"mode": "surface", "width": 10, "height": 10, "field": null,
                        "range": null, "camera": null},
            "triggers": [{"when": "max(u >", "action": "run"}]
        }"#;
        let err = PipelineScript::from_json(json).unwrap_err();
        assert!(err.contains("trigger 0"), "{err}");

        let json = r#"{
            "render": {"mode": "surface", "width": 10, "height": 10, "field": null,
                        "range": null, "camera": null},
            "triggers": [{"when": "max(u) > 1", "action": "launch"}]
        }"#;
        assert!(PipelineScript::from_json(json).is_err());
    }

    #[test]
    fn filter_tags_are_snake_case() {
        let s = PipelineScript::gray_scott(8, 8);
        let json = s.to_json();
        assert!(json.contains("\"contour\""), "{json}");
        assert!(json.contains("\"clip\""), "{json}");
    }
}
