//! Property tests for the reactive trigger language (DESIGN.md §15):
//! canonical-form parse→eval roundtrips on generated ASTs, a precedence
//! oracle against an independent naive evaluator, `delta` chain
//! semantics, and the no-panic guarantee on malformed scripts.

use std::collections::BTreeMap;

use proptest::prelude::*;

use catalyst::trigger::{
    evaluate, parse_action, parse_expr, parse_predicate, BinOp, Expr, FieldStats, StatFn,
    TriggerProgram, TriggerSpec, TriggerState, UnOp, Value,
};

const FIELDS: [&str; 3] = ["u", "v", "v02"];

fn test_stats() -> BTreeMap<String, FieldStats> {
    let mut m = BTreeMap::new();
    m.insert(
        "u".to_string(),
        FieldStats {
            min: -1.5,
            max: 2.25,
            sum: 3.0,
            count: 4,
        },
    );
    m.insert(
        "v".to_string(),
        FieldStats {
            min: 0.125,
            max: 0.5,
            sum: 1.25,
            count: 5,
        },
    );
    m.insert(
        "v02".to_string(),
        FieldStats {
            min: 0.0,
            max: 5.5,
            sum: 11.0,
            count: 8,
        },
    );
    m
}

/// Deterministically decodes a byte stream into a numeric expression.
/// Every byte sequence yields a valid AST, so proptest explores the
/// grammar without a recursive strategy combinator.
fn build_num(bytes: &mut std::vec::IntoIter<u8>, depth: u32) -> Expr {
    let b = bytes.next().unwrap_or(0);
    if depth == 0 {
        return match b % 3 {
            0 => Expr::Num((b / 3) as f64 * 0.25),
            1 => Expr::Iter,
            _ => leaf_stat(b),
        };
    }
    match b % 10 {
        0 => Expr::Num((b / 10) as f64 * 0.5),
        1 => Expr::Iter,
        2 => leaf_stat(b),
        3 => Expr::Unary(UnOp::Neg, Box::new(build_num(bytes, depth - 1))),
        4 => Expr::Delta(Box::new(build_num(bytes, depth - 1))),
        n => {
            let op = match n {
                5 => BinOp::Add,
                6 => BinOp::Sub,
                7 => BinOp::Mul,
                8 => BinOp::Div,
                _ => BinOp::Mod,
            };
            Expr::Binary(
                op,
                Box::new(build_num(bytes, depth - 1)),
                Box::new(build_num(bytes, depth - 1)),
            )
        }
    }
}

fn leaf_stat(b: u8) -> Expr {
    let stat = match b % 4 {
        0 => StatFn::Min,
        1 => StatFn::Max,
        2 => StatFn::Range,
        _ => StatFn::Mean,
    };
    Expr::Stat(stat, FIELDS[(b / 4) as usize % FIELDS.len()].to_string())
}

/// Decodes a byte stream into a boolean expression (a predicate).
fn build_bool(bytes: &mut std::vec::IntoIter<u8>, depth: u32) -> Expr {
    let b = bytes.next().unwrap_or(0);
    if depth == 0 || b % 8 < 4 {
        let op = match b % 6 {
            0 => BinOp::Lt,
            1 => BinOp::Le,
            2 => BinOp::Gt,
            3 => BinOp::Ge,
            4 => BinOp::Eq,
            _ => BinOp::Ne,
        };
        let d = depth.saturating_sub(1);
        return Expr::Binary(
            op,
            Box::new(build_num(bytes, d)),
            Box::new(build_num(bytes, d)),
        );
    }
    match b % 8 {
        4 => Expr::Unary(UnOp::Not, Box::new(build_bool(bytes, depth - 1))),
        5 => Expr::Binary(
            BinOp::And,
            Box::new(build_bool(bytes, depth - 1)),
            Box::new(build_bool(bytes, depth - 1)),
        ),
        _ => Expr::Binary(
            BinOp::Or,
            Box::new(build_bool(bytes, depth - 1)),
            Box::new(build_bool(bytes, depth - 1)),
        ),
    }
}

/// An independent naive recursive evaluator over delta-free ASTs — the
/// oracle the module evaluator is checked against. Shares nothing with
/// the implementation but the AST type.
fn naive(e: &Expr, iter: u64, f: &BTreeMap<String, FieldStats>) -> f64 {
    match e {
        Expr::Num(n) => *n,
        Expr::Iter => iter as f64,
        Expr::Stat(stat, field) => {
            let s = &f[field.as_str()];
            match stat {
                StatFn::Min => s.min,
                StatFn::Max => s.max,
                StatFn::Range => s.max - s.min,
                StatFn::Mean => s.sum / s.count as f64,
            }
        }
        Expr::Delta(_) => unreachable!("oracle ASTs are delta-free"),
        Expr::Unary(UnOp::Neg, e) => -naive(e, iter, f),
        Expr::Unary(UnOp::Not, e) => bool_to_f(naive(e, iter, f) == 0.0),
        Expr::Binary(op, a, b) => {
            let (x, y) = (naive(a, iter, f), naive(b, iter, f));
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                BinOp::Lt => bool_to_f(x < y),
                BinOp::Le => bool_to_f(x <= y),
                BinOp::Gt => bool_to_f(x > y),
                BinOp::Ge => bool_to_f(x >= y),
                BinOp::Eq => bool_to_f(x == y),
                BinOp::Ne => bool_to_f(x != y),
                BinOp::And => bool_to_f(x != 0.0 && y != 0.0),
                BinOp::Or => bool_to_f(x != 0.0 || y != 0.0),
            }
        }
    }
}

fn bool_to_f(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

fn strip_delta(e: &Expr) -> Expr {
    match e {
        Expr::Num(_) | Expr::Iter | Expr::Stat(..) => e.clone(),
        // Replace delta with its argument: keeps the rest of the shape.
        Expr::Delta(inner) => strip_delta(inner),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(strip_delta(inner))),
        Expr::Binary(op, a, b) => {
            Expr::Binary(*op, Box::new(strip_delta(a)), Box::new(strip_delta(b)))
        }
    }
}

fn same_num(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

proptest! {
    /// Canonical display of a generated AST parses back to the same AST
    /// (the fully parenthesized form is unambiguous), and evaluating the
    /// reparse matches evaluating the original.
    #[test]
    fn parse_eval_roundtrip_on_generated_asts(bytes in proptest::collection::vec(0u8..255, 0..48)) {
        let e = build_bool(&mut bytes.clone().into_iter(), 3);
        let printed = e.to_string();
        let back = parse_expr(&printed).expect("canonical form parses");
        prop_assert_eq!(&back, &e, "roundtrip of {}", printed);

        let stats = test_stats();
        let mut s1 = TriggerState::new();
        let mut s2 = TriggerState::new();
        let v1 = evaluate(&e, 7, &stats, &mut s1).unwrap();
        let v2 = evaluate(&back, 7, &stats, &mut s2).unwrap();
        match (v1, v2) {
            (Value::Bool(a), Value::Bool(b)) => prop_assert_eq!(a, b),
            (Value::Num(a), Value::Num(b)) => prop_assert!(same_num(a, b)),
            other => prop_assert!(false, "type mismatch {:?}", other),
        }
    }

    /// The module evaluator agrees with an independent naive recursive
    /// evaluator on delta-free ASTs — precedence and semantics oracle.
    #[test]
    fn evaluator_matches_naive_oracle(bytes in proptest::collection::vec(0u8..255, 0..48), iter in 0u64..100) {
        let e = strip_delta(&build_bool(&mut bytes.clone().into_iter(), 3));
        let stats = test_stats();
        let expected = naive(&e, iter, &stats) != 0.0;
        let mut st = TriggerState::new();
        match evaluate(&e, iter, &stats, &mut st).unwrap() {
            Value::Bool(got) => prop_assert_eq!(got, expected, "{}", e),
            v => prop_assert!(false, "predicate evaluated to {:?}", v),
        }
    }

    /// Paren-free arithmetic strings honor conventional precedence: the
    /// parser's result matches a split-at-loosest-operator oracle that
    /// never builds an AST.
    #[test]
    fn precedence_against_string_oracle(
        nums in proptest::collection::vec(1u8..9, 2..8),
        ops in proptest::collection::vec(0u8..5, 7),
    ) {
        let symbols = ["+", "-", "*", "/", "%"];
        let mut src = String::new();
        for (i, n) in nums.iter().enumerate() {
            if i > 0 {
                src.push_str(symbols[ops[i - 1] as usize % 5]);
            }
            src.push_str(&n.to_string());
        }
        // Oracle: split at the rightmost loosest-precedence operator.
        fn oracle(toks: &[(f64, Option<char>)]) -> f64 {
            for tier in [&['+', '-'][..], &['*', '/', '%'][..]] {
                if let Some(i) = (0..toks.len())
                    .rev()
                    .find(|&i| toks[i].1.map(|c| tier.contains(&c)).unwrap_or(false))
                {
                    let mut left = toks[..=i].to_vec();
                    left[i].1 = None;
                    let l = oracle(&left);
                    let r = oracle(&toks[i + 1..]);
                    return match toks[i].1.unwrap() {
                        '+' => l + r,
                        '-' => l - r,
                        '*' => l * r,
                        '/' => l / r,
                        _ => l % r,
                    };
                }
            }
            toks[0].0
        }
        let toks: Vec<(f64, Option<char>)> = nums
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let op = (i + 1 < nums.len())
                    .then(|| symbols[ops[i] as usize % 5].chars().next().unwrap());
                (n as f64, op)
            })
            .collect();
        let expected = oracle(&toks);
        let e = parse_expr(&src).unwrap();
        let mut st = TriggerState::new();
        match evaluate(&e, 0, &test_stats(), &mut st).unwrap() {
            Value::Num(got) => prop_assert!(same_num(got, expected), "{} -> {} vs {}", src, got, expected),
            v => prop_assert!(false, "arithmetic evaluated to {:?}", v),
        }
    }

    /// `delta(x)` over any value sequence is +inf first, then the
    /// absolute difference against the previous *evaluated* iteration —
    /// and re-evaluating an iteration never changes the answer.
    #[test]
    fn delta_chain_over_random_sequences(vals in proptest::collection::vec(-100.0f64..100.0, 1..20)) {
        let e = parse_expr("delta(max(u))").unwrap();
        let mut st = TriggerState::new();
        let mut prev: Option<f64> = None;
        for (i, &v) in vals.iter().enumerate() {
            let mut stats = BTreeMap::new();
            stats.insert("u".to_string(), FieldStats { min: v, max: v, sum: v, count: 1 });
            // Sparse iteration numbers: the base is the last evaluation,
            // not iter-1.
            let iter = (i as u64) * 3 + 1;
            let expected = match prev {
                None => f64::INFINITY,
                Some(p) => (v - p).abs(),
            };
            for _attempt in 0..2 {
                // Second pass re-evaluates the same iteration (the
                // abort-and-recover path): must be idempotent.
                match evaluate(&e, iter, &stats, &mut st).unwrap() {
                    Value::Num(d) => prop_assert!(same_num(d, expected), "step {} got {} want {}", i, d, expected),
                    v => prop_assert!(false, "delta evaluated to {:?}", v),
                }
            }
            prev = Some(v);
        }
    }

    /// Arbitrary input never panics the parser: it returns Ok or a typed
    /// ParseError with a position inside the source.
    #[test]
    fn malformed_sources_never_panic(src in "[a-z0-9()<>=!&|%+*/,. -]{0,40}") {
        match parse_predicate(&src) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.pos <= src.len(), "pos {} out of {:?}", e.pos, src),
        }
        let _ = parse_action(&src);
        // Same through the whole program compiler.
        let _ = TriggerProgram::compile(&[TriggerSpec::new(src.clone(), "run")]);
        let _ = TriggerProgram::compile(&[TriggerSpec::new("iter > 0", src)]);
    }

    /// Truncating a valid predicate anywhere never panics, and canonical
    /// forms stay parseable after whitespace injection.
    #[test]
    fn truncation_and_whitespace_never_panic(bytes in proptest::collection::vec(0u8..255, 0..32), cut in 0usize..200) {
        let printed = build_bool(&mut bytes.clone().into_iter(), 2).to_string();
        let cut = cut.min(printed.len());
        if printed.is_char_boundary(cut) {
            let _ = parse_predicate(&printed[..cut]);
        }
        // Whitespace is insignificant between tokens: pad the ends and
        // widen existing separators.
        let spaced = format!("  {}\t", printed.replace(' ', "   "));
        prop_assert!(parse_predicate(&spaced).is_ok(), "{:?}", spaced);
    }
}

#[test]
fn program_decisions_are_pure_functions_of_inputs() {
    // Two independently compiled programs fed the same (iter, stats)
    // sequence reach identical decisions — the cross-rank determinism
    // argument in miniature.
    let specs = [
        TriggerSpec::new("max(v02) > 3.2 || iter % 4 == 1", "run"),
        TriggerSpec::new("delta(max(v02)) < 0.01", "skip"),
        TriggerSpec::new("max(v02) > 3.2", "range(min(v02), max(v02))"),
    ];
    let p1 = TriggerProgram::compile(&specs).unwrap();
    let p2 = TriggerProgram::compile(&specs).unwrap();
    let mut s1 = TriggerState::new();
    let mut s2 = TriggerState::new();
    for iter in 0..40u64 {
        let v = (iter as f64 * 0.37).sin().abs() * 6.0;
        let mut stats = BTreeMap::new();
        stats.insert(
            "v02".to_string(),
            FieldStats {
                min: 0.0,
                max: v,
                sum: v * 3.0,
                count: 6,
            },
        );
        let d1 = p1.evaluate(iter, &stats, &mut s1).unwrap();
        let d2 = p2.evaluate(iter, &stats, &mut s2).unwrap();
        assert_eq!(d1, d2, "iteration {iter}");
    }
}
