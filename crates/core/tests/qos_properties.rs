//! Property tests for the deficit-round-robin execute scheduler
//! (DESIGN.md §14): on arbitrary contention workloads the scheduler is
//! a pure function of its call sequence, serves FIFO within a lane,
//! keeps every deficit bounded, never strands an admitted request, and
//! splits service between backlogged lanes in weight proportion.

use std::collections::{BTreeMap, VecDeque};

use proptest::prelude::*;

use colza::{DrrScheduler, TenantId};

/// A generated contention workload: a quantum, per-tenant weights and a
/// flat arrival script of `(tenant index, cost)` pairs.
#[derive(Clone, Debug)]
struct Workload {
    quantum: u64,
    weights: Vec<u64>,
    arrivals: Vec<(usize, u64)>,
}

fn tid(i: usize) -> TenantId {
    TenantId::new(format!("t{i}"))
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (1u64..500, 1usize..5)
        .prop_flat_map(|(quantum, tenants)| {
            (
                Just(quantum),
                proptest::collection::vec(1u64..5, tenants),
                proptest::collection::vec((0..tenants, 1u64..2000), 1..40),
            )
        })
        .prop_map(|(quantum, weights, arrivals)| Workload {
            quantum,
            weights,
            arrivals,
        })
}

/// Runs the whole workload (arrive everything, then drain) and returns
/// the dispatch order.
fn drain(w: &Workload) -> Vec<(TenantId, u64)> {
    let mut s = DrrScheduler::new(w.quantum);
    for (ticket, &(t, cost)) in w.arrivals.iter().enumerate() {
        s.arrive(&tid(t), w.weights[t], ticket as u64, cost);
    }
    let mut order = Vec::new();
    while let Some(pick) = s.dispatch() {
        order.push(pick);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same call sequence, same dispatch order — the scheduling decision
    /// is a pure function of the accounting state, never of wall time or
    /// map iteration luck. (This is what keeps same-seed simulation
    /// traces byte-identical with the gate enabled.)
    #[test]
    fn dispatch_order_is_a_pure_function_of_the_call_sequence(w in arb_workload()) {
        prop_assert_eq!(drain(&w), drain(&w));
    }

    /// Every admitted request is dispatched exactly once (no starvation,
    /// no duplication), lanes serve FIFO, and while draining no lane's
    /// deficit ever exceeds its head cost plus one `quantum × weight`
    /// top-up (empty lanes are capped at the top-up alone) — the classic
    /// DRR bound that makes the quantum a service *share*, not a credit
    /// an idle tenant can bank.
    #[test]
    fn drain_is_complete_fifo_and_deficit_bounded(w in arb_workload()) {
        let mut s = DrrScheduler::new(w.quantum);
        let mut mirror: BTreeMap<TenantId, VecDeque<(u64, u64)>> = BTreeMap::new();
        for (ticket, &(t, cost)) in w.arrivals.iter().enumerate() {
            s.arrive(&tid(t), w.weights[t], ticket as u64, cost);
            mirror.entry(tid(t)).or_default().push_back((ticket as u64, cost));
        }
        for _ in 0..w.arrivals.len() {
            let (t, ticket) = s.dispatch().expect("pending work must dispatch");
            let lane = mirror.get_mut(&t).expect("dispatched an unknown tenant");
            let (expect_ticket, _) = lane.pop_front().expect("dispatched an empty lane");
            prop_assert_eq!(ticket, expect_ticket, "lane must serve FIFO");
            for (i, weight) in w.weights.iter().enumerate() {
                let t = tid(i);
                let topup = w.quantum * weight;
                let bound = match mirror.get(&t).and_then(|q| q.front()) {
                    Some(&(_, head_cost)) => head_cost + topup,
                    None => topup + 1,
                };
                prop_assert!(
                    s.deficit(&t) < bound,
                    "lane {} deficit {} breached its bound {}",
                    t, s.deficit(&t), bound
                );
            }
        }
        prop_assert_eq!(s.dispatch(), None);
        prop_assert_eq!(s.pending(), 0);
    }

    /// Interleaving dispatches between arrivals changes nothing about
    /// completeness: every ticket still comes out exactly once.
    #[test]
    fn interleaved_arrivals_still_drain_completely(w in arb_workload()) {
        let mut s = DrrScheduler::new(w.quantum);
        let mut out = Vec::new();
        for (ticket, &(t, cost)) in w.arrivals.iter().enumerate() {
            s.arrive(&tid(t), w.weights[t], ticket as u64, cost);
            // Drain a little between arrivals (more eagerly for even
            // tenants, so the cursor state is exercised mid-stream).
            if t % 2 == 0 {
                if let Some(pick) = s.dispatch() {
                    out.push(pick.1);
                }
            }
        }
        while let Some(pick) = s.dispatch() {
            out.push(pick.1);
        }
        let mut tickets = out;
        tickets.sort_unstable();
        let expect: Vec<u64> = (0..w.arrivals.len() as u64).collect();
        prop_assert_eq!(tickets, expect, "every ticket exactly once");
    }

    /// Weight-proportional sharing: with every lane saturated by
    /// equal-cost work, normalized service (served / weight) stays within
    /// one top-up plus one request of every other lane's — the
    /// Shreedhar–Varghese fairness bound for DRR.
    #[test]
    fn backlogged_lanes_share_service_in_weight_proportion(
        quantum in 1u64..500,
        weights in proptest::collection::vec(1u64..5, 2..5),
        cost in 1u64..2000,
        backlog in 8usize..30,
    ) {
        let mut s = DrrScheduler::new(quantum);
        let mut remaining: Vec<usize> = vec![backlog; weights.len()];
        let mut ticket = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            for _ in 0..backlog {
                s.arrive(&tid(i), w, ticket, cost);
                ticket += 1;
            }
        }
        // Dispatch while every lane is still backlogged.
        let mut served: Vec<u64> = vec![0; weights.len()];
        while remaining.iter().all(|&r| r > 0) {
            let (t, _) = s.dispatch().expect("all lanes backlogged");
            let i: usize = t.as_str()[1..].parse().unwrap();
            served[i] += cost;
            remaining[i] -= 1;
        }
        let max_w = *weights.iter().max().unwrap();
        // One cyclic top-up of the heaviest lane plus one in-flight
        // request per side, with slack for the ±1 visit at the cut.
        let slack = 2 * (cost + quantum * max_w) + quantum;
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                let a = served[i] / weights[i];
                let b = served[j] / weights[j];
                prop_assert!(
                    a.abs_diff(b) <= slack,
                    "normalized service diverged: lane {i} {a} vs lane {j} {b} \
                     (weights {:?}, served {:?}, slack {slack})",
                    weights, served
                );
            }
        }
    }
}
