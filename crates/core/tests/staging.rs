//! End-to-end staging tests: daemons + simulation clients exercising the
//! full activate/stage/execute/deactivate protocol, elasticity, 2PC under
//! view churn, and the admin interface.

use std::sync::Arc;

use bytes::Bytes;

use colza::daemon::{launch_group, settle_views};
use colza::{AdminClient, BlockMeta, ColzaClient, CommMode, DaemonConfig};
use margo::MargoInstance;
use na::Fabric;

fn fresh_env(name: &str) -> (hpcsim::Cluster, Fabric, DaemonConfig) {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let path = std::env::temp_dir().join(format!(
        "colza-test-{name}-{}.addrs",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    (cluster, fabric, DaemonConfig::new(path))
}

fn image_block(n: usize, offset: f32, field: &str) -> Bytes {
    let mut img = vizkit::ImageData::new([n, n, n]);
    img.origin = [offset, 0.0, 0.0];
    let c = (n - 1) as f32 / 2.0;
    let mut vals = Vec::with_capacity(n * n * n);
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let d = (((i as f32 - c).powi(2) + (j as f32 - c).powi(2) + (k as f32 - c).powi(2))
                    as f32)
                    .sqrt();
                vals.push(30.0 - 4.0 * d);
            }
        }
    }
    img.point_data.set(field, vizkit::DataArray::F32(vals));
    colza::codec::dataset_to_bytes(&vizkit::DataSet::Image(img))
}

#[test]
fn full_iteration_with_null_backend() {
    let (cluster, fabric, cfg) = fresh_env("null");
    let daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    cluster
        .spawn("sim", 10, move || {
            let margo = MargoInstance::init(&f2);
            let admin = AdminClient::new(Arc::clone(&margo));
            let client = ColzaClient::new(Arc::clone(&margo));
            let members = client.view_from(contact).unwrap();
            assert_eq!(members.len(), 3);
            admin
                .create_pipeline_on_all(&members, "null", "p", "")
                .unwrap();

            let handle = client.distributed_handle(contact, "p").unwrap();
            for iter in 0..3u64 {
                handle.activate(iter).unwrap();
                for block in 0..6u64 {
                    let payload = Bytes::from(vec![block as u8; 100]);
                    handle
                        .stage(
                            BlockMeta::new("x".to_string(), block, iter, payload.len()),
                            &payload,
                        )
                        .unwrap();
                }
                handle.execute(iter).unwrap();
                handle.deactivate(iter).unwrap();
            }
            margo.finalize();
        })
        .join();

    // Each of the 3 servers saw 2 of the 6 blocks per iteration.
    for d in daemons {
        d.stop();
    }
}

#[test]
fn catalyst_pipeline_renders_across_servers() {
    let (cluster, fabric, cfg) = fresh_env("catalyst");
    let daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    let coverage = cluster
        .spawn("sim", 10, move || {
            let margo = MargoInstance::init(&f2);
            let admin = AdminClient::new(Arc::clone(&margo));
            let client = ColzaClient::new(Arc::clone(&margo));
            let members = client.view_from(contact).unwrap();
            let script = catalyst::PipelineScript::mandelbulb(32, 32).to_json();
            admin
                .create_pipeline_on_all(&members, "catalyst", "viz", &script)
                .unwrap();

            let handle = client.distributed_handle(contact, "viz").unwrap();
            handle.activate(0).unwrap();
            for block in 0..2u64 {
                let payload = image_block(8, block as f32 * 9.0, "iterations");
                handle
                    .stage(
                        BlockMeta::new("mandelbulb".to_string(), block, 0, payload.len()),
                        &payload,
                    )
                    .unwrap();
            }
            handle.execute(0).unwrap();
            let img_bytes = handle.fetch_result().unwrap().expect("root image");
            handle.deactivate(0).unwrap();
            margo.finalize();
            vizkit::Image::from_bytes(&img_bytes).coverage()
        })
        .join();
    assert!(coverage > 0.0, "composited image is empty");
    for d in daemons {
        d.stop();
    }
}

#[test]
fn scaling_up_mid_run_is_visible_to_the_client() {
    let (cluster, fabric, cfg) = fresh_env("scaleup");
    let mut daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();
    let script = catalyst::PipelineScript::mandelbulb(24, 24).to_json();

    // Run iteration 0 on two servers, grow to three, run iteration 1.
    let f2 = fabric.clone();
    let cfg2 = cfg.clone();
    let (grow_tx, grow_rx) = crossbeam::channel::bounded::<()>(1);
    let (grown_tx, grown_rx) = crossbeam::channel::bounded::<()>(1);

    let sim = cluster.spawn("sim", 10, move || {
        let margo = MargoInstance::init(&f2);
        let admin = AdminClient::new(Arc::clone(&margo));
        let client = ColzaClient::new(Arc::clone(&margo));
        let members = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&members, "catalyst", "viz", &script)
            .unwrap();
        let handle = client.distributed_handle(contact, "viz").unwrap();

        handle.activate(0).unwrap();
        assert_eq!(handle.members().len(), 2);
        let payload = image_block(8, 0.0, "iterations");
        handle
            .stage(
                BlockMeta::new("m".to_string(), 0, 0, payload.len()),
                &payload,
            )
            .unwrap();
        handle.execute(0).unwrap();
        handle.deactivate(0).unwrap();

        // Ask the harness to add a server, then wait for it.
        grow_tx.send(()).unwrap();
        grown_rx.recv().unwrap();

        // The 2PC in activate adopts the grown view, and the new server
        // needs the pipeline too (admin deploys on the refreshed view).
        let view = handle.refresh_view().unwrap();
        assert_eq!(view.len(), 3);
        admin
            .create_pipeline_on_all(&view, "catalyst", "viz", &script)
            .unwrap();
        handle.activate(1).unwrap();
        assert_eq!(handle.members().len(), 3);
        handle.execute(1).unwrap();
        handle.deactivate(1).unwrap();
        margo.finalize();
    });

    grow_rx.recv().unwrap();
    let newcomer = colza::ColzaDaemon::spawn(&cluster, &fabric, 5, cfg2);
    daemons.push(newcomer);
    settle_views(&daemons, 3);
    grown_tx.send(()).unwrap();

    sim.join();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn activate_2pc_retries_through_view_change() {
    let (cluster, fabric, cfg) = fresh_env("2pc");
    let mut daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();

    // Inject a joiner *between* view_from and activate: the handle's
    // member list is stale, so prepare sees mismatched views and must
    // retry with the refreshed one.
    let f2 = fabric.clone();
    let client_setup = cluster.spawn("sim-pre", 10, move || {
        let margo = MargoInstance::init(&f2);
        let admin = AdminClient::new(Arc::clone(&margo));
        let client = ColzaClient::new(Arc::clone(&margo));
        let members = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&members, "null", "p", "")
            .unwrap();
        margo.finalize();
        members.len()
    });
    assert_eq!(client_setup.join(), 2);

    let newcomer = colza::ColzaDaemon::spawn(&cluster, &fabric, 5, cfg.clone());
    // Deploy the pipeline on the newcomer too (it must be able to vote
    // and execute once the client's 2PC adopts the grown view).
    let f3 = fabric.clone();
    let new_addr = newcomer.address();
    cluster
        .spawn("admin2", 11, move || {
            let margo = MargoInstance::init(&f3);
            let admin = AdminClient::new(Arc::clone(&margo));
            admin.create_pipeline(new_addr, "null", "p", "").unwrap();
            margo.finalize();
        })
        .join();
    daemons.push(newcomer);
    settle_views(&daemons, 3);

    let f4 = fabric.clone();
    let final_members = cluster
        .spawn("sim", 12, move || {
            let margo = MargoInstance::init(&f4);
            let client = ColzaClient::new(Arc::clone(&margo));
            let handle = client.distributed_handle(contact, "p").unwrap();
            handle.activate(0).unwrap();
            let n = handle.members().len();
            handle.execute(0).unwrap();
            handle.deactivate(0).unwrap();
            margo.finalize();
            n
        })
        .join();
    assert_eq!(final_members, 3, "2PC must settle on the grown view");
    for d in daemons {
        d.stop();
    }
}

#[test]
fn admin_leave_shrinks_the_group() {
    let (cluster, fabric, cfg) = fresh_env("leave");
    let daemons = launch_group(&cluster, &fabric, 3, 1, 0, &cfg);
    let victim = daemons[2].address();
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    cluster
        .spawn("admin", 10, move || {
            let margo = MargoInstance::init(&f2);
            let admin = AdminClient::new(Arc::clone(&margo));
            admin.request_leave(victim).unwrap();
            margo.finalize();
        })
        .join();

    // The victim's daemon loop notices the flag, leaves, and exits.
    let mut daemons = daemons;
    let leaver = daemons.remove(2);
    leaver.wait();

    // The survivors converge on a 2-member view.
    for _ in 0..2000 {
        if daemons.iter().all(|d| d.view().len() == 2) {
            break;
        }
        for d in &daemons {
            d.tick();
        }
        std::thread::sleep(std::time::Duration::from_micros(500));
    }
    for d in &daemons {
        assert_eq!(d.view().len(), 2);
        assert!(!d.view().contains(&victim));
    }
    let _ = contact;
    for d in daemons {
        d.stop();
    }
}

#[test]
fn admin_create_and_destroy_pipelines() {
    let (cluster, fabric, cfg) = fresh_env("adminpipe");
    let daemons = launch_group(&cluster, &fabric, 1, 1, 0, &cfg);
    let server = daemons[0].address();

    let f2 = fabric.clone();
    cluster
        .spawn("admin", 10, move || {
            let margo = MargoInstance::init(&f2);
            let admin = AdminClient::new(Arc::clone(&margo));
            admin.create_pipeline(server, "null", "a", "").unwrap();
            admin.create_pipeline(server, "null", "b", "").unwrap();
            assert_eq!(admin.list_pipelines(server).unwrap(), vec!["a", "b"]);
            admin.destroy_pipeline(server, "a").unwrap();
            assert_eq!(admin.list_pipelines(server).unwrap(), vec!["b"]);
            assert!(admin.destroy_pipeline(server, "zzz").is_err());
            // Unknown library is a clean error.
            assert!(admin
                .create_pipeline(server, "libdoesnotexist.so", "c", "")
                .is_err());
            margo.finalize();
        })
        .join();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn static_mpi_mode_runs_the_same_pipeline() {
    let (cluster, fabric, mut cfg) = fresh_env("mpistatic");
    cfg.comm = CommMode::MpiStatic(minimpi::Profile::Vendor);
    let daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    let coverage = cluster
        .spawn("sim", 10, move || {
            let margo = MargoInstance::init(&f2);
            let admin = AdminClient::new(Arc::clone(&margo));
            let client = ColzaClient::new(Arc::clone(&margo));
            let members = client.view_from(contact).unwrap();
            let script = catalyst::PipelineScript::mandelbulb(24, 24).to_json();
            admin
                .create_pipeline_on_all(&members, "catalyst", "viz", &script)
                .unwrap();
            let handle = client.distributed_handle(contact, "viz").unwrap();
            handle.activate(0).unwrap();
            let payload = image_block(8, 0.0, "iterations");
            handle
                .stage(
                    BlockMeta::new("m".to_string(), 0, 0, payload.len()),
                    &payload,
                )
                .unwrap();
            handle.execute(0).unwrap();
            let img = handle.fetch_result().unwrap().expect("image");
            handle.deactivate(0).unwrap();
            margo.finalize();
            vizkit::Image::from_bytes(&img).coverage()
        })
        .join();
    assert!(coverage > 0.0);
    for d in daemons {
        d.stop();
    }
}

#[test]
fn nonblocking_stage_and_execute() {
    let (cluster, fabric, cfg) = fresh_env("nonblocking");
    let daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let contact = daemons[0].address();

    let f2 = fabric.clone();
    cluster
        .spawn("sim", 10, move || {
            let margo = MargoInstance::init(&f2);
            let admin = AdminClient::new(Arc::clone(&margo));
            let client = ColzaClient::new(Arc::clone(&margo));
            let members = client.view_from(contact).unwrap();
            admin
                .create_pipeline_on_all(&members, "null", "p", "")
                .unwrap();
            let handle = Arc::new(client.distributed_handle(contact, "p").unwrap());
            handle.activate(0).unwrap();
            let pending: Vec<_> = (0..4u64)
                .map(|b| {
                    let payload = Bytes::from(vec![b as u8; 64]);
                    handle.istage(
                        BlockMeta::new("x".to_string(), b, 0, payload.len()),
                        payload,
                    )
                })
                .collect();
            for p in pending {
                p.wait().unwrap();
            }
            let exec = handle.iexecute(0);
            exec.wait().unwrap();
            handle.deactivate(0).unwrap();
            margo.finalize();
        })
        .join();
    for d in daemons {
        d.stop();
    }
}

#[test]
fn single_server_pipeline_handle_full_protocol() {
    let (cluster, fabric, cfg) = fresh_env("single");
    let daemons = launch_group(&cluster, &fabric, 2, 1, 0, &cfg);
    let target = daemons[1].address();
    let f2 = fabric.clone();
    cluster
        .spawn("sim", 10, move || {
            let margo = MargoInstance::init(&f2);
            let admin = AdminClient::new(Arc::clone(&margo));
            let client = ColzaClient::new(Arc::clone(&margo));
            admin.create_pipeline(target, "null", "solo", "").unwrap();
            // The paper: a plain pipeline handle references one pipeline
            // instance on one server, with the same four calls.
            let handle = client.pipeline_handle(target, "solo");
            handle.activate(0).unwrap();
            let payload = Bytes::from(vec![7u8; 256]);
            handle
                .stage(
                    BlockMeta::new("x", 0, 0, payload.len()),
                    &payload,
                )
                .unwrap();
            handle.execute(0).unwrap();
            let staged = handle.fetch_result().unwrap().unwrap();
            assert_eq!(u64::from_le_bytes(staged.try_into().unwrap()), 256);
            handle.deactivate(0).unwrap();
            margo.finalize();
        })
        .join();
    for d in daemons {
        d.stop();
    }
}
