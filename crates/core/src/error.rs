//! Colza error type.

use std::fmt;

/// Failures surfaced by the Colza client, admin, and provider layers.
#[derive(Debug, Clone, PartialEq)]
pub enum ColzaError {
    /// An RPC-level failure (transport, timeout, missing handler).
    Rpc(String),
    /// A transient availability failure: the request (or its reply) was
    /// lost, or the target was temporarily unreachable. Retrying — after
    /// refreshing the view — may succeed.
    Unavailable(String),
    /// The two-phase-commit on `activate` kept failing (view churn).
    ActivateConflict {
        /// Attempts performed before giving up.
        attempts: usize,
    },
    /// A server aborted the iteration mid-execute because its MoNA
    /// communicator was revoked (a member crashed inside a collective).
    /// The iteration's staged inputs are intact on the survivors;
    /// re-activating against the refreshed view and re-issuing the
    /// execute recovers ([`crate::client::DistributedPipelineHandle::execute_with_recovery`]).
    IterationAborted(String),
    /// A stage/push was refused because the tenant is over its
    /// staged-byte quota. Retryable backpressure: quota frees as the
    /// tenant's earlier iterations deactivate, so backing off and
    /// retrying (e.g. [`crate::client::DistributedPipelineHandle::stage_with_backpressure`])
    /// eventually succeeds.
    QuotaExceeded(String),
    /// A pipeline script failed to parse or validate at
    /// `create_pipeline` (malformed JSON, or a trigger expression that
    /// does not compile). Not retryable: the script itself is wrong.
    InvalidScript(String),
    /// No pipeline with this name exists on the target server.
    NoSuchPipeline(String),
    /// No backend factory registered under this `lib:name`.
    NoSuchLibrary(String),
    /// A pipeline rejected an operation.
    Pipeline(String),
    /// The staging area has no members.
    EmptyGroup,
    /// Encoding or decoding of staged data failed.
    Codec(crate::codec::CodecError),
}

impl fmt::Display for ColzaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColzaError::Rpc(m) => write!(f, "rpc failure: {m}"),
            ColzaError::Unavailable(m) => write!(f, "temporarily unavailable: {m}"),
            ColzaError::ActivateConflict { attempts } => {
                write!(f, "activate 2PC failed after {attempts} attempts")
            }
            ColzaError::QuotaExceeded(m) => write!(f, "staged-byte quota exceeded: {m}"),
            ColzaError::InvalidScript(m) => write!(f, "invalid pipeline script: {m}"),
            ColzaError::NoSuchPipeline(n) => write!(f, "no pipeline named {n:?}"),
            ColzaError::NoSuchLibrary(n) => write!(f, "no backend library {n:?} registered"),
            ColzaError::Pipeline(m) => write!(f, "pipeline error: {m}"),
            ColzaError::IterationAborted(m) => write!(f, "iteration aborted: {m}"),
            ColzaError::EmptyGroup => write!(f, "staging area is empty"),
            ColzaError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl ColzaError {
    /// Whether the operation may succeed if retried — possibly after
    /// refreshing the staging-area view. Clients and the autoscaler use
    /// this to separate wait-and-retry from give-up.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ColzaError::Unavailable(_)
                | ColzaError::ActivateConflict { .. }
                | ColzaError::IterationAborted(_)
                | ColzaError::QuotaExceeded(_)
        )
    }
}

impl std::error::Error for ColzaError {}

impl From<margo::RpcError> for ColzaError {
    fn from(e: margo::RpcError) -> Self {
        match &e {
            // A draining server refuses new blocks by design; the client
            // re-routes them through the surviving view.
            margo::RpcError::Handler(m) if m.starts_with(crate::provider::DRAINING) => {
                ColzaError::Unavailable(m.clone())
            }
            // An execute handler whose collective was revoked replies with
            // the ABORTED marker: typed as retryable-after-reactivate.
            margo::RpcError::Handler(m) if m.starts_with(crate::provider::ABORTED) => {
                ColzaError::IterationAborted(m.clone())
            }
            // Admission control refused the block: the tenant is over its
            // staged-byte quota. Back off and retry, don't re-route.
            margo::RpcError::Handler(m) if m.starts_with(crate::provider::QUOTA) => {
                ColzaError::QuotaExceeded(m.clone())
            }
            // create_pipeline rejected the script (bad JSON or a trigger
            // that does not compile): fatal, fix the script.
            margo::RpcError::Handler(m) if m.starts_with(crate::provider::INVALID_SCRIPT) => {
                ColzaError::InvalidScript(m.clone())
            }
            _ if e.is_retryable() => ColzaError::Unavailable(e.to_string()),
            _ => ColzaError::Rpc(e.to_string()),
        }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ColzaError>;
