//! RPC argument and reply types shared between client, admin and provider.

use std::fmt;

use serde::{Deserialize, Serialize};

use na::{Address, BulkHandle};
use store::{RingConfig, Role, TenantUsage};

use crate::codec::CodecId;

/// Identity of a staging tenant (DESIGN.md §14). Every staged block and
/// every execute request carries one; servers account resource usage,
/// enforce quotas and schedule execute work per tenant. A deployment
/// that never configures tenancy runs everything under the default
/// tenant and behaves exactly as before.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub String);

impl TenantId {
    /// A tenant id from any string-ish name.
    pub fn new(name: impl Into<String>) -> Self {
        TenantId(name.into())
    }

    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    /// The implicit tenant of untenanted deployments.
    fn default() -> Self {
        TenantId("default".to_string())
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Coarse service classes for the fair-share execute scheduler. The
/// class fixes the tenant's deficit-round-robin weight: a Gold tenant
/// earns four times the execute service of a Bronze one under
/// contention. Classes never affect an uncontended pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityClass {
    /// Weight 4: latency-sensitive production pipelines.
    Gold,
    /// Weight 2: the default class.
    Silver,
    /// Weight 1: batch/best-effort work.
    Bronze,
}

impl PriorityClass {
    /// The DRR weight of this class.
    pub fn weight(self) -> u64 {
        match self {
            PriorityClass::Gold => 4,
            PriorityClass::Silver => 2,
            PriorityClass::Bronze => 1,
        }
    }
}

/// Per-tenant resource limits and service class (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Maximum staged (encoded) bytes this tenant may hold *per server*.
    /// Admission control refuses `stage`/`colza.store.push` over this
    /// with the typed, retryable [`crate::ColzaError::QuotaExceeded`];
    /// quota is freed when copies leave the store (deactivate release,
    /// drain, repair drops). `u64::MAX` means unlimited; `0` admits
    /// nothing with a payload.
    pub staged_byte_quota: u64,
    /// Execute-time budget per iteration window, in virtual nanoseconds.
    /// A tenant whose executes consume more than this between two
    /// `deactivate`s is *throttled* — its scheduler weight drops to the
    /// minimum until the window resets — but never starved or refused.
    /// `u64::MAX` means unlimited.
    pub execute_quota_ns: u64,
    /// Fair-share class for execute scheduling.
    pub priority: PriorityClass,
}

impl Default for TenantConfig {
    /// Unlimited quotas in the default (Silver) class.
    fn default() -> Self {
        TenantConfig {
            staged_byte_quota: u64::MAX,
            execute_quota_ns: u64::MAX,
            priority: PriorityClass::Silver,
        }
    }
}

/// Deployment-wide tenancy policy, part of [`crate::DaemonConfig`] and
/// installable at runtime via `colza.admin.set_tenancy`
/// ([`crate::AdminClient::set_tenancy`]). Disabled by default: per-tenant
/// *accounting* always runs (it is what `colza.admin.metrics` reports),
/// but quotas and the fair-share execute gate only act when `enabled`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyConfig {
    /// Whether quotas and execute scheduling are enforced.
    pub enabled: bool,
    /// Limits for tenants not listed in `tenants`.
    pub default: TenantConfig,
    /// Per-tenant overrides, in deterministic (sorted) order.
    pub tenants: Vec<(TenantId, TenantConfig)>,
    /// Concurrent execute handlers admitted per server when enforcement
    /// is on. `1` fully serializes execute work through the scheduler;
    /// deployments running concurrent *multi-server* collective
    /// pipelines should keep this at or above the number of tenants
    /// executing concurrently (DESIGN.md §14 discusses why).
    pub exec_slots: usize,
    /// Base quantum of the deficit-round-robin scheduler, in virtual
    /// nanoseconds of execute service per visit and per unit weight.
    pub quantum_ns: u64,
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig {
            enabled: false,
            default: TenantConfig::default(),
            tenants: Vec::new(),
            exec_slots: 1,
            quantum_ns: 2_000_000, // 2 ms of execute service per visit
        }
    }
}

impl TenancyConfig {
    /// An enforcing configuration with default limits.
    pub fn enforcing() -> Self {
        TenancyConfig {
            enabled: true,
            ..TenancyConfig::default()
        }
    }

    /// Adds (or replaces) one tenant's limits, keeping the list sorted
    /// so scheduler state is a pure function of the configuration.
    pub fn with_tenant(mut self, id: impl Into<String>, cfg: TenantConfig) -> Self {
        let id = TenantId::new(id);
        self.tenants.retain(|(t, _)| *t != id);
        self.tenants.push((id, cfg));
        self.tenants.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    /// The limits applying to `tenant` (listed override or default).
    pub fn config_for(&self, tenant: &TenantId) -> TenantConfig {
        self.tenants
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|&(_, c)| c)
            .unwrap_or(self.default)
    }
}

/// Metadata accompanying a staged block (field name, dimensions, type —
/// what the paper's `stage` RPC carries besides the memory handle).
///
/// With the codec layer (DESIGN.md §13) the metadata also names how the
/// exposed bytes are encoded: `size` stays the *decoded* payload length
/// (what backends receive and `byte_size()`-style accounting uses) while
/// `encoded_size` is what actually crosses the wire and sits in the
/// staging store. For raw staging the two are equal.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct BlockMeta {
    /// Name of the dataset/field (for diagnostics and policies).
    pub name: String,
    /// Block identifier; drives the default server-selection policy.
    pub block_id: u64,
    /// Iteration this block belongs to.
    pub iteration: u64,
    /// Serialized (decoded) payload size in bytes.
    pub size: usize,
    /// Codec the exposed bytes are encoded with.
    pub codec: CodecId,
    /// Encoded frame size in bytes — the RDMA transfer length.
    pub encoded_size: usize,
    /// Tenant this block belongs to; drives quota accounting and the
    /// per-tenant metrics scrape. [`crate::DistributedPipelineHandle::stage`]
    /// stamps it from the handle's tenant, so callers never fill it.
    pub tenant: TenantId,
}

impl BlockMeta {
    /// Metadata for a raw (unencoded) block: `encoded_size == size`.
    /// [`crate::DistributedPipelineHandle::stage`] overwrites the codec
    /// fields after encoding, so callers never fill them by hand.
    pub fn new(name: impl Into<String>, block_id: u64, iteration: u64, size: usize) -> Self {
        BlockMeta {
            name: name.into(),
            block_id,
            iteration,
            size,
            codec: CodecId::Raw,
            encoded_size: size,
            tenant: TenantId::default(),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PrepareActivateArgs {
    pub pipeline: String,
    pub iteration: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PrepareActivateReply {
    pub epoch: u64,
    pub view: Vec<Address>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CommitActivateArgs {
    pub pipeline: String,
    pub iteration: u64,
    /// The frozen member list all parties agreed on; rank order.
    pub members: Vec<Address>,
    /// Ring parameters for the iteration. Servers rebuild the placement
    /// ring from `(members, ring)` and reconcile their holdings against
    /// it before acknowledging the commit (DESIGN.md §10).
    pub ring: RingConfig,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct AbortActivateArgs {
    pub pipeline: String,
    pub iteration: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct StageArgs {
    pub pipeline: String,
    pub meta: BlockMeta,
    /// Role this copy holds on the receiving server: the ring's primary
    /// owner feeds the backend, replicas only keep the bytes.
    pub role: Role,
    pub bulk: BulkHandle,
}

/// Server-to-server block transfer (migration, drain and repair). The
/// source exposes the payload and the destination pulls it — the same
/// RDMA shape as `colza.stage`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PushBlockArgs {
    pub pipeline: String,
    pub meta: BlockMeta,
    /// Role the copy will hold at the destination.
    pub role: Role,
    pub bulk: BulkHandle,
    /// For delta-diff blocks only: a second exposed region holding the
    /// sender's reconstructed plain payload, so a fresh owner (repair,
    /// rebalance) can seed its chain state without the base frame the
    /// survivor set may have released. `None` for self-decodable codecs.
    pub plain: Option<BulkHandle>,
    /// Size of the `plain` region (0 when absent).
    pub plain_size: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ExecuteArgs {
    pub pipeline: String,
    pub iteration: u64,
    /// Tenant on whose behalf the pipeline executes — the fair-share
    /// scheduler's accounting and ordering key.
    pub tenant: TenantId,
}

/// What one `execute` actually did (DESIGN.md §15). A reactive pipeline
/// whose trigger program decides against running reports `Skipped` — a
/// normal, successful outcome (the staged data was examined and judged
/// uninteresting), not an error. Deterministic: every server of an
/// iteration reports the same variant because trigger inputs come from
/// one fused collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecOutcome {
    /// The pipeline ran over the staged data.
    Ran,
    /// A trigger skipped this iteration; no analysis was performed.
    Skipped,
}

impl ExecOutcome {
    /// Whether this iteration was skipped by a trigger.
    pub fn is_skipped(self) -> bool {
        matches!(self, ExecOutcome::Skipped)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DeactivateArgs {
    pub pipeline: String,
    pub iteration: u64,
    /// Tenant ending the iteration; resets its execute-quota window.
    pub tenant: TenantId,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CreatePipelineArgs {
    /// Backend library name (stand-in for the shared-library path).
    pub library: String,
    /// Pipeline instance name.
    pub name: String,
    /// JSON configuration string passed to the factory.
    pub config: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DestroyPipelineArgs {
    pub name: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FetchResultArgs {
    pub pipeline: String,
}

/// A scrape of one server's trace counters, served by the
/// `colza.admin.metrics` RPC. Counter names follow the span taxonomy in
/// DESIGN.md §9 (`rpc.*`, `na.*`, `ssg.*`, `colza.*`); values are
/// cumulative since the tracer was enabled (or last cleared).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReport {
    /// The simulated process id of the reporting server.
    pub pid: u64,
    /// Whether tracing was enabled when scraped (all-zero counters are
    /// expected when it was not).
    pub enabled: bool,
    /// Payload bytes currently held in the server's staging store —
    /// the drain-aware shrink signal. Reported regardless of whether
    /// tracing is enabled. With codecs enabled these are *encoded*
    /// (on-store) bytes.
    pub staged_bytes: u64,
    /// Decoded size of the held blocks (sum of `BlockMeta::size`), the
    /// codec-independent view of the same holdings. Equal to
    /// `staged_bytes` under raw staging.
    pub decoded_bytes: u64,
    /// Per-tenant breakdown of the held load, in sorted tenant order —
    /// what tenant-aware shrink victim selection and per-tenant scrapes
    /// read. The per-tenant `staged_bytes`/`decoded_bytes` always sum to
    /// the aggregate fields above; a single-tenant deployment reports
    /// one entry (the default tenant) equal to the totals.
    pub tenants: Vec<TenantUsage>,
    /// Counter name → cumulative value, in sorted name order.
    pub counters: Vec<(String, u64)>,
}
