//! RPC argument and reply types shared between client, admin and provider.

use serde::{Deserialize, Serialize};

use na::{Address, BulkHandle};
use store::{RingConfig, Role};

use crate::codec::CodecId;

/// Metadata accompanying a staged block (field name, dimensions, type —
/// what the paper's `stage` RPC carries besides the memory handle).
///
/// With the codec layer (DESIGN.md §13) the metadata also names how the
/// exposed bytes are encoded: `size` stays the *decoded* payload length
/// (what backends receive and `byte_size()`-style accounting uses) while
/// `encoded_size` is what actually crosses the wire and sits in the
/// staging store. For raw staging the two are equal.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct BlockMeta {
    /// Name of the dataset/field (for diagnostics and policies).
    pub name: String,
    /// Block identifier; drives the default server-selection policy.
    pub block_id: u64,
    /// Iteration this block belongs to.
    pub iteration: u64,
    /// Serialized (decoded) payload size in bytes.
    pub size: usize,
    /// Codec the exposed bytes are encoded with.
    pub codec: CodecId,
    /// Encoded frame size in bytes — the RDMA transfer length.
    pub encoded_size: usize,
}

impl BlockMeta {
    /// Metadata for a raw (unencoded) block: `encoded_size == size`.
    /// [`crate::DistributedPipelineHandle::stage`] overwrites the codec
    /// fields after encoding, so callers never fill them by hand.
    pub fn new(name: impl Into<String>, block_id: u64, iteration: u64, size: usize) -> Self {
        BlockMeta {
            name: name.into(),
            block_id,
            iteration,
            size,
            codec: CodecId::Raw,
            encoded_size: size,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PrepareActivateArgs {
    pub pipeline: String,
    pub iteration: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PrepareActivateReply {
    pub epoch: u64,
    pub view: Vec<Address>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CommitActivateArgs {
    pub pipeline: String,
    pub iteration: u64,
    /// The frozen member list all parties agreed on; rank order.
    pub members: Vec<Address>,
    /// Ring parameters for the iteration. Servers rebuild the placement
    /// ring from `(members, ring)` and reconcile their holdings against
    /// it before acknowledging the commit (DESIGN.md §10).
    pub ring: RingConfig,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct AbortActivateArgs {
    pub pipeline: String,
    pub iteration: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct StageArgs {
    pub pipeline: String,
    pub meta: BlockMeta,
    /// Role this copy holds on the receiving server: the ring's primary
    /// owner feeds the backend, replicas only keep the bytes.
    pub role: Role,
    pub bulk: BulkHandle,
}

/// Server-to-server block transfer (migration, drain and repair). The
/// source exposes the payload and the destination pulls it — the same
/// RDMA shape as `colza.stage`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PushBlockArgs {
    pub pipeline: String,
    pub meta: BlockMeta,
    /// Role the copy will hold at the destination.
    pub role: Role,
    pub bulk: BulkHandle,
    /// For delta-diff blocks only: a second exposed region holding the
    /// sender's reconstructed plain payload, so a fresh owner (repair,
    /// rebalance) can seed its chain state without the base frame the
    /// survivor set may have released. `None` for self-decodable codecs.
    pub plain: Option<BulkHandle>,
    /// Size of the `plain` region (0 when absent).
    pub plain_size: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ExecuteArgs {
    pub pipeline: String,
    pub iteration: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DeactivateArgs {
    pub pipeline: String,
    pub iteration: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CreatePipelineArgs {
    /// Backend library name (stand-in for the shared-library path).
    pub library: String,
    /// Pipeline instance name.
    pub name: String,
    /// JSON configuration string passed to the factory.
    pub config: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DestroyPipelineArgs {
    pub name: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FetchResultArgs {
    pub pipeline: String,
}

/// A scrape of one server's trace counters, served by the
/// `colza.admin.metrics` RPC. Counter names follow the span taxonomy in
/// DESIGN.md §9 (`rpc.*`, `na.*`, `ssg.*`, `colza.*`); values are
/// cumulative since the tracer was enabled (or last cleared).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReport {
    /// The simulated process id of the reporting server.
    pub pid: u64,
    /// Whether tracing was enabled when scraped (all-zero counters are
    /// expected when it was not).
    pub enabled: bool,
    /// Payload bytes currently held in the server's staging store —
    /// the drain-aware shrink signal. Reported regardless of whether
    /// tracing is enabled. With codecs enabled these are *encoded*
    /// (on-store) bytes.
    pub staged_bytes: u64,
    /// Decoded size of the held blocks (sum of `BlockMeta::size`), the
    /// codec-independent view of the same holdings. Equal to
    /// `staged_bytes` under raw staging.
    pub decoded_bytes: u64,
    /// Counter name → cumulative value, in sorted name order.
    pub counters: Vec<(String, u64)>,
}
