//! Serialization of staged datasets.
//!
//! The wire format simulations use to expose blocks to the staging area:
//! a small self-describing framing over the `vizkit` data model (the
//! paper stages raw VTK buffers the same way — metadata in the RPC, bulk
//! payload via RDMA).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use vizkit::data::{Attributes, CellType, DataArray, DataSet, ImageData, PolyData, UnstructuredGrid};

use crate::error::{ColzaError, Result};

const TAG_IMAGE: u8 = 1;
const TAG_UGRID: u8 = 2;
const TAG_POLY: u8 = 3;

/// Serializes a dataset to a contiguous buffer (what `stage` exposes for
/// the server's RDMA pull).
pub fn dataset_to_bytes(ds: &DataSet) -> Bytes {
    let mut buf = BytesMut::with_capacity(ds.byte_size() + 256);
    match ds {
        DataSet::Image(img) => {
            buf.put_u8(TAG_IMAGE);
            for d in img.dims {
                buf.put_u64_le(d as u64);
            }
            for v in img.origin.iter().chain(&img.spacing) {
                buf.put_f32_le(*v);
            }
            put_attributes(&mut buf, &img.point_data);
            put_attributes(&mut buf, &img.cell_data);
        }
        DataSet::UGrid(g) => {
            buf.put_u8(TAG_UGRID);
            buf.put_u64_le(g.points.len() as u64);
            for p in &g.points {
                for c in p {
                    buf.put_f32_le(*c);
                }
            }
            buf.put_u64_le(g.connectivity.len() as u64);
            for c in &g.connectivity {
                buf.put_u32_le(*c);
            }
            buf.put_u64_le(g.offsets.len() as u64);
            for o in &g.offsets {
                buf.put_u32_le(*o);
            }
            buf.put_u64_le(g.cell_types.len() as u64);
            for t in &g.cell_types {
                buf.put_u8(match t {
                    CellType::Triangle => 5,
                    CellType::Tetra => 10,
                    CellType::Voxel => 11,
                    CellType::Hexahedron => 12,
                });
            }
            put_attributes(&mut buf, &g.point_data);
            put_attributes(&mut buf, &g.cell_data);
        }
        DataSet::Poly(p) => {
            buf.put_u8(TAG_POLY);
            buf.put_u64_le(p.points.len() as u64);
            for pt in &p.points {
                for c in pt {
                    buf.put_f32_le(*c);
                }
            }
            buf.put_u64_le(p.normals.len() as u64);
            for n in &p.normals {
                for c in n {
                    buf.put_f32_le(*c);
                }
            }
            buf.put_u64_le(p.triangles.len() as u64);
            for t in &p.triangles {
                for v in t {
                    buf.put_u32_le(*v);
                }
            }
            put_attributes(&mut buf, &p.point_data);
        }
    }
    buf.freeze()
}

/// Deserializes a dataset from [`dataset_to_bytes`] output.
pub fn dataset_from_bytes(mut b: &[u8]) -> Result<DataSet> {
    let tag = take_u8(&mut b)?;
    match tag {
        TAG_IMAGE => {
            let mut img = ImageData::new([
                take_u64(&mut b)? as usize,
                take_u64(&mut b)? as usize,
                take_u64(&mut b)? as usize,
            ]);
            for v in img
                .origin
                .iter_mut()
                .chain(img.spacing.iter_mut())
                .collect::<Vec<_>>()
            {
                *v = take_f32(&mut b)?;
            }
            img.point_data = take_attributes(&mut b)?;
            img.cell_data = take_attributes(&mut b)?;
            Ok(DataSet::Image(img))
        }
        TAG_UGRID => {
            let mut g = UnstructuredGrid::new();
            let npts = take_u64(&mut b)? as usize;
            g.points = (0..npts)
                .map(|_| -> Result<[f32; 3]> {
                    Ok([take_f32(&mut b)?, take_f32(&mut b)?, take_f32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            let nc = take_u64(&mut b)? as usize;
            g.connectivity = (0..nc).map(|_| take_u32(&mut b)).collect::<Result<_>>()?;
            let no = take_u64(&mut b)? as usize;
            g.offsets = (0..no).map(|_| take_u32(&mut b)).collect::<Result<_>>()?;
            let nt = take_u64(&mut b)? as usize;
            g.cell_types = (0..nt)
                .map(|_| -> Result<CellType> {
                    Ok(match take_u8(&mut b)? {
                        5 => CellType::Triangle,
                        10 => CellType::Tetra,
                        11 => CellType::Voxel,
                        12 => CellType::Hexahedron,
                        x => return Err(ColzaError::Codec(format!("bad cell type {x}"))),
                    })
                })
                .collect::<Result<_>>()?;
            g.point_data = take_attributes(&mut b)?;
            g.cell_data = take_attributes(&mut b)?;
            g.validate().map_err(ColzaError::Codec)?;
            Ok(DataSet::UGrid(g))
        }
        TAG_POLY => {
            let mut p = PolyData::new();
            let npts = take_u64(&mut b)? as usize;
            p.points = (0..npts)
                .map(|_| -> Result<[f32; 3]> {
                    Ok([take_f32(&mut b)?, take_f32(&mut b)?, take_f32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            let nn = take_u64(&mut b)? as usize;
            p.normals = (0..nn)
                .map(|_| -> Result<[f32; 3]> {
                    Ok([take_f32(&mut b)?, take_f32(&mut b)?, take_f32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            let ntri = take_u64(&mut b)? as usize;
            p.triangles = (0..ntri)
                .map(|_| -> Result<[u32; 3]> {
                    Ok([take_u32(&mut b)?, take_u32(&mut b)?, take_u32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            p.point_data = take_attributes(&mut b)?;
            p.validate().map_err(ColzaError::Codec)?;
            Ok(DataSet::Poly(p))
        }
        x => Err(ColzaError::Codec(format!("bad dataset tag {x}"))),
    }
}

fn put_attributes(buf: &mut BytesMut, at: &Attributes) {
    buf.put_u64_le(at.len() as u64);
    for (name, arr) in at.iter() {
        buf.put_u64_le(name.len() as u64);
        buf.put_slice(name.as_bytes());
        let (tag, bytes) = match arr {
            DataArray::F32(_) => (0u8, arr.to_le_bytes()),
            DataArray::F64(_) => (1u8, arr.to_le_bytes()),
            DataArray::I32(_) => (2u8, arr.to_le_bytes()),
            DataArray::U8(_) => (3u8, arr.to_le_bytes()),
        };
        buf.put_u8(tag);
        buf.put_u64_le(bytes.len() as u64);
        buf.put_slice(&bytes);
    }
}

fn take_attributes(b: &mut &[u8]) -> Result<Attributes> {
    let n = take_u64(b)? as usize;
    let mut at = Attributes::new();
    for _ in 0..n {
        let name_len = take_u64(b)? as usize;
        if b.len() < name_len {
            return Err(ColzaError::Codec("truncated name".to_string()));
        }
        let name = String::from_utf8(b[..name_len].to_vec())
            .map_err(|_| ColzaError::Codec("bad utf8".to_string()))?;
        b.advance(name_len);
        let tag = take_u8(b)?;
        let len = take_u64(b)? as usize;
        if b.len() < len {
            return Err(ColzaError::Codec("truncated array".to_string()));
        }
        let payload = &b[..len];
        let arr = match tag {
            0 => DataArray::f32_from_le_bytes(payload),
            1 => DataArray::F64(
                payload
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            2 => DataArray::i32_from_le_bytes(payload),
            3 => DataArray::U8(payload.to_vec()),
            x => return Err(ColzaError::Codec(format!("bad array tag {x}"))),
        };
        b.advance(len);
        at.set(name, arr);
    }
    Ok(at)
}

fn take_u8(b: &mut &[u8]) -> Result<u8> {
    if b.is_empty() {
        return Err(ColzaError::Codec("eof".to_string()));
    }
    let v = b[0];
    b.advance(1);
    Ok(v)
}

fn take_u32(b: &mut &[u8]) -> Result<u32> {
    if b.len() < 4 {
        return Err(ColzaError::Codec("eof".to_string()));
    }
    let v = u32::from_le_bytes(b[..4].try_into().unwrap());
    b.advance(4);
    Ok(v)
}

fn take_u64(b: &mut &[u8]) -> Result<u64> {
    if b.len() < 8 {
        return Err(ColzaError::Codec("eof".to_string()));
    }
    let v = u64::from_le_bytes(b[..8].try_into().unwrap());
    b.advance(8);
    Ok(v)
}

fn take_f32(b: &mut &[u8]) -> Result<f32> {
    if b.len() < 4 {
        return Err(ColzaError::Codec("eof".to_string()));
    }
    let v = f32::from_le_bytes(b[..4].try_into().unwrap());
    b.advance(4);
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> DataSet {
        let mut img = ImageData::new([3, 2, 2]);
        img.origin = [1.0, 2.0, 3.0];
        img.spacing = [0.5, 0.5, 0.5];
        img.point_data
            .set("u", DataArray::F32((0..12).map(|i| i as f32).collect()));
        img.cell_data.set("c", DataArray::I32(vec![7, -7]));
        DataSet::Image(img)
    }

    fn ugrid() -> DataSet {
        let mut g = UnstructuredGrid::new();
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..2 {
                    g.points.push([i as f32, j as f32, k as f32]);
                }
            }
        }
        g.add_cell(CellType::Voxel, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g.cell_data.set("v", DataArray::F64(vec![2.5]));
        DataSet::UGrid(g)
    }

    fn poly() -> DataSet {
        let mut p = PolyData::new();
        p.add_point([0.0, 0.0, 0.0], Some([0.0, 0.0, 1.0]));
        p.add_point([1.0, 0.0, 0.0], Some([0.0, 0.0, 1.0]));
        p.add_point([0.0, 1.0, 0.0], Some([0.0, 0.0, 1.0]));
        p.triangles.push([0, 1, 2]);
        p.point_data.set("s", DataArray::U8(vec![1, 2, 3]));
        DataSet::Poly(p)
    }

    #[test]
    fn image_roundtrip() {
        let ds = image();
        let back = dataset_from_bytes(&dataset_to_bytes(&ds)).unwrap();
        let (DataSet::Image(a), DataSet::Image(b)) = (&ds, &back) else {
            panic!("wrong variant");
        };
        assert_eq!(a.dims, b.dims);
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.point_data, b.point_data);
        assert_eq!(a.cell_data, b.cell_data);
    }

    #[test]
    fn ugrid_roundtrip() {
        let ds = ugrid();
        let back = dataset_from_bytes(&dataset_to_bytes(&ds)).unwrap();
        let (DataSet::UGrid(a), DataSet::UGrid(b)) = (&ds, &back) else {
            panic!("wrong variant");
        };
        assert_eq!(a.points, b.points);
        assert_eq!(a.connectivity, b.connectivity);
        assert_eq!(a.cell_types, b.cell_types);
        // F64 array is widened to F32 on the wire? No: preserved as F64.
        assert_eq!(b.cell_data.get("v").unwrap().get(0), 2.5);
    }

    #[test]
    fn poly_roundtrip() {
        let ds = poly();
        let back = dataset_from_bytes(&dataset_to_bytes(&ds)).unwrap();
        let (DataSet::Poly(a), DataSet::Poly(b)) = (&ds, &back) else {
            panic!("wrong variant");
        };
        assert_eq!(a.points, b.points);
        assert_eq!(a.normals, b.normals);
        assert_eq!(a.triangles, b.triangles);
        assert_eq!(a.point_data, b.point_data);
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(dataset_from_bytes(&[]).is_err());
        assert!(dataset_from_bytes(&[99]).is_err());
        assert!(dataset_from_bytes(&[1, 2, 3]).is_err());
        let mut good = dataset_to_bytes(&image()).to_vec();
        good.truncate(good.len() / 2);
        assert!(dataset_from_bytes(&good).is_err());
    }
}
