//! Serialization and compression of staged datasets.
//!
//! Two layers live here:
//!
//! 1. **Dataset serialization** ([`dataset_to_bytes`] / [`dataset_from_bytes`]):
//!    the self-describing framing over the `vizkit` data model (the paper
//!    stages raw VTK buffers the same way — metadata in the RPC, bulk
//!    payload via RDMA).
//!
//! 2. **The pluggable codec layer** (DESIGN.md §13): byte-shuffle +
//!    LZ-style lossless compression for float grids, an error-bounded
//!    lossy mode, and iteration-delta encoding for slowly varying fields.
//!    Clients encode a block **once** before exposing it for RDMA; the
//!    encoded frame is what the staging store holds, replicates, repairs
//!    and rebalances (the same `Bytes` refcount throughout), and servers
//!    decode only when feeding a primary copy to its backend.
//!
//! Every codec decision is a pure function of `(CodecConfig, dataset
//! name, payload, delta base)` — no wall-clock, no randomness — so
//! same-seed simulated traces stay byte-identical with codecs enabled.
//! Codec CPU is charged to the virtual clock as a deterministic modeled
//! cost per byte (`compute_scale`-independent), mirroring how the rest of
//! the simulator accounts compute.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use vizkit::data::{Attributes, CellType, DataArray, DataSet, ImageData, PolyData, UnstructuredGrid};

use crate::error::{ColzaError, Result};

const TAG_IMAGE: u8 = 1;
const TAG_UGRID: u8 = 2;
const TAG_POLY: u8 = 3;

/// Typed failure of the codec layer — both the dataset serializer and
/// the compression codecs surface through this (wrapped in
/// [`ColzaError::Codec`]), so a truncated or corrupt frame is an error
/// value, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The input ended before the declared content (`what` names the
    /// element being read).
    Truncated(&'static str),
    /// The frame does not start with the codec magic byte.
    BadMagic(u8),
    /// The frame (or block metadata) names an unknown codec.
    BadCodecId(u8),
    /// Decoded output length differs from the declared decoded length.
    LengthMismatch {
        /// Length the frame header declared.
        expected: usize,
        /// Length actually produced.
        got: usize,
    },
    /// A delta frame references a base payload this process does not
    /// hold (the chain should have been anchored — DESIGN.md §13).
    MissingDeltaBase {
        /// Iteration of the missing base.
        base_iteration: u64,
    },
    /// Lossy mode configured with a non-positive or non-finite bound.
    BadErrorBound(f32),
    /// The payload did not parse as a dataset (structural codecs need
    /// the dataset framing), or a dataset field was malformed.
    Dataset(String),
    /// A structurally invalid compressed body.
    BadFrame(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            CodecError::BadMagic(b) => write!(f, "bad frame magic {b:#04x}"),
            CodecError::BadCodecId(b) => write!(f, "unknown codec id {b}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "decoded length {got} != declared {expected}")
            }
            CodecError::MissingDeltaBase { base_iteration } => {
                write!(f, "delta base from iteration {base_iteration} not held")
            }
            CodecError::BadErrorBound(eb) => write!(f, "bad lossy error bound {eb}"),
            CodecError::Dataset(m) => write!(f, "bad dataset: {m}"),
            CodecError::BadFrame(m) => write!(f, "bad frame: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for ColzaError {
    fn from(e: CodecError) -> Self {
        ColzaError::Codec(e)
    }
}

fn dataset_err(m: impl Into<String>) -> ColzaError {
    ColzaError::Codec(CodecError::Dataset(m.into()))
}

/// Serializes a dataset to a contiguous buffer (what `stage` exposes for
/// the server's RDMA pull).
pub fn dataset_to_bytes(ds: &DataSet) -> Bytes {
    let mut buf = BytesMut::with_capacity(ds.byte_size() + 256);
    match ds {
        DataSet::Image(img) => {
            buf.put_u8(TAG_IMAGE);
            for d in img.dims {
                buf.put_u64_le(d as u64);
            }
            for v in img.origin.iter().chain(&img.spacing) {
                buf.put_f32_le(*v);
            }
            put_attributes(&mut buf, &img.point_data);
            put_attributes(&mut buf, &img.cell_data);
        }
        DataSet::UGrid(g) => {
            buf.put_u8(TAG_UGRID);
            buf.put_u64_le(g.points.len() as u64);
            for p in &g.points {
                for c in p {
                    buf.put_f32_le(*c);
                }
            }
            buf.put_u64_le(g.connectivity.len() as u64);
            for c in &g.connectivity {
                buf.put_u32_le(*c);
            }
            buf.put_u64_le(g.offsets.len() as u64);
            for o in &g.offsets {
                buf.put_u32_le(*o);
            }
            buf.put_u64_le(g.cell_types.len() as u64);
            for t in &g.cell_types {
                buf.put_u8(match t {
                    CellType::Triangle => 5,
                    CellType::Tetra => 10,
                    CellType::Voxel => 11,
                    CellType::Hexahedron => 12,
                });
            }
            put_attributes(&mut buf, &g.point_data);
            put_attributes(&mut buf, &g.cell_data);
        }
        DataSet::Poly(p) => {
            buf.put_u8(TAG_POLY);
            buf.put_u64_le(p.points.len() as u64);
            for pt in &p.points {
                for c in pt {
                    buf.put_f32_le(*c);
                }
            }
            buf.put_u64_le(p.normals.len() as u64);
            for n in &p.normals {
                for c in n {
                    buf.put_f32_le(*c);
                }
            }
            buf.put_u64_le(p.triangles.len() as u64);
            for t in &p.triangles {
                for v in t {
                    buf.put_u32_le(*v);
                }
            }
            put_attributes(&mut buf, &p.point_data);
        }
    }
    buf.freeze()
}

/// Deserializes a dataset from [`dataset_to_bytes`] output.
pub fn dataset_from_bytes(mut b: &[u8]) -> Result<DataSet> {
    let tag = take_u8(&mut b)?;
    match tag {
        TAG_IMAGE => {
            let mut img = ImageData::new([
                take_u64(&mut b)? as usize,
                take_u64(&mut b)? as usize,
                take_u64(&mut b)? as usize,
            ]);
            for v in img
                .origin
                .iter_mut()
                .chain(img.spacing.iter_mut())
                .collect::<Vec<_>>()
            {
                *v = take_f32(&mut b)?;
            }
            img.point_data = take_attributes(&mut b)?;
            img.cell_data = take_attributes(&mut b)?;
            Ok(DataSet::Image(img))
        }
        TAG_UGRID => {
            let mut g = UnstructuredGrid::new();
            let npts = take_u64(&mut b)? as usize;
            g.points = (0..npts)
                .map(|_| -> Result<[f32; 3]> {
                    Ok([take_f32(&mut b)?, take_f32(&mut b)?, take_f32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            let nc = take_u64(&mut b)? as usize;
            g.connectivity = (0..nc).map(|_| take_u32(&mut b)).collect::<Result<_>>()?;
            let no = take_u64(&mut b)? as usize;
            g.offsets = (0..no).map(|_| take_u32(&mut b)).collect::<Result<_>>()?;
            let nt = take_u64(&mut b)? as usize;
            g.cell_types = (0..nt)
                .map(|_| -> Result<CellType> {
                    Ok(match take_u8(&mut b)? {
                        5 => CellType::Triangle,
                        10 => CellType::Tetra,
                        11 => CellType::Voxel,
                        12 => CellType::Hexahedron,
                        x => return Err(dataset_err(format!("bad cell type {x}"))),
                    })
                })
                .collect::<Result<_>>()?;
            g.point_data = take_attributes(&mut b)?;
            g.cell_data = take_attributes(&mut b)?;
            g.validate().map_err(dataset_err)?;
            Ok(DataSet::UGrid(g))
        }
        TAG_POLY => {
            let mut p = PolyData::new();
            let npts = take_u64(&mut b)? as usize;
            p.points = (0..npts)
                .map(|_| -> Result<[f32; 3]> {
                    Ok([take_f32(&mut b)?, take_f32(&mut b)?, take_f32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            let nn = take_u64(&mut b)? as usize;
            p.normals = (0..nn)
                .map(|_| -> Result<[f32; 3]> {
                    Ok([take_f32(&mut b)?, take_f32(&mut b)?, take_f32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            let ntri = take_u64(&mut b)? as usize;
            p.triangles = (0..ntri)
                .map(|_| -> Result<[u32; 3]> {
                    Ok([take_u32(&mut b)?, take_u32(&mut b)?, take_u32(&mut b)?])
                })
                .collect::<Result<_>>()?;
            p.point_data = take_attributes(&mut b)?;
            p.validate().map_err(dataset_err)?;
            Ok(DataSet::Poly(p))
        }
        x => Err(dataset_err(format!("bad dataset tag {x}"))),
    }
}

fn put_attributes(buf: &mut BytesMut, at: &Attributes) {
    buf.put_u64_le(at.len() as u64);
    for (name, arr) in at.iter() {
        buf.put_u64_le(name.len() as u64);
        buf.put_slice(name.as_bytes());
        let (tag, bytes) = match arr {
            DataArray::F32(_) => (0u8, arr.to_le_bytes()),
            DataArray::F64(_) => (1u8, arr.to_le_bytes()),
            DataArray::I32(_) => (2u8, arr.to_le_bytes()),
            DataArray::U8(_) => (3u8, arr.to_le_bytes()),
        };
        buf.put_u8(tag);
        buf.put_u64_le(bytes.len() as u64);
        buf.put_slice(&bytes);
    }
}

fn take_attributes(b: &mut &[u8]) -> Result<Attributes> {
    let n = take_u64(b)? as usize;
    let mut at = Attributes::new();
    for _ in 0..n {
        let name_len = take_u64(b)? as usize;
        if b.len() < name_len {
            return Err(CodecError::Truncated("attribute name").into());
        }
        let name = String::from_utf8(b[..name_len].to_vec())
            .map_err(|_| dataset_err("attribute name is not utf8"))?;
        b.advance(name_len);
        let tag = take_u8(b)?;
        let len = take_u64(b)? as usize;
        if b.len() < len {
            return Err(CodecError::Truncated("attribute array").into());
        }
        let payload = &b[..len];
        let arr = match tag {
            0 => DataArray::f32_from_le_bytes(payload),
            1 => DataArray::F64(
                payload
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            2 => DataArray::i32_from_le_bytes(payload),
            3 => DataArray::U8(payload.to_vec()),
            x => return Err(dataset_err(format!("bad array tag {x}"))),
        };
        b.advance(len);
        at.set(name, arr);
    }
    Ok(at)
}

fn take_u8(b: &mut &[u8]) -> Result<u8> {
    if b.is_empty() {
        return Err(CodecError::Truncated("u8").into());
    }
    let v = b[0];
    b.advance(1);
    Ok(v)
}

fn take_u32(b: &mut &[u8]) -> Result<u32> {
    if b.len() < 4 {
        return Err(CodecError::Truncated("u32").into());
    }
    let v = u32::from_le_bytes(b[..4].try_into().unwrap());
    b.advance(4);
    Ok(v)
}

fn take_u64(b: &mut &[u8]) -> Result<u64> {
    if b.len() < 8 {
        return Err(CodecError::Truncated("u64").into());
    }
    let v = u64::from_le_bytes(b[..8].try_into().unwrap());
    b.advance(8);
    Ok(v)
}

fn take_f32(b: &mut &[u8]) -> Result<f32> {
    if b.len() < 4 {
        return Err(CodecError::Truncated("f32").into());
    }
    let v = f32::from_le_bytes(b[..4].try_into().unwrap());
    b.advance(4);
    Ok(v)
}

// ====================================================================
// The codec layer: frame format, configuration and the codecs proper.
// ====================================================================

/// How one staged block's payload is encoded on the wire and in the
/// staging store. Carried in [`crate::BlockMeta`] so every holder of a
/// copy knows how to decode it without out-of-band configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CodecId {
    /// Identity: the staged bytes are the serialized payload.
    Raw,
    /// Byte-shuffle (stride 4) + LZ, lossless.
    ShuffleLz,
    /// Error-bounded quantization of float fields, then shuffle + LZ.
    Lossy,
    /// A delta-chain **anchor**: shuffle + LZ of the full payload, but
    /// flagged so every holder reconstructs and remembers it as the
    /// chain base for the following iterations.
    DeltaFull,
    /// XOR-delta against the previous chain payload, then shuffle + LZ
    /// of the residual. Decoding needs the base.
    DeltaDiff,
}

impl CodecId {
    /// Stable numeric id (what the staging store records).
    pub fn as_u8(self) -> u8 {
        match self {
            CodecId::Raw => 0,
            CodecId::ShuffleLz => 1,
            CodecId::Lossy => 2,
            CodecId::DeltaFull => 3,
            CodecId::DeltaDiff => 4,
        }
    }

    /// Inverse of [`CodecId::as_u8`].
    pub fn from_u8(v: u8) -> std::result::Result<Self, CodecError> {
        Ok(match v {
            0 => CodecId::Raw,
            1 => CodecId::ShuffleLz,
            2 => CodecId::Lossy,
            3 => CodecId::DeltaFull,
            4 => CodecId::DeltaDiff,
            x => return Err(CodecError::BadCodecId(x)),
        })
    }

    /// Whether copies of this codec participate in a delta chain: every
    /// holder reconstructs the plain payload at admit time and keeps it,
    /// so a later promotion (or push to a fresh owner) never needs a
    /// base that was already released.
    pub fn is_chain(self) -> bool {
        matches!(self, CodecId::DeltaFull | CodecId::DeltaDiff)
    }

    /// Short lowercase name (counter suffixes, bench rows).
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Raw => "raw",
            CodecId::ShuffleLz => "shuffle_lz",
            CodecId::Lossy => "lossy",
            CodecId::DeltaFull => "delta_full",
            CodecId::DeltaDiff => "delta_diff",
        }
    }
}

/// Per-dataset codec selection (what the user configures).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CodecSpec {
    /// No encoding.
    Raw,
    /// Lossless byte-shuffle + LZ.
    ShuffleLz,
    /// Quantize float fields to `|v - v'| <= error_bound` elementwise,
    /// then shuffle + LZ. Geometry (points/normals/connectivity) stays
    /// exact; only attribute arrays are quantized.
    Lossy {
        /// Maximum absolute elementwise error on float attribute values.
        error_bound: f32,
    },
    /// Iteration-delta against the previously staged payload of the same
    /// `(dataset, block)`, anchored (re-sent in full) whenever the
    /// member view changed, the payload size changed, or no base exists.
    Delta,
}

/// Codec selection for a deployment: a default plus per-dataset-name
/// overrides. Lives on [`crate::DaemonConfig`] (advertised through the
/// `colza.get_codec_config` RPC) and on client handles
/// ([`crate::DistributedPipelineHandle::set_codec`]). Selection is a
/// pure function of `(config, dataset name)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CodecConfig {
    /// Codec for datasets without an override.
    pub default: CodecSpec,
    /// `(dataset name, codec)` overrides; first match wins.
    pub per_dataset: Vec<(String, CodecSpec)>,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            default: CodecSpec::Raw,
            per_dataset: Vec::new(),
        }
    }
}

impl CodecConfig {
    /// The same codec for every dataset.
    pub fn uniform(spec: CodecSpec) -> Self {
        CodecConfig {
            default: spec,
            per_dataset: Vec::new(),
        }
    }

    /// Adds a per-dataset override (builder style).
    pub fn with_dataset(mut self, dataset: &str, spec: CodecSpec) -> Self {
        self.per_dataset.push((dataset.to_string(), spec));
        self
    }

    /// The codec for one dataset name.
    pub fn spec_for(&self, dataset: &str) -> CodecSpec {
        self.per_dataset
            .iter()
            .find(|(n, _)| n == dataset)
            .map(|&(_, s)| s)
            .unwrap_or(self.default)
    }
}

/// The result of encoding one payload: the codec actually used (the
/// delta spec resolves to full or diff) and the wire frame. For
/// [`CodecId::Raw`] the frame **is** the payload (same refcount).
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Codec the frame is encoded with.
    pub codec: CodecId,
    /// The wire/store form of the payload.
    pub frame: Bytes,
}

/// Parsed header of a non-raw frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameInfo {
    /// Codec id recorded in the frame.
    pub codec: CodecId,
    /// Length of the decoded payload.
    pub decoded_len: usize,
    /// Iteration of the delta base ([`CodecId::DeltaDiff`] only).
    pub base_iteration: Option<u64>,
    /// Quantization bound ([`CodecId::Lossy`] only).
    pub error_bound: Option<f32>,
}

const FRAME_MAGIC: u8 = 0xC5;

/// Encodes one payload under `spec`. `base` is the previous chain
/// payload for [`CodecSpec::Delta`] (`(plain bytes, its iteration)`);
/// without it a delta spec emits an anchor frame. This is the single
/// encode entry point — a block is encoded here exactly once per stage,
/// and everything downstream moves the returned `Bytes` by refcount.
pub fn encode_block(spec: CodecSpec, payload: &Bytes, base: Option<(&Bytes, u64)>) -> Result<Encoded> {
    let (codec, frame) = match spec {
        CodecSpec::Raw => {
            // Identity, and deliberately uninstrumented: raw staging must
            // be byte- and cycle-identical to the pre-codec data plane.
            return Ok(Encoded {
                codec: CodecId::Raw,
                frame: payload.clone(),
            });
        }
        CodecSpec::ShuffleLz => (
            CodecId::ShuffleLz,
            build_frame(CodecId::ShuffleLz, payload.len(), None, None, &shuffle4(payload)),
        ),
        CodecSpec::Lossy { error_bound } => {
            let quantized = quantize_payload(payload, error_bound)?;
            (
                CodecId::Lossy,
                build_frame(
                    CodecId::Lossy,
                    quantized.len(),
                    None,
                    Some(error_bound),
                    &shuffle4(&quantized),
                ),
            )
        }
        CodecSpec::Delta => match base {
            Some((b, base_iteration)) if b.len() == payload.len() => {
                let mut residual = payload.to_vec();
                xor_in_place(&mut residual, b);
                (
                    CodecId::DeltaDiff,
                    build_frame(
                        CodecId::DeltaDiff,
                        payload.len(),
                        Some(base_iteration),
                        None,
                        &shuffle4(&residual),
                    ),
                )
            }
            _ => (
                CodecId::DeltaFull,
                build_frame(CodecId::DeltaFull, payload.len(), None, None, &shuffle4(payload)),
            ),
        },
    };
    let ns = modeled_encode_ns(codec, payload.len());
    charge_ns(ns);
    hpcsim::trace::counter_add("colza.codec.encode.bytes_in", payload.len() as u64);
    hpcsim::trace::counter_add("colza.codec.encode.bytes_out", frame.len() as u64);
    hpcsim::trace::counter_add("colza.codec.encode.ns", ns);
    hpcsim::trace::counter_add(format!("colza.codec.enc.{}.frames", codec.name()), 1);
    Ok(Encoded { codec, frame })
}

/// Decodes one stored/wire frame back to the plain payload. `base` is
/// the chain base for [`CodecId::DeltaDiff`]. [`CodecId::Raw`] returns
/// the input `Bytes` by refcount (zero copy).
pub fn decode_block(codec: CodecId, data: &Bytes, base: Option<&Bytes>) -> Result<Bytes> {
    if codec == CodecId::Raw {
        return Ok(data.clone());
    }
    let info = frame_info(data)?;
    if info.codec != codec {
        return Err(CodecError::BadFrame("frame codec disagrees with metadata").into());
    }
    let body = &data[frame_header_len(info.codec)..];
    let shuffled = lz_decompress(body, info.decoded_len)?;
    let mut plain = unshuffle4(&shuffled);
    if codec == CodecId::DeltaDiff {
        let base_iteration = info.base_iteration.unwrap_or(0);
        let b = base.ok_or(CodecError::MissingDeltaBase { base_iteration })?;
        if b.len() != plain.len() {
            return Err(CodecError::LengthMismatch {
                expected: plain.len(),
                got: b.len(),
            }
            .into());
        }
        xor_in_place(&mut plain, b);
    }
    let ns = modeled_decode_ns(codec, plain.len());
    charge_ns(ns);
    hpcsim::trace::counter_add("colza.codec.decode.bytes_in", data.len() as u64);
    hpcsim::trace::counter_add("colza.codec.decode.bytes_out", plain.len() as u64);
    hpcsim::trace::counter_add("colza.codec.decode.ns", ns);
    Ok(Bytes::from(plain))
}

/// Parses a non-raw frame header without decoding the body.
pub fn frame_info(frame: &[u8]) -> Result<FrameInfo> {
    let mut b = frame;
    let magic = take_u8(&mut b).map_err(|_| CodecError::Truncated("frame magic"))?;
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic(magic).into());
    }
    let codec = CodecId::from_u8(take_u8(&mut b).map_err(|_| CodecError::Truncated("frame codec"))?)?;
    if codec == CodecId::Raw {
        return Err(CodecError::BadFrame("raw payloads carry no frame header").into());
    }
    let decoded_len = take_u64(&mut b).map_err(|_| CodecError::Truncated("frame decoded_len"))? as usize;
    let base_iteration = if codec == CodecId::DeltaDiff {
        Some(take_u64(&mut b).map_err(|_| CodecError::Truncated("frame base_iteration"))?)
    } else {
        None
    };
    let error_bound = if codec == CodecId::Lossy {
        Some(take_f32(&mut b).map_err(|_| CodecError::Truncated("frame error_bound"))?)
    } else {
        None
    };
    Ok(FrameInfo {
        codec,
        decoded_len,
        base_iteration,
        error_bound,
    })
}

fn frame_header_len(codec: CodecId) -> usize {
    // magic + codec + decoded_len, plus per-codec extras.
    10 + match codec {
        CodecId::DeltaDiff => 8,
        CodecId::Lossy => 4,
        _ => 0,
    }
}

fn build_frame(
    codec: CodecId,
    decoded_len: usize,
    base_iteration: Option<u64>,
    error_bound: Option<f32>,
    shuffled: &[u8],
) -> Bytes {
    let body = lz_compress(shuffled);
    let mut buf = BytesMut::with_capacity(frame_header_len(codec) + body.len());
    buf.put_u8(FRAME_MAGIC);
    buf.put_u8(codec.as_u8());
    buf.put_u64_le(decoded_len as u64);
    if let Some(it) = base_iteration {
        buf.put_u64_le(it);
    }
    if let Some(eb) = error_bound {
        buf.put_f32_le(eb);
    }
    buf.put_slice(&body);
    buf.freeze()
}

/// Deterministic modeled CPU cost of encoding (virtual ns). Pure in
/// `(codec, bytes)` so charging it preserves same-seed trace identity.
pub fn modeled_encode_ns(codec: CodecId, bytes: usize) -> u64 {
    let b = bytes as u64;
    match codec {
        CodecId::Raw => 0,
        CodecId::ShuffleLz | CodecId::DeltaFull => b / 2,
        CodecId::DeltaDiff => (b * 5) / 8,
        CodecId::Lossy => (b * 3) / 4,
    }
}

/// Deterministic modeled CPU cost of decoding (virtual ns).
pub fn modeled_decode_ns(codec: CodecId, bytes: usize) -> u64 {
    match codec {
        CodecId::Raw => 0,
        _ => bytes as u64 / 4,
    }
}

fn charge_ns(ns: u64) {
    if ns > 0 {
        if let Some(ctx) = hpcsim::process::try_current() {
            ctx.advance(ns);
        }
    }
}

fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

// --- byte shuffle ----------------------------------------------------

/// Transposes the buffer into 4 byte planes (plus a verbatim tail for
/// `len % 4`): little-endian f32 neighbours in smooth fields share their
/// high bytes, so planes are long runs the LZ stage can match.
fn shuffle4(src: &[u8]) -> Vec<u8> {
    let n = src.len() / 4;
    let mut out = Vec::with_capacity(src.len());
    for j in 0..4 {
        for i in 0..n {
            out.push(src[i * 4 + j]);
        }
    }
    out.extend_from_slice(&src[n * 4..]);
    out
}

fn unshuffle4(src: &[u8]) -> Vec<u8> {
    let n = src.len() / 4;
    let mut out = vec![0u8; src.len()];
    let mut k = 0;
    for j in 0..4 {
        for i in 0..n {
            out[i * 4 + j] = src[k];
            k += 1;
        }
    }
    out[n * 4..].copy_from_slice(&src[n * 4..]);
    out
}

// --- LZ --------------------------------------------------------------
//
// An LZ77 byte compressor in the LZ4 block style: sequences of
// `token(lit_len | match_len)`, literals, 16-bit offset, with 255-run
// length extensions; the final sequence is literals only. Greedy
// single-probe hash matching — simple, allocation-light, and entirely
// deterministic.

const LZ_MIN_MATCH: usize = 4;
const LZ_WINDOW: usize = 0xFFFF;
const LZ_HASH_BITS: u32 = 13;

fn lz_hash(v: u32) -> usize {
    (v.wrapping_mul(0x9E37_79B1) >> (32 - LZ_HASH_BITS)) as usize
}

fn read_u32_at(s: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(s[i..i + 4].try_into().unwrap())
}

fn put_len(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn lz_compress(src: &[u8]) -> Vec<u8> {
    let n = src.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }
    let mut table = vec![usize::MAX; 1 << LZ_HASH_BITS];
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + LZ_MIN_MATCH <= n {
        let h = lz_hash(read_u32_at(src, i));
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX
            && i - cand <= LZ_WINDOW
            && read_u32_at(src, cand) == read_u32_at(src, i)
        {
            let mut mlen = LZ_MIN_MATCH;
            while i + mlen < n && src[cand + mlen] == src[i + mlen] {
                mlen += 1;
            }
            let lits = &src[anchor..i];
            let lnib = lits.len().min(15);
            let mnib = (mlen - LZ_MIN_MATCH).min(15);
            out.push(((lnib as u8) << 4) | mnib as u8);
            if lits.len() >= 15 {
                put_len(&mut out, lits.len() - 15);
            }
            out.extend_from_slice(lits);
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            if mlen - LZ_MIN_MATCH >= 15 {
                put_len(&mut out, mlen - LZ_MIN_MATCH - 15);
            }
            i += mlen;
            anchor = i;
        } else {
            i += 1;
        }
    }
    // Final literals-only sequence (possibly empty).
    let lits = &src[anchor..];
    let lnib = lits.len().min(15);
    out.push((lnib as u8) << 4);
    if lits.len() >= 15 {
        put_len(&mut out, lits.len() - 15);
    }
    out.extend_from_slice(lits);
    out
}

fn take_len(src: &[u8], i: &mut usize) -> std::result::Result<usize, CodecError> {
    let mut v = 0usize;
    loop {
        if *i >= src.len() {
            return Err(CodecError::Truncated("lz length extension"));
        }
        let b = src[*i];
        *i += 1;
        v += b as usize;
        if b != 255 {
            return Ok(v);
        }
    }
}

fn lz_decompress(src: &[u8], expected: usize) -> std::result::Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected);
    if src.is_empty() {
        if expected == 0 {
            return Ok(out);
        }
        return Err(CodecError::Truncated("lz body"));
    }
    let mut i = 0usize;
    loop {
        let token = src[i];
        i += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit += take_len(src, &mut i)?;
        }
        if i + lit > src.len() {
            return Err(CodecError::Truncated("lz literals"));
        }
        if out.len() + lit > expected {
            return Err(CodecError::BadFrame("literals overrun declared length"));
        }
        out.extend_from_slice(&src[i..i + lit]);
        i += lit;
        if i == src.len() {
            break;
        }
        if i + 2 > src.len() {
            return Err(CodecError::Truncated("lz match offset"));
        }
        let off = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
        i += 2;
        if off == 0 || off > out.len() {
            return Err(CodecError::BadFrame("match offset out of range"));
        }
        let mut mlen = (token & 0x0F) as usize + LZ_MIN_MATCH;
        if token & 0x0F == 15 {
            mlen += take_len(src, &mut i)?;
        }
        if out.len() + mlen > expected {
            return Err(CodecError::BadFrame("match overruns declared length"));
        }
        let start = out.len() - off;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != expected {
        return Err(CodecError::LengthMismatch {
            expected,
            got: out.len(),
        });
    }
    Ok(out)
}

// --- lossy quantization ----------------------------------------------

/// Quantizes every float attribute array of a serialized dataset to
/// `|v - v'| <= error_bound` elementwise (step = 2·bound, so rounding to
/// the nearest step keeps the error within the bound). Geometry and
/// integer arrays pass through exactly; non-finite values (NaN/Inf) are
/// kept verbatim, as are values too large for exact integer rounding.
/// Returns the re-serialized (same-length) dataset bytes.
fn quantize_payload(payload: &Bytes, error_bound: f32) -> Result<Vec<u8>> {
    if !(error_bound > 0.0) || !error_bound.is_finite() {
        return Err(CodecError::BadErrorBound(error_bound).into());
    }
    let mut ds = dataset_from_bytes(payload)?;
    let step32 = 2.0 * error_bound;
    let step64 = 2.0 * error_bound as f64;
    match &mut ds {
        DataSet::Image(img) => {
            quantize_attrs(&mut img.point_data, step32, step64);
            quantize_attrs(&mut img.cell_data, step32, step64);
        }
        DataSet::UGrid(g) => {
            quantize_attrs(&mut g.point_data, step32, step64);
            quantize_attrs(&mut g.cell_data, step32, step64);
        }
        DataSet::Poly(p) => {
            quantize_attrs(&mut p.point_data, step32, step64);
        }
    }
    Ok(dataset_to_bytes(&ds).to_vec())
}

fn quantize_attrs(at: &mut Attributes, step32: f32, step64: f64) {
    let names: Vec<String> = at.iter().map(|(n, _)| n.clone()).collect();
    for name in names {
        let q = match at.get(&name) {
            Some(DataArray::F32(v)) => {
                DataArray::F32(v.iter().map(|&x| quant32(x, step32)).collect())
            }
            Some(DataArray::F64(v)) => {
                DataArray::F64(v.iter().map(|&x| quant64(x, step64)).collect())
            }
            Some(other) => other.clone(),
            None => continue,
        };
        at.set(name, q);
    }
}

fn quant32(v: f32, step: f32) -> f32 {
    if !v.is_finite() {
        return v;
    }
    let q = v / step;
    // Beyond 2^23 the quotient itself rounds, so snapping would no
    // longer honor the bound; keep such values exact.
    if q.abs() >= 8_388_608.0 {
        return v;
    }
    q.round() * step
}

fn quant64(v: f64, step: f64) -> f64 {
    if !v.is_finite() {
        return v;
    }
    let q = v / step;
    if q.abs() >= 4_503_599_627_370_496.0 {
        return v;
    }
    q.round() * step
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> DataSet {
        let mut img = ImageData::new([3, 2, 2]);
        img.origin = [1.0, 2.0, 3.0];
        img.spacing = [0.5, 0.5, 0.5];
        img.point_data
            .set("u", DataArray::F32((0..12).map(|i| i as f32).collect()));
        img.cell_data.set("c", DataArray::I32(vec![7, -7]));
        DataSet::Image(img)
    }

    fn ugrid() -> DataSet {
        let mut g = UnstructuredGrid::new();
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..2 {
                    g.points.push([i as f32, j as f32, k as f32]);
                }
            }
        }
        g.add_cell(CellType::Voxel, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g.cell_data.set("v", DataArray::F64(vec![2.5]));
        DataSet::UGrid(g)
    }

    fn poly() -> DataSet {
        let mut p = PolyData::new();
        p.add_point([0.0, 0.0, 0.0], Some([0.0, 0.0, 1.0]));
        p.add_point([1.0, 0.0, 0.0], Some([0.0, 0.0, 1.0]));
        p.add_point([0.0, 1.0, 0.0], Some([0.0, 0.0, 1.0]));
        p.triangles.push([0, 1, 2]);
        p.point_data.set("s", DataArray::U8(vec![1, 2, 3]));
        DataSet::Poly(p)
    }

    #[test]
    fn image_roundtrip() {
        let ds = image();
        let back = dataset_from_bytes(&dataset_to_bytes(&ds)).unwrap();
        let (DataSet::Image(a), DataSet::Image(b)) = (&ds, &back) else {
            panic!("wrong variant");
        };
        assert_eq!(a.dims, b.dims);
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.point_data, b.point_data);
        assert_eq!(a.cell_data, b.cell_data);
    }

    #[test]
    fn ugrid_roundtrip() {
        let ds = ugrid();
        let back = dataset_from_bytes(&dataset_to_bytes(&ds)).unwrap();
        let (DataSet::UGrid(a), DataSet::UGrid(b)) = (&ds, &back) else {
            panic!("wrong variant");
        };
        assert_eq!(a.points, b.points);
        assert_eq!(a.connectivity, b.connectivity);
        assert_eq!(a.cell_types, b.cell_types);
        // F64 array is widened to F32 on the wire? No: preserved as F64.
        assert_eq!(b.cell_data.get("v").unwrap().get(0), 2.5);
    }

    #[test]
    fn poly_roundtrip() {
        let ds = poly();
        let back = dataset_from_bytes(&dataset_to_bytes(&ds)).unwrap();
        let (DataSet::Poly(a), DataSet::Poly(b)) = (&ds, &back) else {
            panic!("wrong variant");
        };
        assert_eq!(a.points, b.points);
        assert_eq!(a.normals, b.normals);
        assert_eq!(a.triangles, b.triangles);
        assert_eq!(a.point_data, b.point_data);
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(dataset_from_bytes(&[]).is_err());
        assert!(dataset_from_bytes(&[99]).is_err());
        assert!(dataset_from_bytes(&[1, 2, 3]).is_err());
        let mut good = dataset_to_bytes(&image()).to_vec();
        good.truncate(good.len() / 2);
        assert!(dataset_from_bytes(&good).is_err());
    }

    // --- codec layer ---------------------------------------------------

    fn roundtrip_lossless(spec: CodecSpec, payload: &[u8]) -> Encoded {
        let payload = Bytes::copy_from_slice(payload);
        let enc = encode_block(spec, &payload, None).unwrap();
        let dec = decode_block(enc.codec, &enc.frame, None).unwrap();
        assert_eq!(dec.to_vec(), payload.to_vec(), "lossless roundtrip");
        enc
    }

    #[test]
    fn shuffle_lz_roundtrips_and_compresses_smooth_data() {
        // A smooth float ramp: byte-shuffle exposes long runs.
        let vals: Vec<u8> = (0..4096)
            .flat_map(|i| (1000.0f32 + i as f32 * 0.25).to_le_bytes())
            .collect();
        let enc = roundtrip_lossless(CodecSpec::ShuffleLz, &vals);
        assert_eq!(enc.codec, CodecId::ShuffleLz);
        assert!(
            enc.frame.len() * 2 < vals.len(),
            "smooth ramp should compress at least 2x, got {} -> {}",
            vals.len(),
            enc.frame.len()
        );
    }

    #[test]
    fn shuffle_lz_handles_degenerate_inputs() {
        // Empty, single byte, tail < stride, incompressible-ish noise.
        roundtrip_lossless(CodecSpec::ShuffleLz, &[]);
        roundtrip_lossless(CodecSpec::ShuffleLz, &[0x42]);
        roundtrip_lossless(CodecSpec::ShuffleLz, &[1, 2, 3]);
        let noise: Vec<u8> = (0..1023u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        roundtrip_lossless(CodecSpec::ShuffleLz, &noise);
    }

    #[test]
    fn nan_and_inf_survive_shuffle_lz_bit_exact() {
        let vals = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::from_bits(0x7FC0_1234), // payload-carrying NaN
            -0.0,
            f32::MIN_POSITIVE / 2.0, // subnormal
        ];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        roundtrip_lossless(CodecSpec::ShuffleLz, &bytes);
    }

    #[test]
    fn delta_of_identical_payload_is_near_zero() {
        let ds = dataset_to_bytes(&image());
        let enc = encode_block(CodecSpec::Delta, &ds, Some((&ds, 0))).unwrap();
        assert_eq!(enc.codec, CodecId::DeltaDiff);
        // An all-constant residual collapses to almost nothing.
        assert!(
            enc.frame.len() < ds.len() / 4 + 32,
            "constant delta should be near-zero: {} -> {}",
            ds.len(),
            enc.frame.len()
        );
        let dec = decode_block(enc.codec, &enc.frame, Some(&ds)).unwrap();
        assert_eq!(dec.to_vec(), ds.to_vec());
    }

    #[test]
    fn delta_without_base_anchors_to_full_frame() {
        let ds = dataset_to_bytes(&image());
        let enc = encode_block(CodecSpec::Delta, &ds, None).unwrap();
        assert_eq!(enc.codec, CodecId::DeltaFull);
        let dec = decode_block(enc.codec, &enc.frame, None).unwrap();
        assert_eq!(dec.to_vec(), ds.to_vec());
    }

    #[test]
    fn delta_with_mismatched_base_length_anchors() {
        let ds = dataset_to_bytes(&image());
        let short = Bytes::copy_from_slice(&ds[..ds.len() - 4]);
        let enc = encode_block(CodecSpec::Delta, &ds, Some((&short, 0))).unwrap();
        assert_eq!(enc.codec, CodecId::DeltaFull, "size change must anchor");
    }

    #[test]
    fn delta_diff_decode_without_base_is_a_typed_error() {
        let ds = dataset_to_bytes(&image());
        let enc = encode_block(CodecSpec::Delta, &ds, Some((&ds, 3))).unwrap();
        match decode_block(enc.codec, &enc.frame, None) {
            Err(ColzaError::Codec(CodecError::MissingDeltaBase { base_iteration: 3 })) => {}
            other => panic!("expected MissingDeltaBase, got {other:?}"),
        }
    }

    #[test]
    fn lossy_respects_error_bound_elementwise() {
        let mut img = ImageData::new([8, 8, 1]);
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 5.0).collect();
        img.point_data.set("u", DataArray::F32(vals.clone()));
        let payload = dataset_to_bytes(&DataSet::Image(img));
        let eb = 1e-2f32;
        let enc = encode_block(CodecSpec::Lossy { error_bound: eb }, &payload, None).unwrap();
        assert_eq!(enc.codec, CodecId::Lossy);
        let dec = decode_block(enc.codec, &enc.frame, None).unwrap();
        assert_eq!(dec.len(), payload.len(), "lossy keeps the serialized shape");
        let DataSet::Image(back) = dataset_from_bytes(&dec).unwrap() else {
            panic!("variant changed");
        };
        let Some(DataArray::F32(got)) = back.point_data.get("u") else {
            panic!("field lost");
        };
        for (a, b) in vals.iter().zip(got) {
            assert!(
                (a - b).abs() <= eb * 1.0001,
                "lossy bound violated: {a} vs {b}"
            );
        }
    }

    #[test]
    fn lossy_rejects_bad_bounds_and_non_datasets() {
        let payload = Bytes::from(vec![9u8; 64]);
        assert!(matches!(
            encode_block(CodecSpec::Lossy { error_bound: 0.0 }, &payload, None),
            Err(ColzaError::Codec(CodecError::BadErrorBound(_)))
        ));
        let ds = dataset_to_bytes(&image());
        assert!(encode_block(CodecSpec::Lossy { error_bound: -1.0 }, &ds, None).is_err());
        // Not a dataset: structural quantization cannot apply.
        assert!(encode_block(CodecSpec::Lossy { error_bound: 0.1 }, &payload, None).is_err());
    }

    #[test]
    fn truncated_frames_decode_to_typed_errors_not_panics() {
        let ds = dataset_to_bytes(&image());
        for spec in [CodecSpec::ShuffleLz, CodecSpec::Delta] {
            let enc = encode_block(spec, &ds, None).unwrap();
            for cut in [0, 1, 2, 5, enc.frame.len() / 2, enc.frame.len() - 1] {
                let cutp = Bytes::copy_from_slice(&enc.frame[..cut]);
                let r = decode_block(enc.codec, &cutp, None);
                assert!(
                    matches!(r, Err(ColzaError::Codec(_))),
                    "cut at {cut} must be a typed codec error, got {r:?}"
                );
            }
        }
        // Corrupt magic and codec id.
        let enc = encode_block(CodecSpec::ShuffleLz, &ds, None).unwrap();
        let mut bad = enc.frame.to_vec();
        bad[0] = 0x00;
        assert!(matches!(
            decode_block(CodecId::ShuffleLz, &Bytes::from(bad), None),
            Err(ColzaError::Codec(CodecError::BadMagic(0)))
        ));
        let mut bad = enc.frame.to_vec();
        bad[1] = 99;
        assert!(matches!(
            decode_block(CodecId::ShuffleLz, &Bytes::from(bad), None),
            Err(ColzaError::Codec(CodecError::BadCodecId(99)))
        ));
    }

    #[test]
    fn raw_encode_is_zero_copy_passthrough() {
        let payload = Bytes::from(vec![7u8; 128]);
        let enc = encode_block(CodecSpec::Raw, &payload, None).unwrap();
        assert_eq!(enc.codec, CodecId::Raw);
        assert_eq!(enc.frame.len(), payload.len());
        let dec = decode_block(CodecId::Raw, &enc.frame, None).unwrap();
        assert_eq!(dec.to_vec(), payload.to_vec());
    }

    #[test]
    fn config_selects_per_dataset() {
        let cfg = CodecConfig::uniform(CodecSpec::ShuffleLz)
            .with_dataset("temperature", CodecSpec::Delta)
            .with_dataset("noise", CodecSpec::Raw);
        assert_eq!(cfg.spec_for("temperature"), CodecSpec::Delta);
        assert_eq!(cfg.spec_for("noise"), CodecSpec::Raw);
        assert_eq!(cfg.spec_for("anything-else"), CodecSpec::ShuffleLz);
        assert_eq!(CodecConfig::default().spec_for("x"), CodecSpec::Raw);
    }

    #[test]
    fn codec_id_u8_roundtrip() {
        for c in [
            CodecId::Raw,
            CodecId::ShuffleLz,
            CodecId::Lossy,
            CodecId::DeltaFull,
            CodecId::DeltaDiff,
        ] {
            assert_eq!(CodecId::from_u8(c.as_u8()).unwrap(), c);
        }
        assert!(matches!(CodecId::from_u8(200), Err(CodecError::BadCodecId(200))));
    }

    #[test]
    fn empty_and_single_element_fields_roundtrip_every_codec() {
        for ds in [
            {
                let mut img = ImageData::new([0, 0, 0]);
                img.point_data.set("empty", DataArray::F32(vec![]));
                DataSet::Image(img)
            },
            {
                let mut img = ImageData::new([1, 1, 1]);
                img.point_data.set("one", DataArray::F32(vec![42.5]));
                DataSet::Image(img)
            },
        ] {
            let payload = dataset_to_bytes(&ds);
            for spec in [CodecSpec::ShuffleLz, CodecSpec::Delta] {
                let enc = encode_block(spec, &payload, None).unwrap();
                let dec = decode_block(enc.codec, &enc.frame, None).unwrap();
                assert_eq!(dec.to_vec(), payload.to_vec());
            }
            let enc = encode_block(CodecSpec::Lossy { error_bound: 0.5 }, &payload, None).unwrap();
            let dec = decode_block(enc.codec, &enc.frame, None).unwrap();
            assert!(dataset_from_bytes(&dec).is_ok());
        }
    }
}
