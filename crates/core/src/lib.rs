//! # colza — an elastic data-staging service with in situ visualization
//!
//! The paper's primary contribution, rebuilt in Rust on the substrates in
//! this workspace. A Colza deployment is a set of *staging daemons*
//! ([`daemon::ColzaDaemon`]) tracked by SSG gossip membership, hosting
//! user-provided *pipelines* ([`backend::Backend`] implementations loaded
//! through a factory registry — the stand-in for `dlopen`ed shared
//! libraries). Simulations drive them through a
//! [`client::DistributedPipelineHandle`] with the paper's four-call
//! protocol:
//!
//! 1. [`activate`](client::DistributedPipelineHandle::activate) — starts
//!    an iteration. Because SSG views are only eventually consistent, this
//!    runs a **two-phase commit**: every server votes with its view epoch;
//!    on any mismatch the client refreshes its view and retries. A
//!    successful prepare *freezes* membership until `deactivate`.
//! 2. [`stage`](client::DistributedPipelineHandle::stage) — sends only a
//!    block's metadata plus an RDMA bulk handle; the block's ring owners
//!    (consistent-hash primary plus optional replicas, computed from the
//!    frozen member list by the `store` crate) *pull* the data from the
//!    simulation's memory.
//! 3. [`execute`](client::DistributedPipelineHandle::execute) — broadcast
//!    to all servers; each builds the iteration's communicator from the
//!    frozen member list (a fresh MoNA communicator — or a static MPI one
//!    in the `Colza+MPI` baseline mode) and runs the pipeline
//!    collectively.
//! 4. [`deactivate`](client::DistributedPipelineHandle::deactivate) —
//!    ends the iteration, releases staged data, and unfreezes membership
//!    so servers may join or leave before the next iteration.
//!
//! The separate **admin** interface ([`admin`]) creates and destroys
//! pipelines and asks servers to leave — the elasticity triggers of §II-F.

pub mod admin;
pub mod autoscale;
pub mod backend;
pub mod client;
pub mod codec;
pub mod daemon;
pub mod error;
pub mod protocol;
pub mod provider;
pub mod qos;

pub use admin::AdminClient;
pub use autoscale::{
    drain_aware_victims, select_victims, tenant_aware_victims, tenant_weighted_load,
    AutoScaleConfig, AutoScaler, ScaleDecision,
};
pub use backend::{Backend, BackendCtx, StagedBlock};
pub use client::{ColzaClient, DistributedPipelineHandle, PipelineHandle};
pub use codec::{CodecConfig, CodecError, CodecId, CodecSpec};
pub use daemon::{ColzaDaemon, CommMode, DaemonConfig};
pub use error::ColzaError;
pub use protocol::{
    BlockMeta, ExecOutcome, MetricsReport, PriorityClass, TenancyConfig, TenantConfig, TenantId,
};
pub use qos::{DrrScheduler, ExecGate};
pub use store::TenantUsage;
