//! The admin library (a separate interface in the paper, §II-B): create
//! and destroy pipelines, and ask servers to leave the staging area. Used
//! by the simulation, external tools, or autonomic agents.

use std::sync::Arc;

use margo::MargoInstance;
use na::Address;

use crate::error::Result;
use crate::protocol::{CreatePipelineArgs, DestroyPipelineArgs, MetricsReport, TenancyConfig};
use store::TenantUsage;

/// Administrative client for a Colza deployment.
pub struct AdminClient {
    margo: Arc<MargoInstance>,
}

impl AdminClient {
    /// Wraps a margo instance.
    pub fn new(margo: Arc<MargoInstance>) -> Self {
        Self { margo }
    }

    /// Creates a pipeline on one server: backend `library` (the shared-
    /// library stand-in), instance `name`, and a JSON configuration
    /// string handed to the factory.
    pub fn create_pipeline(
        &self,
        server: Address,
        library: &str,
        name: &str,
        config: &str,
    ) -> Result<()> {
        Ok(self.margo.forward(
            server,
            "colza.admin.create_pipeline",
            &CreatePipelineArgs {
                library: library.to_string(),
                name: name.to_string(),
                config: config.to_string(),
            },
        )?)
    }

    /// Creates the pipeline on every listed server (parallel pipelines
    /// must have an instance on each staging process).
    pub fn create_pipeline_on_all(
        &self,
        servers: &[Address],
        library: &str,
        name: &str,
        config: &str,
    ) -> Result<()> {
        for &s in servers {
            self.create_pipeline(s, library, name, config)?;
        }
        Ok(())
    }

    /// Destroys a pipeline on one server.
    pub fn destroy_pipeline(&self, server: Address, name: &str) -> Result<()> {
        Ok(self.margo.forward(
            server,
            "colza.admin.destroy_pipeline",
            &DestroyPipelineArgs {
                name: name.to_string(),
            },
        )?)
    }

    /// Lists pipeline names on one server.
    pub fn list_pipelines(&self, server: Address) -> Result<Vec<String>> {
        Ok(self
            .margo
            .forward(server, "colza.admin.list_pipelines", &())?)
    }

    /// Asks a server to leave the staging area and shut down (the paper's
    /// scale-down trigger, §II-F).
    pub fn request_leave(&self, server: Address) -> Result<()> {
        Ok(self.margo.forward(server, "colza.admin.leave", &())?)
    }

    /// Scrapes one server's trace counters (its per-RPC, per-plane and
    /// membership statistics). With tracing disabled on the server the
    /// report comes back with `enabled: false` and no counters.
    pub fn metrics(&self, server: Address) -> Result<MetricsReport> {
        Ok(self.margo.forward(server, "colza.admin.metrics", &())?)
    }

    /// Installs a tenancy policy (quotas, priority classes, the execute
    /// gate — DESIGN.md §14) on one server.
    pub fn set_tenancy(&self, server: Address, cfg: &TenancyConfig) -> Result<()> {
        Ok(self.margo.forward(server, "colza.admin.set_tenancy", cfg)?)
    }

    /// Installs a tenancy policy on every listed server. Policy must be
    /// uniform across the pool: quota decisions are per server, and a
    /// split policy would admit on some owners and refuse on others.
    pub fn set_tenancy_on_all(&self, servers: &[Address], cfg: &TenancyConfig) -> Result<()> {
        for &s in servers {
            self.set_tenancy(s, cfg)?;
        }
        Ok(())
    }

    /// One server's per-tenant staged load (the `tenants` section of the
    /// metrics scrape).
    pub fn tenant_usage(&self, server: Address) -> Result<Vec<TenantUsage>> {
        Ok(self.metrics(server)?.tenants)
    }
}
