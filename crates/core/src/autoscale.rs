//! Automatic resizing (the paper's §IV-B / conclusion item (2)).
//!
//! The paper lists several elasticity triggers — user-driven, scheduler-
//! driven, and *application-driven*: grow the staging area when analysis
//! can no longer keep up with the simulation, so iteration time stays
//! bounded (their Fig. 10 argument). This module is that trigger: a small
//! controller that watches per-iteration `execute` durations and decides
//! when to request more (or fewer) staging processes.
//!
//! The controller is deliberately mechanism-agnostic: it returns
//! [`ScaleDecision`]s; the embedding (job script, simulation, admin tool)
//! performs the actual node allocation, exactly as §II-F describes.
//!
//! When the decision is [`ScaleDecision::Shrink`], the embedding must
//! still pick *which* servers to retire. [`drain_aware_victims`] makes
//! that choice drain-aware: it scrapes each candidate's staged-byte load
//! over `colza.admin.metrics` and nominates the least-loaded servers, so
//! the departure drain (which pushes every held block to its new ring
//! owners) moves as few bytes as possible.

use na::Address;

use crate::admin::AdminClient;
use crate::protocol::{MetricsReport, TenancyConfig, TenantId};

/// Configuration of the feedback controller.
#[derive(Debug, Clone, Copy)]
pub struct AutoScaleConfig {
    /// Keep per-iteration analysis time at or under this target.
    pub target_ns: u64,
    /// Grow when the smoothed time exceeds `target * grow_factor`.
    pub grow_factor: f64,
    /// Shrink when the smoothed time falls under `target * shrink_factor`
    /// (hysteresis: must be well below the grow threshold).
    pub shrink_factor: f64,
    /// Exponential smoothing weight for new samples in `(0, 1]`.
    pub alpha: f64,
    /// Minimum iterations between scaling decisions (lets the effect of
    /// the previous decision show up before acting again — joins also
    /// carry a one-iteration pipeline-init spike that must not trigger
    /// another grow).
    pub cooldown_iters: u32,
    /// Bounds on the staging-area size.
    pub min_servers: usize,
    /// Upper bound on the staging-area size.
    pub max_servers: usize,
}

impl AutoScaleConfig {
    /// A controller keeping analysis under `target_ns` with sane defaults.
    pub fn with_target(target_ns: u64) -> Self {
        Self {
            target_ns,
            grow_factor: 1.0,
            shrink_factor: 0.35,
            alpha: 0.5,
            cooldown_iters: 2,
            min_servers: 1,
            max_servers: usize::MAX,
        }
    }
}

/// What the embedding should do before the next iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current size.
    Hold,
    /// Add this many servers.
    Grow(usize),
    /// Remove this many servers (via the admin leave RPC).
    Shrink(usize),
}

/// The feedback controller.
#[derive(Debug)]
pub struct AutoScaler {
    cfg: AutoScaleConfig,
    smoothed_ns: Option<f64>,
    cooldown: u32,
}

impl AutoScaler {
    /// Creates a controller.
    pub fn new(cfg: AutoScaleConfig) -> Self {
        assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0);
        assert!(cfg.shrink_factor < cfg.grow_factor);
        Self {
            cfg,
            smoothed_ns: None,
            cooldown: 0,
        }
    }

    /// The current smoothed execute time, if any samples arrived.
    pub fn smoothed_ns(&self) -> Option<u64> {
        self.smoothed_ns.map(|s| s as u64)
    }

    /// Feeds one iteration's `execute` duration and the current server
    /// count; returns the decision for the next iteration.
    ///
    /// Join iterations (where a fresh server pays pipeline init) should
    /// be passed with `had_join = true`; their spike is excluded from the
    /// smoothed signal, as the paper excludes them when reading Fig. 10.
    pub fn observe(&mut self, execute_ns: u64, servers: usize, had_join: bool) -> ScaleDecision {
        let decision = self.observe_inner(execute_ns, servers, had_join);
        Self::count_decision(&decision);
        decision
    }

    fn observe_inner(&mut self, execute_ns: u64, servers: usize, had_join: bool) -> ScaleDecision {
        if !had_join {
            let s = self.smoothed_ns.unwrap_or(execute_ns as f64);
            self.smoothed_ns =
                Some(s * (1.0 - self.cfg.alpha) + execute_ns as f64 * self.cfg.alpha);
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return ScaleDecision::Hold;
        }
        let Some(smoothed) = self.smoothed_ns else {
            return ScaleDecision::Hold;
        };
        let target = self.cfg.target_ns as f64;
        if smoothed > target * self.cfg.grow_factor && servers < self.cfg.max_servers {
            self.cooldown = self.cfg.cooldown_iters;
            // Proportional growth: how many servers short are we, assuming
            // near-linear strong scaling (capped at doubling per step)?
            let deficit = (smoothed / target).ceil() as usize;
            let add = deficit
                .saturating_sub(1)
                .clamp(1, servers.max(1))
                .min(self.cfg.max_servers - servers);
            return ScaleDecision::Grow(add);
        }
        if smoothed < target * self.cfg.shrink_factor && servers > self.cfg.min_servers {
            self.cooldown = self.cfg.cooldown_iters;
            return ScaleDecision::Shrink(1.min(servers - self.cfg.min_servers));
        }
        ScaleDecision::Hold
    }

    /// Feeds one multi-tenant round: per-tenant `execute` durations are
    /// summed into the aggregate-demand signal the controller scales on.
    /// A tenant mix where one pipeline lags and another idles thus grows
    /// the pool exactly when their *total* demand outruns the target —
    /// the shared-pool reading of the paper's Fig. 10 argument.
    pub fn observe_aggregate(
        &mut self,
        per_tenant_ns: &[u64],
        servers: usize,
        had_join: bool,
    ) -> ScaleDecision {
        let total: u64 = per_tenant_ns
            .iter()
            .fold(0u64, |acc, &ns| acc.saturating_add(ns));
        self.observe(total, servers, had_join)
    }

    /// Feeds a *failed* iteration (no duration to learn from).
    ///
    /// A retryable failure ([`crate::error::ColzaError::is_retryable`])
    /// means the staging area is churning — a member died or the view is
    /// catching up; resizing on top of that churn would only add more.
    /// The controller holds and re-arms its cooldown so the first few
    /// post-recovery iterations can't trigger a panic grow. A fatal
    /// failure additionally discards the smoothed signal: whatever comes
    /// back up may have a very different performance profile.
    pub fn observe_failure(&mut self, retryable: bool) -> ScaleDecision {
        self.cooldown = self.cooldown.max(self.cfg.cooldown_iters.max(1));
        if !retryable {
            self.smoothed_ns = None;
        }
        let decision = ScaleDecision::Hold;
        Self::count_decision(&decision);
        decision
    }

    /// Counts the decision in the trace (no-op outside a traced process).
    fn count_decision(decision: &ScaleDecision) {
        let name = match decision {
            ScaleDecision::Hold => "autoscale.hold",
            ScaleDecision::Grow(_) => "autoscale.grow",
            ScaleDecision::Shrink(_) => "autoscale.shrink",
        };
        hpcsim::trace::counter_add(name, 1);
    }
}

/// Picks the `n` servers whose departure costs the least drain traffic:
/// the candidates holding the fewest staged bytes. Ties break toward the
/// *later* member (never the contact/compositing root at rank 0), and the
/// ordering is total, so the same loads always nominate the same victims.
///
/// Servers that fail to answer the metrics scrape are treated as
/// maximally loaded — a server we cannot reach is the wrong one to ask
/// for a graceful, fully-drained departure.
///
/// Each nomination bumps the `autoscale.victim.drain_aware` counter (and
/// `autoscale.victim.bytes` by the victim's staged load) in the caller's
/// trace.
pub fn drain_aware_victims(admin: &AdminClient, members: &[Address], n: usize) -> Vec<Address> {
    let loads: Vec<(Address, u64)> = members
        .iter()
        .map(|&m| (m, admin.metrics(m).map_or(u64::MAX, |r| r.staged_bytes)))
        .collect();
    let victims = select_victims(&loads, n);
    for &v in &victims {
        hpcsim::trace::counter_add("autoscale.victim.drain_aware", 1);
        if let Some(&(_, bytes)) = loads.iter().find(|(m, _)| *m == v) {
            if bytes != u64::MAX {
                hpcsim::trace::counter_add("autoscale.victim.bytes", bytes);
            }
        }
    }
    victims
}

/// A server's drain cost weighted by *who* holds its bytes: each
/// tenant's staged bytes are multiplied by its priority-class weight, so
/// retiring a server full of Gold-tenant data costs more than one full
/// of Bronze. Falls back to raw `staged_bytes` when the report carries
/// no per-tenant section (a pre-tenancy peer).
pub fn tenant_weighted_load(report: &MetricsReport, tenancy: &TenancyConfig) -> u64 {
    if report.tenants.is_empty() {
        return report.staged_bytes;
    }
    report.tenants.iter().fold(0u64, |acc, t| {
        let weight = tenancy
            .config_for(&TenantId::new(t.tenant.clone()))
            .priority
            .weight();
        acc.saturating_add(t.staged_bytes.saturating_mul(weight))
    })
}

/// [`drain_aware_victims`], weighted by per-tenant staged bytes: the
/// shrink victims are the servers whose departure displaces the least
/// *priority-weighted* data, so high-class tenants' blocks move last.
/// Same determinism and unreachable-server rules as the drain-aware
/// variant; each nomination bumps `autoscale.victim.tenant_aware`.
pub fn tenant_aware_victims(
    admin: &AdminClient,
    members: &[Address],
    n: usize,
    tenancy: &TenancyConfig,
) -> Vec<Address> {
    let loads: Vec<(Address, u64)> = members
        .iter()
        .map(|&m| {
            (
                m,
                admin
                    .metrics(m)
                    .map_or(u64::MAX, |r| tenant_weighted_load(&r, tenancy)),
            )
        })
        .collect();
    let victims = select_victims(&loads, n);
    for &v in &victims {
        hpcsim::trace::counter_add("autoscale.victim.tenant_aware", 1);
        if let Some(&(_, cost)) = loads.iter().find(|(m, _)| *m == v) {
            if cost != u64::MAX {
                hpcsim::trace::counter_add("autoscale.victim.weighted_bytes", cost);
            }
        }
    }
    victims
}

/// The pure core of [`drain_aware_victims`]: given `(server, staged
/// bytes)` pairs in member order, returns the `n` cheapest departures.
pub fn select_victims(loads: &[(Address, u64)], n: usize) -> Vec<Address> {
    let mut ranked: Vec<(usize, Address, u64)> = loads
        .iter()
        .enumerate()
        .map(|(i, &(m, b))| (i, m, b))
        .collect();
    // Cheapest first; among equals prefer the highest member rank, so
    // rank 0 (the bootstrap contact and compositing root) goes last.
    ranked.sort_by(|a, b| a.2.cmp(&b.2).then(b.0.cmp(&a.0)));
    ranked.into_iter().take(n).map(|(_, m, _)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler(target_ms: u64) -> AutoScaler {
        AutoScaler::new(AutoScaleConfig {
            cooldown_iters: 0,
            ..AutoScaleConfig::with_target(target_ms * 1_000_000)
        })
    }

    #[test]
    fn holds_when_on_target() {
        let mut s = scaler(10);
        for _ in 0..5 {
            assert_eq!(s.observe(9_000_000, 4, false), ScaleDecision::Hold);
        }
    }

    #[test]
    fn grows_when_over_target() {
        let mut s = scaler(10);
        s.observe(25_000_000, 2, false);
        match s.observe(25_000_000, 2, false) {
            ScaleDecision::Grow(n) => assert!(n >= 1),
            d => panic!("expected growth, got {d:?}"),
        }
    }

    #[test]
    fn growth_is_proportional_and_capped() {
        let mut s = scaler(10);
        // 4x over target: wants several servers, but never more than
        // doubling.
        s.observe(40_000_000, 2, false);
        let d = s.observe(40_000_000, 2, false);
        assert_eq!(d, ScaleDecision::Grow(2));
    }

    #[test]
    fn shrinks_when_far_under_target() {
        let mut s = scaler(10);
        for _ in 0..4 {
            s.observe(1_000_000, 4, false);
        }
        assert_eq!(s.observe(1_000_000, 4, false), ScaleDecision::Shrink(1));
    }

    #[test]
    fn join_spikes_are_excluded_from_the_signal() {
        let mut s = scaler(10);
        s.observe(9_000_000, 2, false);
        // A 3 s pipeline-init spike on the join iteration must not
        // trigger growth.
        assert_eq!(s.observe(3_000_000_000, 3, true), ScaleDecision::Hold);
        assert_eq!(s.observe(9_000_000, 3, false), ScaleDecision::Hold);
    }

    #[test]
    fn cooldown_spaces_decisions() {
        let mut s = AutoScaler::new(AutoScaleConfig {
            cooldown_iters: 2,
            ..AutoScaleConfig::with_target(10_000_000)
        });
        assert!(matches!(s.observe(50_000_000, 2, false), ScaleDecision::Grow(_)));
        // Two iterations of cooldown follow, even though still over.
        assert_eq!(s.observe(50_000_000, 3, false), ScaleDecision::Hold);
        assert_eq!(s.observe(50_000_000, 3, false), ScaleDecision::Hold);
        assert!(matches!(s.observe(50_000_000, 3, false), ScaleDecision::Grow(_)));
    }

    #[test]
    fn failures_hold_and_rearm_cooldown() {
        let mut s = AutoScaler::new(AutoScaleConfig {
            cooldown_iters: 2,
            ..AutoScaleConfig::with_target(10_000_000)
        });
        s.observe(50_000_000, 2, false); // Grow, cooldown = 2
        // A retryable failure during recovery re-arms the cooldown...
        assert_eq!(s.observe_failure(true), ScaleDecision::Hold);
        // ...so two over-target post-recovery iterations still hold.
        assert_eq!(s.observe(50_000_000, 3, false), ScaleDecision::Hold);
        assert_eq!(s.observe(50_000_000, 3, false), ScaleDecision::Hold);
        assert!(matches!(s.observe(50_000_000, 3, false), ScaleDecision::Grow(_)));
        // A fatal failure discards the learned signal entirely.
        assert_eq!(s.observe_failure(false), ScaleDecision::Hold);
        assert_eq!(s.smoothed_ns(), None);
    }

    #[test]
    fn respects_size_bounds() {
        let mut s = AutoScaler::new(AutoScaleConfig {
            cooldown_iters: 0,
            min_servers: 2,
            max_servers: 4,
            ..AutoScaleConfig::with_target(10_000_000)
        });
        for _ in 0..3 {
            s.observe(100_000_000, 4, false);
        }
        assert_eq!(s.observe(100_000_000, 4, false), ScaleDecision::Hold, "at max");
        let mut s2 = AutoScaler::new(AutoScaleConfig {
            cooldown_iters: 0,
            min_servers: 2,
            max_servers: 4,
            ..AutoScaleConfig::with_target(10_000_000)
        });
        for _ in 0..3 {
            s2.observe(100_000, 2, false);
        }
        assert_eq!(s2.observe(100_000, 2, false), ScaleDecision::Hold, "at min");
    }

    #[test]
    fn aggregate_demand_drives_growth() {
        let mut s = scaler(10);
        // Two tenants each under target alone, together well over it.
        s.observe_aggregate(&[8_000_000, 8_000_000, 9_000_000], 2, false);
        match s.observe_aggregate(&[8_000_000, 8_000_000, 9_000_000], 2, false) {
            ScaleDecision::Grow(n) => assert!(n >= 1),
            d => panic!("expected growth on aggregate demand, got {d:?}"),
        }
    }

    #[test]
    fn tenant_weighted_load_prices_by_class() {
        use crate::protocol::{PriorityClass, TenantConfig};
        use store::TenantUsage;
        let usage = |tenant: &str, bytes: u64| TenantUsage {
            tenant: tenant.to_string(),
            staged_bytes: bytes,
            decoded_bytes: bytes,
            blocks: 1,
        };
        let report = MetricsReport {
            pid: 0,
            enabled: false,
            staged_bytes: 300,
            decoded_bytes: 300,
            tenants: vec![usage("batch", 200), usage("prod", 100)],
            counters: Vec::new(),
        };
        let tenancy = TenancyConfig::enforcing()
            .with_tenant(
                "prod",
                TenantConfig {
                    priority: PriorityClass::Gold,
                    ..TenantConfig::default()
                },
            )
            .with_tenant(
                "batch",
                TenantConfig {
                    priority: PriorityClass::Bronze,
                    ..TenantConfig::default()
                },
            );
        // 200 Bronze bytes (×1) + 100 Gold bytes (×4) = 600.
        assert_eq!(tenant_weighted_load(&report, &tenancy), 600);
        // No per-tenant section: fall back to raw staged bytes.
        let bare = MetricsReport {
            tenants: Vec::new(),
            ..report
        };
        assert_eq!(tenant_weighted_load(&bare, &tenancy), 300);
    }

    #[test]
    fn victims_are_least_loaded_first() {
        let loads = [
            (Address(0), 500),
            (Address(1), 100),
            (Address(2), 300),
            (Address(3), 200),
        ];
        assert_eq!(select_victims(&loads, 1), vec![Address(1)]);
        assert_eq!(select_victims(&loads, 2), vec![Address(1), Address(3)]);
        assert_eq!(select_victims(&loads, 9).len(), loads.len());
    }

    #[test]
    fn victim_ties_spare_the_root() {
        // All equally loaded: rank 0 must be nominated last.
        let loads = [(Address(0), 64), (Address(1), 64), (Address(2), 64)];
        assert_eq!(select_victims(&loads, 2), vec![Address(2), Address(1)]);
        assert_eq!(
            select_victims(&loads, 3),
            vec![Address(2), Address(1), Address(0)]
        );
    }

    #[test]
    fn unreachable_servers_are_never_preferred() {
        let loads = [(Address(0), u64::MAX), (Address(1), 1 << 30)];
        assert_eq!(select_victims(&loads, 1), vec![Address(1)]);
    }
}
