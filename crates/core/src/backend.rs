//! Pipelines: the `colza::Backend` abstraction and its factory registry.
//!
//! In the paper, pipelines are C++ classes inheriting from
//! `colza::Backend`, compiled to shared libraries and `dlopen`ed on
//! demand. Rust has no stable in-process dynamic loading story, so the
//! reproduction replaces `dlopen` with a **process-wide factory registry**
//! keyed by library name (DESIGN.md §2); everything else — instantiation
//! on demand with a JSON configuration, one instance per server, the
//! four-method lifecycle — matches the paper.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use vizkit::Controller;

use crate::error::{ColzaError, Result};
use crate::protocol::{BlockMeta, ExecOutcome};

/// A block staged on a server: metadata plus the pulled payload.
#[derive(Debug, Clone)]
pub struct StagedBlock {
    /// Block metadata from the client.
    pub meta: BlockMeta,
    /// Raw payload pulled over RDMA (decode with [`crate::codec`]).
    pub data: Bytes,
}

/// Context a backend is constructed with.
pub struct BackendCtx {
    /// This server's address.
    pub self_addr: na::Address,
    /// JSON configuration string from `create_pipeline`.
    pub config: String,
}

/// The pipeline interface (the paper's `colza::Backend`).
///
/// Methods mirror the four RPCs; `execute` additionally receives the
/// iteration's communicator controller, which is how parallel pipelines
/// (Catalyst) do collective work.
pub trait Backend: Send + Sync {
    /// A new analysis iteration is starting.
    fn activate(&self, iteration: u64) -> std::result::Result<(), String>;
    /// A block of data has been staged for this pipeline.
    fn stage(&self, block: StagedBlock) -> std::result::Result<(), String>;
    /// A previously staged block was demoted off this server (its primary
    /// moved elsewhere during migration or repair) and must no longer be
    /// part of this server's `execute`. Default: no-op, for backends that
    /// never run under replication.
    fn unstage(&self, _meta: &BlockMeta) -> std::result::Result<(), String> {
        Ok(())
    }
    /// Run the analysis collectively over the staged data. Reactive
    /// backends may report [`ExecOutcome::Skipped`] when a trigger
    /// decided against running this iteration (DESIGN.md §15).
    fn execute(
        &self,
        iteration: u64,
        ctrl: &Controller,
    ) -> std::result::Result<ExecOutcome, String>;
    /// The iteration is complete; staged data may be released.
    fn deactivate(&self, iteration: u64) -> std::result::Result<(), String>;
    /// Optional: the latest result produced by this pipeline (e.g. a
    /// rendered image), for retrieval by tools.
    fn take_result(&self) -> Option<Vec<u8>> {
        None
    }
}

/// A backend factory ("the shared library's entry point"). Fallible:
/// a malformed configuration (bad JSON, a trigger expression that does
/// not compile) is reported as a typed error at `create_pipeline` time,
/// never a panic on the server.
pub type BackendFactory =
    Arc<dyn Fn(&BackendCtx) -> std::result::Result<Arc<dyn Backend>, String> + Send + Sync>;

static REGISTRY: RwLock<Option<HashMap<String, BackendFactory>>> = RwLock::new(None);

/// Registers a backend library under a name (what the paper does by
/// placing a `.so` on disk). Idempotent per name; later registrations
/// replace earlier ones.
pub fn register_library(library: &str, factory: BackendFactory) {
    REGISTRY
        .write()
        .get_or_insert_with(HashMap::new)
        .insert(library.to_string(), factory);
}

/// Instantiates a backend from a registered library.
pub fn instantiate(library: &str, ctx: &BackendCtx) -> Result<Arc<dyn Backend>> {
    ensure_builtins();
    let reg = REGISTRY.read();
    let factory = reg
        .as_ref()
        .and_then(|r| r.get(library))
        .cloned()
        .ok_or_else(|| ColzaError::NoSuchLibrary(library.to_string()))?;
    drop(reg);
    factory(ctx).map_err(ColzaError::InvalidScript)
}

/// Registers the built-in libraries shipped with this reproduction.
fn ensure_builtins() {
    let mut reg = REGISTRY.write();
    let reg = reg.get_or_insert_with(HashMap::new);
    reg.entry("catalyst".to_string()).or_insert_with(|| {
        Arc::new(|ctx: &BackendCtx| {
            CatalystBackend::from_config(&ctx.config)
                .map(|b| Arc::new(b) as Arc<dyn Backend>)
        })
    });
    reg.entry("null".to_string()).or_insert_with(|| {
        Arc::new(|_: &BackendCtx| Ok(Arc::new(NullBackend::default()) as Arc<dyn Backend>))
    });
}

/// A no-op pipeline that only counts calls — the smallest useful backend,
/// handy for protocol tests and overhead measurements.
#[derive(Default)]
pub struct NullBackend {
    /// `(activates, stages, executes, deactivates)` counters.
    pub calls: Mutex<(u64, u64, u64, u64)>,
    staged_bytes: Mutex<u64>,
}

impl Backend for NullBackend {
    fn activate(&self, _iteration: u64) -> std::result::Result<(), String> {
        self.calls.lock().0 += 1;
        Ok(())
    }

    fn stage(&self, block: StagedBlock) -> std::result::Result<(), String> {
        self.calls.lock().1 += 1;
        *self.staged_bytes.lock() += block.data.len() as u64;
        Ok(())
    }

    fn unstage(&self, meta: &BlockMeta) -> std::result::Result<(), String> {
        let mut bytes = self.staged_bytes.lock();
        *bytes = bytes.saturating_sub(meta.size as u64);
        Ok(())
    }

    fn execute(
        &self,
        _iteration: u64,
        _ctrl: &Controller,
    ) -> std::result::Result<ExecOutcome, String> {
        self.calls.lock().2 += 1;
        Ok(ExecOutcome::Ran)
    }

    fn deactivate(&self, _iteration: u64) -> std::result::Result<(), String> {
        self.calls.lock().3 += 1;
        Ok(())
    }

    fn take_result(&self) -> Option<Vec<u8>> {
        Some(self.staged_bytes.lock().to_le_bytes().to_vec())
    }
}

/// The Catalyst visualization pipeline backend: stages `vizkit` datasets
/// and renders them with the configured script on `execute`.
pub struct CatalystBackend {
    pipeline: catalyst::CatalystPipeline,
    staged: Mutex<HashMap<u64, Vec<StagedBlock>>>,
    last_image: Mutex<Option<Vec<u8>>>,
}

impl CatalystBackend {
    /// Builds from a JSON pipeline-script configuration.
    pub fn from_config(config: &str) -> std::result::Result<Self, String> {
        Ok(Self {
            pipeline: catalyst::CatalystPipeline::from_json(
                config,
                catalyst::CatalystConfig::default(),
            )?,
            staged: Mutex::new(HashMap::new()),
            last_image: Mutex::new(None),
        })
    }

    /// Builds from an in-memory script (used by tests and benches).
    pub fn from_script(script: catalyst::PipelineScript) -> Self {
        Self {
            pipeline: catalyst::CatalystPipeline::new(script, catalyst::CatalystConfig::default()),
            staged: Mutex::new(HashMap::new()),
            last_image: Mutex::new(None),
        }
    }
}

impl Backend for CatalystBackend {
    fn activate(&self, iteration: u64) -> std::result::Result<(), String> {
        self.staged.lock().entry(iteration).or_default();
        Ok(())
    }

    fn stage(&self, block: StagedBlock) -> std::result::Result<(), String> {
        self.staged
            .lock()
            .entry(block.meta.iteration)
            .or_default()
            .push(block);
        Ok(())
    }

    fn unstage(&self, meta: &BlockMeta) -> std::result::Result<(), String> {
        if let Some(blocks) = self.staged.lock().get_mut(&meta.iteration) {
            blocks.retain(|b| b.meta.block_id != meta.block_id);
        }
        Ok(())
    }

    fn execute(
        &self,
        iteration: u64,
        ctrl: &Controller,
    ) -> std::result::Result<ExecOutcome, String> {
        let mut blocks = self
            .staged
            .lock()
            .get(&iteration)
            .cloned()
            .unwrap_or_default();
        blocks.sort_by_key(|b| b.meta.block_id);
        let datasets: Vec<vizkit::DataSet> = blocks
            .iter()
            .map(|b| crate::codec::dataset_from_bytes(&b.data).map_err(|e| e.to_string()))
            .collect::<std::result::Result<_, _>>()?;
        let outcome = self.pipeline.execute_reactive(&datasets, ctrl, iteration)?;
        if let Some(img) = outcome.image {
            *self.last_image.lock() = Some(img.to_bytes());
        }
        Ok(if outcome.skipped {
            ExecOutcome::Skipped
        } else {
            ExecOutcome::Ran
        })
    }

    fn deactivate(&self, iteration: u64) -> std::result::Result<(), String> {
        self.staged.lock().remove(&iteration);
        Ok(())
    }

    fn take_result(&self) -> Option<Vec<u8>> {
        self.last_image.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_libraries_instantiate() {
        let ctx = BackendCtx {
            self_addr: na::Address(0),
            config: catalyst::PipelineScript::mandelbulb(16, 16).to_json(),
        };
        assert!(instantiate("catalyst", &ctx).is_ok());
        let ctx2 = BackendCtx {
            self_addr: na::Address(0),
            config: String::new(),
        };
        assert!(instantiate("null", &ctx2).is_ok());
        assert!(matches!(
            instantiate("missing.so", &ctx2),
            Err(ColzaError::NoSuchLibrary(_))
        ));
    }

    #[test]
    fn malformed_script_is_a_typed_error_not_a_panic() {
        // Broken JSON and a broken trigger expression both surface as
        // InvalidScript from the factory.
        for config in [
            "not json at all",
            r#"{"render": {"mode": "surface", "width": 8, "height": 8, "field": null,
                "range": null, "camera": null},
                "triggers": [{"when": "max(u >", "action": "run"}]}"#,
        ] {
            let ctx = BackendCtx {
                self_addr: na::Address(0),
                config: config.to_string(),
            };
            assert!(matches!(
                instantiate("catalyst", &ctx),
                Err(ColzaError::InvalidScript(_))
            ));
        }
    }

    #[test]
    fn custom_library_registration() {
        register_library(
            "mylib",
            Arc::new(|_| Arc::new(NullBackend::default()) as Arc<dyn Backend>),
        );
        let ctx = BackendCtx {
            self_addr: na::Address(1),
            config: String::new(),
        };
        assert!(instantiate("mylib", &ctx).is_ok());
    }

    #[test]
    fn null_backend_counts_lifecycle() {
        let b = NullBackend::default();
        b.activate(1).unwrap();
        b.stage(StagedBlock {
            meta: BlockMeta::new("x".to_string(), 0, 1, 3),
            data: Bytes::from_static(&[1, 2, 3]),
        })
        .unwrap();
        let ctrl = Controller::new(Arc::new(vizkit::controller::DummyComm));
        b.execute(1, &ctrl).unwrap();
        b.deactivate(1).unwrap();
        assert_eq!(*b.calls.lock(), (1, 1, 1, 1));
        assert_eq!(b.take_result().unwrap(), 3u64.to_le_bytes().to_vec());
    }

    #[test]
    fn catalyst_backend_roundtrip_serial() {
        let b = CatalystBackend::from_script(catalyst::PipelineScript::mandelbulb(24, 24));
        let ctrl = Controller::new(Arc::new(vizkit::controller::DummyComm));
        b.activate(0).unwrap();
        // Stage a little sphere-field image block.
        let mut img = vizkit::ImageData::new([8, 8, 8]);
        let mut vals = Vec::new();
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    let d = (((i as f32 - 3.5).powi(2)
                        + (j as f32 - 3.5).powi(2)
                        + (k as f32 - 3.5).powi(2)) as f32)
                        .sqrt();
                    vals.push(30.0 - d * 4.0);
                }
            }
        }
        img.point_data
            .set("iterations", vizkit::DataArray::F32(vals));
        let payload = crate::codec::dataset_to_bytes(&vizkit::DataSet::Image(img));
        b.stage(StagedBlock {
            meta: BlockMeta::new("mandelbulb".to_string(), 0, 0, payload.len()),
            data: payload,
        })
        .unwrap();
        b.execute(0, &ctrl).unwrap();
        let img_bytes = b.take_result().expect("root image");
        let img = vizkit::Image::from_bytes(&img_bytes);
        assert!(img.coverage() > 0.0);
        b.deactivate(0).unwrap();
        // Staged data released.
        assert!(b.staged.lock().get(&0).is_none());
    }
}
