//! The Colza client library: pipeline handles and the staging protocol.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use margo::{MargoInstance, RetryConfig};
use na::Address;

use crate::error::{ColzaError, Result};
use crate::protocol::*;

/// How `stage` selects the receiving server for a block.
#[derive(Clone)]
pub enum StagePolicy {
    /// `block_id % num_servers` — the paper's default.
    BlockModulo,
    /// Rotate through servers regardless of block id.
    RoundRobin,
    /// User-provided mapping from `(meta, num_servers)` to a server index.
    Custom(Arc<dyn Fn(&BlockMeta, usize) -> usize + Send + Sync>),
}

impl StagePolicy {
    fn select(&self, meta: &BlockMeta, n: usize, rr_state: &mut usize) -> usize {
        match self {
            StagePolicy::BlockModulo => (meta.block_id % n as u64) as usize,
            StagePolicy::RoundRobin => {
                let s = *rr_state % n;
                *rr_state = rr_state.wrapping_add(1);
                s
            }
            StagePolicy::Custom(f) => f(meta, n) % n,
        }
    }
}

/// A Colza client: one per simulation process.
pub struct ColzaClient {
    margo: Arc<MargoInstance>,
}

impl ColzaClient {
    /// Wraps a margo instance (which may share the simulation's endpoint).
    pub fn new(margo: Arc<MargoInstance>) -> Arc<Self> {
        Arc::new(Self { margo })
    }

    /// The underlying margo instance.
    pub fn margo(&self) -> &Arc<MargoInstance> {
        &self.margo
    }

    /// Queries the current staging-area view from any live member.
    /// Retries briefly through transient loss; a dead contact fails fast.
    pub fn view_from(&self, contact: Address) -> Result<Vec<Address>> {
        let cfg = RetryConfig {
            deadline: Some(Duration::from_secs(2)),
            ..control_retry()
        };
        Ok(self
            .margo
            .forward_retry(contact, "colza.get_view", &(), &cfg)?)
    }

    /// Opens a handle to one pipeline instance on one server.
    pub fn pipeline_handle(
        self: &Arc<Self>,
        server: Address,
        pipeline: &str,
    ) -> PipelineHandle {
        PipelineHandle {
            client: Arc::clone(self),
            server,
            pipeline: pipeline.to_string(),
        }
    }

    /// Opens a distributed handle spanning the staging area, bootstrapped
    /// from one known member address.
    pub fn distributed_handle(
        self: &Arc<Self>,
        contact: Address,
        pipeline: &str,
    ) -> Result<DistributedPipelineHandle> {
        let members = self.view_from(contact)?;
        if members.is_empty() {
            return Err(ColzaError::EmptyGroup);
        }
        Ok(DistributedPipelineHandle {
            client: Arc::clone(self),
            pipeline: pipeline.to_string(),
            members: Mutex::new(members),
            policy: StagePolicy::BlockModulo,
            rr_state: Mutex::new(0),
        })
    }
}

/// A handle to a single pipeline instance on a single server.
pub struct PipelineHandle {
    client: Arc<ColzaClient>,
    server: Address,
    pipeline: String,
}

impl PipelineHandle {
    /// The target server.
    pub fn server(&self) -> Address {
        self.server
    }

    /// Starts an iteration on this single pipeline instance (no 2PC: a
    /// one-server handle has a trivially consistent view, but membership
    /// is still frozen for the iteration).
    pub fn activate(&self, iteration: u64) -> Result<()> {
        let mut sp = hpcsim::trace::span("colza", "colza.activate");
        if sp.active() {
            sp.arg("iteration", iteration);
            sp.arg("servers", 1);
        }
        let cfg = control_retry();
        let _: PrepareActivateReply = self.client.margo.forward_retry(
            self.server,
            "colza.prepare_activate",
            &PrepareActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            },
            &cfg,
        )?;
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.commit_activate",
            &CommitActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
                members: vec![self.server],
            },
            &cfg,
        )?)
    }

    /// Stages one serialized dataset on this server.
    pub fn stage(&self, meta: BlockMeta, payload: &Bytes) -> Result<()> {
        stage_on(&self.client.margo, self.server, &self.pipeline, meta, payload)
    }

    /// Executes the pipeline on this server alone.
    pub fn execute(&self, iteration: u64) -> Result<()> {
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.execute",
            &ExecuteArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            },
            &heavy_retry(),
        )?)
    }

    /// Ends the iteration on this server.
    pub fn deactivate(&self, iteration: u64) -> Result<()> {
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.deactivate",
            &DeactivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            },
            &control_retry(),
        )?)
    }

    /// Fetches the pipeline's latest result from this server.
    pub fn fetch_result(&self) -> Result<Option<Vec<u8>>> {
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.fetch_result",
            &FetchResultArgs {
                pipeline: self.pipeline.clone(),
            },
            &heavy_retry(),
        )?)
    }
}

/// A handle to a pipeline replicated across the staging area.
pub struct DistributedPipelineHandle {
    client: Arc<ColzaClient>,
    pipeline: String,
    members: Mutex<Vec<Address>>,
    policy: StagePolicy,
    rr_state: Mutex<usize>,
}

impl DistributedPipelineHandle {
    /// The current member list this handle operates over.
    pub fn members(&self) -> Vec<Address> {
        self.members.lock().clone()
    }

    /// Replaces the stage-distribution policy (§II-B: "users can change
    /// this policy").
    pub fn set_policy(&mut self, policy: StagePolicy) {
        self.policy = policy;
    }

    /// Starts an analysis iteration with the paper's two-phase commit:
    /// every server votes with its view epoch; any disagreement refreshes
    /// the client's view and retries. On success membership is frozen
    /// until [`DistributedPipelineHandle::deactivate`].
    pub fn activate(&self, iteration: u64) -> Result<()> {
        const MAX_ATTEMPTS: usize = 16;
        let mut sp = hpcsim::trace::span("colza", "colza.activate");
        if sp.active() {
            sp.arg("iteration", iteration);
        }
        for attempt in 0..MAX_ATTEMPTS {
            let members = self.members.lock().clone();
            if members.is_empty() {
                return Err(ColzaError::EmptyGroup);
            }
            // Phase 1: prepare (vote collection).
            let args = PrepareActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            };
            let votes = {
                let mut psp = hpcsim::trace::span("colza", "colza.2pc.prepare");
                if psp.active() {
                    psp.arg("servers", members.len());
                }
                let t0 = hpcsim::process::try_current().map(|c| c.now());
                let votes = self.broadcast::<_, PrepareActivateReply>(
                    &members,
                    "colza.prepare_activate",
                    &args,
                    &control_retry(),
                );
                if let (Some(t0), Some(c)) = (t0, hpcsim::process::try_current()) {
                    hpcsim::trace::record_duration("colza.2pc.vote", c.now() - t0);
                }
                votes
            };
            let mut ok_votes = Vec::new();
            let mut failed = false;
            for v in votes {
                match v {
                    Ok(reply) => ok_votes.push(reply),
                    Err(_) => failed = true,
                }
            }
            let consistent = !failed
                && ok_votes
                    .iter()
                    .all(|v| v.epoch == ok_votes[0].epoch && v.view == members);
            if consistent {
                // Phase 2: commit with the agreed member list.
                let commit = CommitActivateArgs {
                    pipeline: self.pipeline.clone(),
                    iteration,
                    members: members.clone(),
                };
                let results = {
                    let mut csp = hpcsim::trace::span("colza", "colza.2pc.commit");
                    if csp.active() {
                        csp.arg("servers", members.len());
                    }
                    self.broadcast::<_, ()>(
                        &members,
                        "colza.commit_activate",
                        &commit,
                        &control_retry(),
                    )
                };
                if results.iter().all(|r| r.is_ok()) {
                    if sp.active() {
                        sp.arg("attempts", attempt + 1);
                    }
                    return Ok(());
                }
            }
            // Abort and refresh: adopt the freshest view any server holds.
            hpcsim::trace::counter_add("colza.2pc.aborts", 1);
            let abort = AbortActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            };
            let _ = {
                let _asp = hpcsim::trace::span("colza", "colza.2pc.abort");
                self.broadcast::<_, ()>(&members, "colza.abort_activate", &abort, &control_retry())
            };
            let mut fresh: Option<Vec<Address>> = None;
            for v in ok_votes {
                fresh = Some(match fresh {
                    None => v.view,
                    Some(f) if v.view.len() > f.len() => v.view,
                    Some(f) => f,
                });
            }
            if fresh.is_none() {
                // All votes failed; re-query survivors of the old view.
                for m in &members {
                    if let Ok(view) = self.client.view_from(*m) {
                        fresh = Some(view);
                        break;
                    }
                }
            }
            match fresh {
                Some(view) if !view.is_empty() => *self.members.lock() = view,
                _ => return Err(ColzaError::EmptyGroup),
            }
        }
        Err(ColzaError::ActivateConflict {
            attempts: MAX_ATTEMPTS,
        })
    }

    /// Stages one block: the policy picks a server, which pulls the
    /// payload via RDMA from this process's memory.
    pub fn stage(&self, meta: BlockMeta, payload: &Bytes) -> Result<()> {
        let members = self.members.lock().clone();
        if members.is_empty() {
            return Err(ColzaError::EmptyGroup);
        }
        let target = {
            let mut rr = self.rr_state.lock();
            members[self.policy.select(&meta, members.len(), &mut rr)]
        };
        stage_on(&self.client.margo, target, &self.pipeline, meta, payload)
    }

    /// Non-blocking [`DistributedPipelineHandle::stage`].
    pub fn istage(
        self: &Arc<Self>,
        meta: BlockMeta,
        payload: Bytes,
    ) -> argo::Eventual<Result<()>> {
        let this = Arc::clone(self);
        let ev = argo::Eventual::new();
        let ev2 = ev.clone();
        let ctx = hpcsim::process::current();
        std::thread::Builder::new()
            .name("colza-istage".to_string())
            .spawn(move || {
                hpcsim::process::enter(ctx, move || ev2.set(this.stage(meta, &payload)))
            })
            .expect("spawn istage");
        ev
    }

    /// Runs the pipeline collectively on all servers for this iteration.
    pub fn execute(&self, iteration: u64) -> Result<()> {
        let members = self.members.lock().clone();
        let mut sp = hpcsim::trace::span("colza", "colza.execute");
        if sp.active() {
            sp.arg("iteration", iteration);
            sp.arg("servers", members.len());
        }
        let args = ExecuteArgs {
            pipeline: self.pipeline.clone(),
            iteration,
        };
        // Servers run a collective inside the handler, so every execute
        // RPC must be in flight simultaneously.
        let results = self.broadcast::<_, ()>(&members, "colza.execute", &args, &heavy_retry());
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Non-blocking [`DistributedPipelineHandle::execute`] — what a real
    /// simulation uses so analysis overlaps computation (§III-E1).
    pub fn iexecute(self: &Arc<Self>, iteration: u64) -> argo::Eventual<Result<()>> {
        let this = Arc::clone(self);
        let ev = argo::Eventual::new();
        let ev2 = ev.clone();
        let ctx = hpcsim::process::current();
        std::thread::Builder::new()
            .name("colza-iexecute".to_string())
            .spawn(move || hpcsim::process::enter(ctx, move || ev2.set(this.execute(iteration))))
            .expect("spawn iexecute");
        ev
    }

    /// Ends the iteration: staged data is released and membership thaws.
    pub fn deactivate(&self, iteration: u64) -> Result<()> {
        let members = self.members.lock().clone();
        let mut sp = hpcsim::trace::span("colza", "colza.deactivate");
        if sp.active() {
            sp.arg("iteration", iteration);
        }
        let args = DeactivateArgs {
            pipeline: self.pipeline.clone(),
            iteration,
        };
        let results = self.broadcast::<_, ()>(&members, "colza.deactivate", &args, &control_retry());
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Fetches the pipeline's latest result from the compositing root
    /// (rank 0 of the frozen member list).
    pub fn fetch_result(&self) -> Result<Option<Vec<u8>>> {
        let members = self.members.lock().clone();
        let root = *members.first().ok_or(ColzaError::EmptyGroup)?;
        Ok(self.client.margo.forward_retry(
            root,
            "colza.fetch_result",
            &FetchResultArgs {
                pipeline: self.pipeline.clone(),
            },
            &heavy_retry(),
        )?)
    }

    /// Refreshes the member view from a live server.
    pub fn refresh_view(&self) -> Result<Vec<Address>> {
        let members = self.members.lock().clone();
        for m in &members {
            if let Ok(view) = self.client.view_from(*m) {
                if !view.is_empty() {
                    *self.members.lock() = view.clone();
                    return Ok(view);
                }
            }
        }
        Err(ColzaError::EmptyGroup)
    }

    /// Concurrently forwards an RPC to every member (one thread each,
    /// sharing this process's simulated context), collecting per-member
    /// results in order. Each call retries under `cfg`, so transient
    /// message loss does not abort a whole round.
    fn broadcast<A, R>(
        &self,
        members: &[Address],
        name: &str,
        args: &A,
        cfg: &RetryConfig,
    ) -> Vec<Result<R>>
    where
        A: serde::Serialize + Clone + Send + 'static,
        R: serde::de::DeserializeOwned + Send + 'static,
    {
        if members.len() == 1 {
            return vec![self
                .client
                .margo
                .forward_retry(members[0], name, args, cfg)
                .map_err(ColzaError::from)];
        }
        let ctx = hpcsim::process::current();
        let handles: Vec<_> = members
            .iter()
            .map(|&m| {
                let margo = Arc::clone(&self.client.margo);
                let name = name.to_string();
                let args = args.clone();
                let ctx = Arc::clone(&ctx);
                let cfg = *cfg;
                std::thread::Builder::new()
                    .name("colza-bcast".to_string())
                    .spawn(move || {
                        hpcsim::process::enter(ctx, move || {
                            margo
                                .forward_retry::<A, R>(m, &name, &args, &cfg)
                                .map_err(ColzaError::from)
                        })
                    })
                    .expect("spawn broadcast thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("broadcast thread panicked"))
            .collect()
    }
}

const RPC_TIMEOUT: Duration = Duration::from_secs(60);

/// Retry policy for control-plane RPCs (activate phases, view queries,
/// deactivate): short tries, quick backoff, a bounded overall budget.
/// `Unreachable` is not retried — a closed endpoint means a dead peer,
/// and membership (not the transport) must react to that.
fn control_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 0,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(50),
        per_try_timeout: Duration::from_millis(400),
        deadline: Some(Duration::from_secs(6)),
        ..Default::default()
    }
}

/// Retry policy for heavy RPCs (execute, stage, result fetch), whose
/// handlers legitimately run for a long time: generous per-try timeouts
/// so slow-but-alive servers are not mistaken for lossy links.
fn heavy_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 0,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(100),
        per_try_timeout: Duration::from_secs(10),
        deadline: Some(RPC_TIMEOUT),
        ..Default::default()
    }
}

fn stage_on(
    margo: &Arc<MargoInstance>,
    target: Address,
    pipeline: &str,
    meta: BlockMeta,
    payload: &Bytes,
) -> Result<()> {
    debug_assert_eq!(meta.size, payload.len());
    let mut sp = hpcsim::trace::span("colza", "colza.stage");
    if sp.active() {
        sp.arg("block", meta.block_id);
        sp.arg("iteration", meta.iteration);
        sp.arg("bytes", meta.size);
    }
    let endpoint = margo.endpoint();
    let bulk = endpoint.expose(payload.clone());
    let args = StageArgs {
        pipeline: pipeline.to_string(),
        meta,
        bulk,
    };
    // Stage RPCs retry through loss: the server's RDMA pull is repeatable
    // while the exposure is live, and req-id dedup keeps a block from
    // being staged twice.
    let cfg = RetryConfig {
        per_try_timeout: Duration::from_secs(2),
        ..heavy_retry()
    };
    let out: std::result::Result<(), margo::RpcError> =
        margo.forward_retry(target, "colza.stage", &args, &cfg);
    endpoint.unexpose(bulk).ok();
    out.map_err(ColzaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(block_id: u64) -> BlockMeta {
        BlockMeta {
            name: "b".to_string(),
            block_id,
            iteration: 0,
            size: 0,
        }
    }

    #[test]
    fn block_modulo_policy_is_deterministic() {
        let p = StagePolicy::BlockModulo;
        let mut rr = 0;
        assert_eq!(p.select(&meta(0), 4, &mut rr), 0);
        assert_eq!(p.select(&meta(5), 4, &mut rr), 1);
        assert_eq!(p.select(&meta(7), 4, &mut rr), 3);
        // Same block, same server - the property staging relies on.
        assert_eq!(p.select(&meta(7), 4, &mut rr), 3);
    }

    #[test]
    fn round_robin_policy_rotates() {
        let p = StagePolicy::RoundRobin;
        let mut rr = 0;
        let picks: Vec<usize> = (0..6).map(|_| p.select(&meta(9), 3, &mut rr)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn custom_policy_is_clamped_to_group_size() {
        let p = StagePolicy::Custom(Arc::new(|m: &BlockMeta, _n| m.block_id as usize * 100));
        let mut rr = 0;
        let s = p.select(&meta(3), 4, &mut rr);
        assert!(s < 4, "custom policy result must be reduced mod n");
    }

    #[test]
    fn policies_cover_all_servers_for_dense_blocks() {
        let p = StagePolicy::BlockModulo;
        let mut rr = 0;
        let mut seen = std::collections::BTreeSet::new();
        for b in 0..8 {
            seen.insert(p.select(&meta(b), 4, &mut rr));
        }
        assert_eq!(seen.len(), 4, "all servers receive blocks");
    }
}
