//! The Colza client library: pipeline handles and the staging protocol.
//!
//! Block placement runs through the `store` crate's consistent-hash
//! ring: the client rebuilds the ring from the frozen member list (the
//! same computation every server performs at `commit_activate`) and
//! stages each block on its primary owner plus `replication - 1`
//! replicas. The old ad-hoc policies (block-modulo, round-robin) are
//! gone — determinism between client and servers is what lets crash
//! repair promote replicas without any coordination.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use margo::{MargoInstance, RetryConfig};
use na::Address;
use store::{BlockKey, HashRing, RingConfig, Role};

use crate::codec::{CodecConfig, CodecSpec};
use crate::error::{ColzaError, Result};
use crate::protocol::*;

/// A Colza client: one per simulation process.
pub struct ColzaClient {
    margo: Arc<MargoInstance>,
}

impl ColzaClient {
    /// Wraps a margo instance (which may share the simulation's endpoint).
    pub fn new(margo: Arc<MargoInstance>) -> Arc<Self> {
        Arc::new(Self { margo })
    }

    /// The underlying margo instance.
    pub fn margo(&self) -> &Arc<MargoInstance> {
        &self.margo
    }

    /// Queries the current staging-area view from any live member.
    /// Retries briefly through transient loss; a dead contact fails fast.
    pub fn view_from(&self, contact: Address) -> Result<Vec<Address>> {
        let cfg = RetryConfig {
            deadline: Some(Duration::from_secs(2)),
            ..control_retry()
        };
        Ok(self
            .margo
            .forward_retry(contact, "colza.get_view", &(), &cfg)?)
    }

    /// Opens a handle to one pipeline instance on one server.
    pub fn pipeline_handle(
        self: &Arc<Self>,
        server: Address,
        pipeline: &str,
    ) -> PipelineHandle {
        PipelineHandle {
            client: Arc::clone(self),
            server,
            pipeline: pipeline.to_string(),
        }
    }

    /// Opens a distributed handle spanning the staging area, bootstrapped
    /// from one known member address.
    pub fn distributed_handle(
        self: &Arc<Self>,
        contact: Address,
        pipeline: &str,
    ) -> Result<DistributedPipelineHandle> {
        let members = self.view_from(contact)?;
        if members.is_empty() {
            return Err(ColzaError::EmptyGroup);
        }
        Ok(DistributedPipelineHandle {
            client: Arc::clone(self),
            pipeline: pipeline.to_string(),
            tenant: TenantId::default(),
            members: Mutex::new(members),
            ring_cfg: RingConfig::default(),
            placement: Mutex::new(None),
            heavy: heavy_retry(),
            codec_cfg: CodecConfig::default(),
            chain: Mutex::new(HashMap::new()),
        })
    }
}

/// A handle to a single pipeline instance on a single server.
pub struct PipelineHandle {
    client: Arc<ColzaClient>,
    server: Address,
    pipeline: String,
}

impl PipelineHandle {
    /// The target server.
    pub fn server(&self) -> Address {
        self.server
    }

    /// Starts an iteration on this single pipeline instance (no 2PC: a
    /// one-server handle has a trivially consistent view, but membership
    /// is still frozen for the iteration).
    pub fn activate(&self, iteration: u64) -> Result<()> {
        let mut sp = hpcsim::trace::span("colza", "colza.activate");
        if sp.active() {
            sp.arg("iteration", iteration);
            sp.arg("servers", 1);
        }
        let cfg = control_retry();
        let _: PrepareActivateReply = self.client.margo.forward_retry(
            self.server,
            "colza.prepare_activate",
            &PrepareActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            },
            &cfg,
        )?;
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.commit_activate",
            &CommitActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
                members: vec![self.server],
                ring: RingConfig::default(),
            },
            &cfg,
        )?)
    }

    /// Stages one serialized dataset on this server (a one-member ring:
    /// the server is trivially the block's primary).
    pub fn stage(&self, meta: BlockMeta, payload: &Bytes) -> Result<()> {
        let ring = HashRing::build_in_sim(&[self.server], RingConfig::default());
        stage_via_ring(&self.client.margo, &ring, &self.pipeline, &meta, payload)
    }

    /// Executes the pipeline on this server alone. Reactive pipelines
    /// may report [`ExecOutcome::Skipped`] when a trigger decided
    /// against running this iteration.
    pub fn execute(&self, iteration: u64) -> Result<ExecOutcome> {
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.execute",
            &ExecuteArgs {
                pipeline: self.pipeline.clone(),
                iteration,
                tenant: TenantId::default(),
            },
            &heavy_retry(),
        )?)
    }

    /// Ends the iteration on this server.
    pub fn deactivate(&self, iteration: u64) -> Result<()> {
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.deactivate",
            &DeactivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
                tenant: TenantId::default(),
            },
            &control_retry(),
        )?)
    }

    /// Fetches the pipeline's latest result from this server.
    pub fn fetch_result(&self) -> Result<Option<Vec<u8>>> {
        Ok(self.client.margo.forward_retry(
            self.server,
            "colza.fetch_result",
            &FetchResultArgs {
                pipeline: self.pipeline.clone(),
            },
            &heavy_retry(),
        )?)
    }
}

/// A handle to a pipeline replicated across the staging area.
pub struct DistributedPipelineHandle {
    client: Arc<ColzaClient>,
    pipeline: String,
    /// The tenant this handle acts as: stamped into every staged block
    /// and execute/deactivate request. Defaults to the implicit tenant.
    tenant: TenantId,
    members: Mutex<Vec<Address>>,
    ring_cfg: RingConfig,
    /// Ring cache: rebuilt only when the member list changes.
    placement: Mutex<Option<(Vec<Address>, Arc<HashRing>)>>,
    /// Retry policy for the heavy RPCs (execute, result fetch).
    heavy: RetryConfig,
    /// Per-dataset codec selection for staged blocks.
    codec_cfg: CodecConfig,
    /// Delta-chain state per `(dataset name, block_id)`: the last
    /// successfully staged plain payload, the iteration it belonged to
    /// and the member view it was staged under. A chain only continues
    /// while the view is unchanged (the epoch-anchor rule).
    chain: Mutex<HashMap<(String, u64), ChainBase>>,
}

/// The client-side base of one delta chain.
struct ChainBase {
    iteration: u64,
    members: Vec<Address>,
    plain: Bytes,
}

impl DistributedPipelineHandle {
    /// The current member list this handle operates over.
    pub fn members(&self) -> Vec<Address> {
        self.members.lock().clone()
    }

    /// Sets the replication factor: each block is staged on its primary
    /// plus `replication - 1` replicas (clamped to the group size), and
    /// a crash between `stage` and `execute` recovers from the replicas
    /// instead of erroring back to the simulation. Takes effect at the
    /// next [`DistributedPipelineHandle::activate`].
    pub fn set_replication(&mut self, replication: usize) {
        assert!(replication >= 1, "replication factor must be at least 1");
        self.ring_cfg.replication = replication;
        self.placement.lock().take();
    }

    /// Replaces the retry policy for heavy RPCs (execute and result
    /// fetch). The default generous 10 s per-try assumes a dead target
    /// fails fast with `Unreachable`; a harness that crash-injects
    /// fail-silent servers (open endpoint, swallowed replies) lowers the
    /// per-try so a lost reply is re-probed — and turned into
    /// `Unreachable` once the endpoint closes — sooner.
    pub fn set_heavy_retry(&mut self, cfg: RetryConfig) {
        self.heavy = cfg;
    }

    /// Sets the tenant this handle operates as (DESIGN.md §14). Every
    /// subsequent `stage` carries it for quota accounting, and every
    /// `execute` for fair-share scheduling. A handle that never calls
    /// this runs as the implicit `"default"` tenant.
    pub fn set_tenant(&mut self, tenant: impl Into<String>) {
        self.tenant = TenantId::new(tenant);
    }

    /// The tenant this handle operates as.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// Replaces the codec configuration: how each dataset is encoded by
    /// [`DistributedPipelineHandle::stage`] before the owners pull it.
    /// Resets any in-progress delta chains (the next delta-coded stage
    /// anchors). The default is raw staging.
    pub fn set_codec(&mut self, cfg: CodecConfig) {
        self.codec_cfg = cfg;
        self.chain.lock().clear();
    }

    /// The codec configuration staged blocks are encoded with.
    pub fn codec_config(&self) -> &CodecConfig {
        &self.codec_cfg
    }

    /// Adopts the staging area's advertised codec configuration (the
    /// `codec` section of the daemons' [`crate::DaemonConfig`]), so
    /// client and deployment agree without out-of-band configuration.
    /// Explicit opt-in — plain handles never issue this extra RPC.
    pub fn adopt_server_codec(&mut self, contact: Address) -> Result<()> {
        let cfg: CodecConfig =
            self.client
                .margo
                .forward_retry(contact, "colza.get_codec_config", &(), &control_retry())?;
        self.set_codec(cfg);
        Ok(())
    }

    /// Replaces the full ring configuration (vnodes and replication).
    pub fn set_ring_config(&mut self, cfg: RingConfig) {
        assert!(cfg.replication >= 1, "replication factor must be at least 1");
        self.ring_cfg = cfg;
        self.placement.lock().take();
    }

    /// The ring configuration staged blocks are placed with.
    pub fn ring_config(&self) -> RingConfig {
        self.ring_cfg
    }

    /// The servers that will hold a block (primary first) under the
    /// current member view — the ring placement shared with the servers.
    pub fn targets_for(&self, block_id: u64) -> Vec<Address> {
        self.ring().owners(&BlockKey::new(&self.pipeline, block_id))
    }

    /// The ring over the current member list (cached until the view
    /// changes).
    fn ring(&self) -> Arc<HashRing> {
        let members = self.members.lock().clone();
        let mut placement = self.placement.lock();
        match placement.as_ref() {
            Some((m, ring)) if *m == members => Arc::clone(ring),
            _ => {
                let ring = Arc::new(HashRing::build_in_sim(&members, self.ring_cfg));
                *placement = Some((members, Arc::clone(&ring)));
                ring
            }
        }
    }

    /// Starts an analysis iteration with the paper's two-phase commit:
    /// every server votes with its view epoch; any disagreement refreshes
    /// the client's view and retries. On success membership is frozen
    /// until [`DistributedPipelineHandle::deactivate`] — and, new with
    /// the staging store, every server has reconciled its held blocks
    /// against the frozen view (migration/repair) before the commit
    /// acknowledgement comes back.
    pub fn activate(&self, iteration: u64) -> Result<()> {
        const MAX_ATTEMPTS: usize = 16;
        let mut sp = hpcsim::trace::span("colza", "colza.activate");
        if sp.active() {
            sp.arg("iteration", iteration);
        }
        for attempt in 0..MAX_ATTEMPTS {
            let members = self.members.lock().clone();
            if members.is_empty() {
                return Err(ColzaError::EmptyGroup);
            }
            // Phase 1: prepare (vote collection).
            let args = PrepareActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            };
            let votes = {
                let mut psp = hpcsim::trace::span("colza", "colza.2pc.prepare");
                if psp.active() {
                    psp.arg("servers", members.len());
                }
                let t0 = hpcsim::process::try_current().map(|c| c.now());
                let votes = self.broadcast::<_, PrepareActivateReply>(
                    &members,
                    "colza.prepare_activate",
                    &args,
                    &activate_retry(),
                );
                if let (Some(t0), Some(c)) = (t0, hpcsim::process::try_current()) {
                    hpcsim::trace::record_duration("colza.2pc.vote", c.now() - t0);
                }
                votes
            };
            let mut ok_votes = Vec::new();
            let mut failed = false;
            for v in votes {
                match v {
                    Ok(reply) => ok_votes.push(reply),
                    Err(_) => failed = true,
                }
            }
            let consistent = !failed
                && ok_votes
                    .iter()
                    .all(|v| v.epoch == ok_votes[0].epoch && v.view == members);
            if consistent {
                // Phase 2: commit with the agreed member list and ring
                // parameters; servers sync their stores before replying.
                let commit = CommitActivateArgs {
                    pipeline: self.pipeline.clone(),
                    iteration,
                    members: members.clone(),
                    ring: self.ring_cfg,
                };
                let results = {
                    let mut csp = hpcsim::trace::span("colza", "colza.2pc.commit");
                    if csp.active() {
                        csp.arg("servers", members.len());
                    }
                    self.broadcast::<_, ()>(
                        &members,
                        "colza.commit_activate",
                        &commit,
                        &commit_retry(),
                    )
                };
                if results.iter().all(|r| r.is_ok()) {
                    if sp.active() {
                        sp.arg("attempts", attempt + 1);
                    }
                    return Ok(());
                }
            }
            // Abort and refresh: adopt the freshest view any server holds.
            hpcsim::trace::counter_add("colza.2pc.aborts", 1);
            let abort = AbortActivateArgs {
                pipeline: self.pipeline.clone(),
                iteration,
            };
            let _ = {
                let _asp = hpcsim::trace::span("colza", "colza.2pc.abort");
                self.broadcast::<_, ()>(&members, "colza.abort_activate", &abort, &activate_retry())
            };
            let mut fresh: Option<Vec<Address>> = None;
            for v in ok_votes {
                fresh = Some(match fresh {
                    None => v.view,
                    Some(f) if v.view.len() > f.len() => v.view,
                    Some(f) => f,
                });
            }
            if fresh.is_none() {
                // All votes failed; re-query survivors of the old view.
                for m in &members {
                    if let Ok(view) = self.client.view_from(*m) {
                        fresh = Some(view);
                        break;
                    }
                }
            }
            match fresh {
                Some(view) if !view.is_empty() => *self.members.lock() = view,
                _ => return Err(ColzaError::EmptyGroup),
            }
        }
        Err(ColzaError::ActivateConflict {
            attempts: MAX_ATTEMPTS,
        })
    }

    /// Stages one block on its ring owners: the primary (which feeds the
    /// pipeline) plus `replication - 1` replicas, each pulling the
    /// payload via RDMA from this process's memory.
    ///
    /// When a target fails mid-stage (a server died or is draining out),
    /// the client refreshes its view and re-routes the block through the
    /// ring over the surviving members — the block lands on the dead
    /// server's successor instead of being lost. Server-side inserts are
    /// idempotent, so re-staging an already-delivered copy is harmless.
    /// A re-route can transiently leave the block *fed* on two servers
    /// (the original primary was falsely suspected, or fed the copy
    /// before the failure); servers settle that at `execute` time by
    /// reconciling fed state against the frozen placement, so the block
    /// still renders exactly once.
    ///
    /// With a non-raw codec configured for the dataset, the payload is
    /// encoded here — exactly once — and the *frame* is what every owner
    /// pulls; `meta.codec`/`meta.encoded_size` are filled in from the
    /// encoding, so callers never set them. A delta-coded dataset diffs
    /// against the previous successfully staged payload only while the
    /// member view is unchanged; any view change, size change or
    /// re-route anchors the chain with a full frame (the successor
    /// owner may not hold the base).
    pub fn stage(&self, meta: BlockMeta, payload: &Bytes) -> Result<()> {
        const MAX_REROUTES: usize = 4;
        let spec = self.codec_cfg.spec_for(&meta.name);
        let mut last: Option<ColzaError> = None;
        // Stateless codecs (raw, shuffle+LZ, lossy) encode exactly once,
        // outside the re-route loop; only delta chains re-examine their
        // base per attempt (a re-route must anchor).
        let stateless = if spec == CodecSpec::Delta {
            None
        } else {
            Some(crate::codec::encode_block(spec, payload, None)?)
        };
        // Set after a re-route: the remainder of this stage call must
        // anchor rather than diff.
        let mut anchored = false;
        for attempt in 0..MAX_REROUTES {
            let members = self.members.lock().clone();
            if members.is_empty() {
                return Err(ColzaError::EmptyGroup);
            }
            let enc = match &stateless {
                Some(e) => e.clone(),
                None => {
                    let base_owned: Option<(Bytes, u64)> = if anchored {
                        None
                    } else {
                        let chain = self.chain.lock();
                        chain
                            .get(&(meta.name.clone(), meta.block_id))
                            .filter(|cb| {
                                cb.members == members
                                    && cb.plain.len() == payload.len()
                                    && cb.iteration < meta.iteration
                            })
                            .map(|cb| (cb.plain.clone(), cb.iteration))
                    };
                    crate::codec::encode_block(
                        spec,
                        payload,
                        base_owned.as_ref().map(|(b, it)| (b, *it)),
                    )?
                }
            };
            let mut wire_meta = meta.clone();
            wire_meta.codec = enc.codec;
            wire_meta.encoded_size = enc.frame.len();
            wire_meta.tenant = self.tenant.clone();
            let ring = self.ring();
            match stage_via_ring(&self.client.margo, &ring, &self.pipeline, &wire_meta, &enc.frame)
            {
                Ok(()) => {
                    if spec == CodecSpec::Delta {
                        self.chain.lock().insert(
                            (meta.name.clone(), meta.block_id),
                            ChainBase {
                                iteration: meta.iteration,
                                members,
                                plain: payload.clone(),
                            },
                        );
                    }
                    return Ok(());
                }
                // Quota backpressure is *not* a placement failure: the
                // block's owners are fine, this tenant just holds too
                // much. Re-routing would anchor delta chains and shuffle
                // copies for nothing — surface it to the caller, whose
                // back-off (or `stage_with_backpressure`) is the fix.
                Err(e @ ColzaError::QuotaExceeded(_)) => return Err(e),
                Err(e) if e.is_retryable() && attempt + 1 < MAX_REROUTES => {
                    hpcsim::trace::counter_add("colza.stage.reroutes", 1);
                    last = Some(e);
                    anchored = true;
                    let _ = self.refresh_view();
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ColzaError::EmptyGroup))
    }

    /// [`DistributedPipelineHandle::stage`], riding through quota
    /// backpressure: on [`ColzaError::QuotaExceeded`] the client backs
    /// off (exponentially, from 1 ms virtual) and retries until the
    /// tenant's earlier iterations release enough quota or `budget`
    /// runs out. Every other error keeps `stage`'s semantics.
    pub fn stage_with_backpressure(
        &self,
        meta: BlockMeta,
        payload: &Bytes,
        budget: Duration,
    ) -> Result<()> {
        let ctx = hpcsim::process::current();
        let deadline = ctx.now() + budget.as_nanos() as u64;
        let mut delay = Duration::from_millis(1);
        loop {
            match self.stage(meta.clone(), payload) {
                Err(ColzaError::QuotaExceeded(m)) => {
                    hpcsim::trace::counter_add("colza.stage.backpressure", 1);
                    if ctx.now() >= deadline {
                        return Err(ColzaError::QuotaExceeded(m));
                    }
                    // The backoff costs virtual time (the simulated
                    // client really waits) *and* yields wall-clock so a
                    // concurrent deactivate can land and free quota.
                    std::thread::sleep(delay);
                    ctx.advance(delay.as_nanos() as u64);
                    delay = (delay * 2).min(Duration::from_millis(64));
                }
                other => return other,
            }
        }
    }

    /// Non-blocking [`DistributedPipelineHandle::stage`].
    pub fn istage(
        self: &Arc<Self>,
        meta: BlockMeta,
        payload: Bytes,
    ) -> argo::Eventual<Result<()>> {
        let this = Arc::clone(self);
        let ev = argo::Eventual::new();
        let ev2 = ev.clone();
        let ctx = hpcsim::process::current();
        std::thread::Builder::new()
            .name("colza-istage".to_string())
            .spawn(move || {
                hpcsim::process::enter(ctx, move || ev2.set(this.stage(meta, &payload)))
            })
            .expect("spawn istage");
        ev
    }

    /// Runs the pipeline collectively on all servers for this iteration.
    /// Returns [`ExecOutcome::Skipped`] when the pipeline's trigger
    /// program decided against this iteration — a successful outcome,
    /// and necessarily unanimous: every server evaluates the same
    /// predicates over the same fused global statistics. Divergent
    /// outcomes therefore indicate a broken deployment (e.g. servers
    /// running different scripts under one name) and surface as
    /// [`ColzaError::Pipeline`].
    pub fn execute(&self, iteration: u64) -> Result<ExecOutcome> {
        let members = self.members.lock().clone();
        let mut sp = hpcsim::trace::span("colza", "colza.execute");
        if sp.active() {
            sp.arg("iteration", iteration);
            sp.arg("servers", members.len());
        }
        let args = ExecuteArgs {
            pipeline: self.pipeline.clone(),
            iteration,
            tenant: self.tenant.clone(),
        };
        // Servers run a collective inside the handler, so every execute
        // RPC must be in flight simultaneously.
        let results =
            self.broadcast::<_, ExecOutcome>(&members, "colza.execute", &args, &self.heavy);
        let mut merged: Option<ExecOutcome> = None;
        for r in results {
            let outcome = r?;
            match merged {
                None => merged = Some(outcome),
                Some(prev) if prev == outcome => {}
                Some(prev) => {
                    return Err(ColzaError::Pipeline(format!(
                        "trigger decision diverged across servers on iteration {iteration}: \
                         {prev:?} vs {outcome:?}"
                    )))
                }
            }
        }
        let outcome = merged.unwrap_or(ExecOutcome::Ran);
        if sp.active() && outcome.is_skipped() {
            sp.arg("skipped", true);
        }
        Ok(outcome)
    }

    /// [`DistributedPipelineHandle::execute`], with abort-and-recover:
    /// when a server dies inside the iteration's collective, survivors
    /// reply with [`ColzaError::IterationAborted`] (their MoNA
    /// communicator was revoked) and this method re-runs the activate
    /// 2PC against the refreshed — shrunk — view and re-issues the
    /// execute. Staged inputs survive the abort on the servers (they
    /// are only released at deactivate), so the re-executed iteration
    /// re-feeds from store replicas without re-staging.
    ///
    /// Plain [`DistributedPipelineHandle::execute`] keeps its
    /// fail-fast semantics; call this variant when the simulation
    /// wants the iteration to ride through crashes.
    pub fn execute_with_recovery(&self, iteration: u64) -> Result<ExecOutcome> {
        const MAX_ABORTS: usize = 4;
        const REACTIVATE_TRIES: usize = 600;
        let mut aborts = 0;
        loop {
            let err = match self.execute(iteration) {
                Ok(outcome) => return Ok(outcome),
                Err(e) if e.is_retryable() && aborts < MAX_ABORTS => e,
                Err(e) => return Err(e),
            };
            aborts += 1;
            hpcsim::trace::counter_add("colza.exec.recoveries", 1);
            let mut sp = hpcsim::trace::span("colza", "colza.execute.recover");
            if sp.active() {
                sp.arg("iteration", iteration);
                sp.arg("aborts", aborts as u64);
            }
            // The dead member can linger in the survivors' SWIM views for
            // a few protocol rounds after the abort: keep refreshing and
            // re-freezing until the 2PC commits on a stable shrunk view.
            let mut reactivated = false;
            for _ in 0..REACTIVATE_TRIES {
                match self.refresh_view().and_then(|_| self.activate(iteration)) {
                    Ok(()) => {
                        reactivated = true;
                        break;
                    }
                    Err(e) if e.is_retryable() => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            if !reactivated {
                return Err(err);
            }
        }
    }

    /// Non-blocking [`DistributedPipelineHandle::execute`] — what a real
    /// simulation uses so analysis overlaps computation (§III-E1).
    pub fn iexecute(self: &Arc<Self>, iteration: u64) -> argo::Eventual<Result<ExecOutcome>> {
        let this = Arc::clone(self);
        let ev = argo::Eventual::new();
        let ev2 = ev.clone();
        let ctx = hpcsim::process::current();
        std::thread::Builder::new()
            .name("colza-iexecute".to_string())
            .spawn(move || hpcsim::process::enter(ctx, move || ev2.set(this.execute(iteration))))
            .expect("spawn iexecute");
        ev
    }

    /// Ends the iteration: staged data is released and membership thaws.
    pub fn deactivate(&self, iteration: u64) -> Result<()> {
        let members = self.members.lock().clone();
        let mut sp = hpcsim::trace::span("colza", "colza.deactivate");
        if sp.active() {
            sp.arg("iteration", iteration);
        }
        let args = DeactivateArgs {
            pipeline: self.pipeline.clone(),
            iteration,
            tenant: self.tenant.clone(),
        };
        let results = self.broadcast::<_, ()>(&members, "colza.deactivate", &args, &control_retry());
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Fetches the pipeline's latest result from the compositing root
    /// (rank 0 of the frozen member list).
    pub fn fetch_result(&self) -> Result<Option<Vec<u8>>> {
        let members = self.members.lock().clone();
        let root = *members.first().ok_or(ColzaError::EmptyGroup)?;
        Ok(self.client.margo.forward_retry(
            root,
            "colza.fetch_result",
            &FetchResultArgs {
                pipeline: self.pipeline.clone(),
            },
            &self.heavy,
        )?)
    }

    /// Refreshes the member view from a live server.
    pub fn refresh_view(&self) -> Result<Vec<Address>> {
        let members = self.members.lock().clone();
        for m in &members {
            if let Ok(view) = self.client.view_from(*m) {
                if !view.is_empty() {
                    *self.members.lock() = view.clone();
                    return Ok(view);
                }
            }
        }
        Err(ColzaError::EmptyGroup)
    }

    /// Concurrently forwards an RPC to every member (one thread each,
    /// sharing this process's simulated context), collecting per-member
    /// results in order. Each call retries under `cfg`, so transient
    /// message loss does not abort a whole round.
    fn broadcast<A, R>(
        &self,
        members: &[Address],
        name: &str,
        args: &A,
        cfg: &RetryConfig,
    ) -> Vec<Result<R>>
    where
        A: serde::Serialize + Clone + Send + 'static,
        R: serde::de::DeserializeOwned + Send + 'static,
    {
        if members.len() == 1 {
            return vec![self
                .client
                .margo
                .forward_retry(members[0], name, args, cfg)
                .map_err(ColzaError::from)];
        }
        let ctx = hpcsim::process::current();
        let handles: Vec<_> = members
            .iter()
            .map(|&m| {
                let margo = Arc::clone(&self.client.margo);
                let name = name.to_string();
                let args = args.clone();
                let ctx = Arc::clone(&ctx);
                let cfg = *cfg;
                std::thread::Builder::new()
                    .name("colza-bcast".to_string())
                    .spawn(move || {
                        hpcsim::process::enter(ctx, move || {
                            margo
                                .forward_retry::<A, R>(m, &name, &args, &cfg)
                                .map_err(ColzaError::from)
                        })
                    })
                    .expect("spawn broadcast thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("broadcast thread panicked"))
            .collect()
    }
}

const RPC_TIMEOUT: Duration = Duration::from_secs(60);

/// Retry policy for control-plane RPCs (activate phases, view queries,
/// deactivate): short tries, quick backoff, a bounded overall budget.
/// `Unreachable` is not retried — a closed endpoint means a dead peer,
/// and membership (not the transport) must react to that.
fn control_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 0,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(50),
        per_try_timeout: Duration::from_millis(400),
        deadline: Some(Duration::from_secs(6)),
        ..Default::default()
    }
}

/// Retry policy for the 2PC prepare/abort broadcasts: trivial handlers,
/// so short tries only resend over genuinely dropped messages, but a
/// generous deadline — a commit syncing stores on another member can
/// hold the view busy for a while, and abandoning the round early just
/// re-enqueues the whole 2PC behind it (a livelock). A dead member
/// still fails fast (`Unreachable`).
fn activate_retry() -> RetryConfig {
    RetryConfig {
        deadline: Some(Duration::from_secs(30)),
        ..control_retry()
    }
}

/// Retry policy for the 2PC commit specifically. The commit handler
/// re-syncs the server's store holdings before replying, which takes
/// real seconds when pushes ride out loss — with a short per-try the
/// client would race the handler with resends, and *how many* resends
/// land is a wall-clock race that perturbs the per-link message
/// sequence the fault plan hashes on, breaking same-seed determinism.
/// A long per-try means resends happen only for genuinely dropped
/// messages; in-flight suppression absorbs them either way, and the
/// straggler reply to an earlier attempt still completes the call.
fn commit_retry() -> RetryConfig {
    RetryConfig {
        per_try_timeout: Duration::from_secs(10),
        deadline: Some(Duration::from_secs(30)),
        ..control_retry()
    }
}

/// Retry policy for heavy RPCs (execute, stage, result fetch), whose
/// handlers legitimately run for a long time: generous per-try timeouts
/// so slow-but-alive servers are not mistaken for lossy links.
fn heavy_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 0,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(100),
        per_try_timeout: Duration::from_secs(10),
        deadline: Some(RPC_TIMEOUT),
        ..Default::default()
    }
}

/// Stages one block on its ring owners: the payload is exposed once and
/// each owner pulls it; the primary (owner 0) feeds its backend, the
/// replicas only keep the bytes. Shared by both handle flavours — this
/// is the single placement path in the client.
fn stage_via_ring(
    margo: &Arc<MargoInstance>,
    ring: &HashRing,
    pipeline: &str,
    meta: &BlockMeta,
    payload: &Bytes,
) -> Result<()> {
    // `payload` is the wire form: the encoded frame for codec-staged
    // blocks, the serialized dataset itself for raw ones.
    debug_assert_eq!(meta.encoded_size, payload.len());
    let targets = ring.owners(&BlockKey::new(pipeline, meta.block_id));
    if targets.is_empty() {
        return Err(ColzaError::EmptyGroup);
    }
    let mut sp = hpcsim::trace::span("colza", "colza.stage");
    if sp.active() {
        sp.arg("block", meta.block_id);
        sp.arg("iteration", meta.iteration);
        sp.arg("bytes", meta.size);
        sp.arg("copies", targets.len());
        if meta.codec != crate::codec::CodecId::Raw {
            sp.arg("codec", meta.codec.name());
            sp.arg("wire_bytes", meta.encoded_size);
        }
    }
    let endpoint = margo.endpoint();
    let bulk = endpoint.expose(payload.clone());
    // Stage RPCs retry through loss: the server's RDMA pull is repeatable
    // while the exposure is live, and req-id dedup keeps a block from
    // being staged twice.
    let cfg = RetryConfig {
        per_try_timeout: Duration::from_secs(2),
        ..heavy_retry()
    };
    let mut out: Result<()> = Ok(());
    for (i, &target) in targets.iter().enumerate() {
        let args = StageArgs {
            pipeline: pipeline.to_string(),
            meta: meta.clone(),
            role: if i == 0 { Role::Primary } else { Role::Replica },
            bulk,
        };
        if let Err(e) = margo.forward_retry::<_, ()>(target, "colza.stage", &args, &cfg) {
            out = Err(ColzaError::from(e));
            break;
        }
    }
    endpoint.unexpose(bulk).ok();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u64, replication: usize) -> HashRing {
        let members: Vec<Address> = (0..n).map(Address).collect();
        HashRing::build(
            &members,
            |_| None,
            RingConfig {
                replication,
                ..RingConfig::default()
            },
        )
    }

    #[test]
    fn ring_placement_is_deterministic() {
        let a = ring(4, 2);
        let b = ring(4, 2);
        for id in 0..32 {
            let k = BlockKey::new("p", id);
            assert_eq!(a.owners(&k), b.owners(&k), "client and servers must agree");
        }
    }

    #[test]
    fn ring_placement_covers_all_servers_for_dense_blocks() {
        let r = ring(4, 1);
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..64 {
            seen.insert(r.primary(&BlockKey::new("p", id)).unwrap());
        }
        assert_eq!(seen.len(), 4, "all servers receive blocks");
    }

    #[test]
    fn replication_yields_distinct_owners_primary_first() {
        let r = ring(3, 2);
        for id in 0..32 {
            let k = BlockKey::new("p", id);
            let owners = r.owners(&k);
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0], owners[1]);
            assert_eq!(owners[0], r.primary(&k).unwrap());
        }
    }

    #[test]
    fn single_server_ring_is_trivial() {
        // The one-server PipelineHandle path reduces to "that server".
        let members = [Address(7)];
        let r = HashRing::build(&members, |_| None, RingConfig::default());
        assert_eq!(r.owners(&BlockKey::new("p", 3)), vec![Address(7)]);
    }
}
