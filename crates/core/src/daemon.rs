//! The Colza staging daemon: assembly of margo + MoNA + SSG + provider,
//! with the connection-file bootstrap the paper's deployment uses.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};

use margo::MargoInstance;
use mona::{MonaConfig, MonaInstance};
use na::{Address, Fabric};
use ssg::{SsgConfig, SsgGroup};

use crate::provider::{ColzaProvider, ProviderComm};

/// Which communication layer this deployment's pipelines run over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// Elastic MoNA communicators (Colza proper).
    Mona,
    /// A static MPI world fixed at launch (the `Colza+MPI` baseline).
    MpiStatic(minimpi::Profile),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// SSG group name.
    pub group: String,
    /// Connection file: daemons append their address here and joiners read
    /// it to find a contact (the paper's §II-F scale-up path).
    pub connection_file: PathBuf,
    /// Pipeline communication layer.
    pub comm: CommMode,
    /// SSG protocol configuration.
    pub ssg: SsgConfig,
    /// Real-time interval between automatic SWIM ticks in the daemon loop.
    pub tick_interval: Duration,
    /// RPC liveness timeout for this daemon's outbound calls.
    pub rpc_timeout: Duration,
    /// Run a staging-store repair pass whenever SSG reports a death or
    /// departure (re-replicates under-replicated blocks without waiting
    /// for the next commit). Deterministic harnesses that pin all
    /// migration traffic to the 2PC boundary turn this off.
    pub auto_repair: bool,
    /// MoNA configuration for the daemon's collective plane — in
    /// particular `mona.fault.recv_deadline`, the backstop that lets a
    /// collective blocked on a silent dead peer revoke itself before
    /// SWIM declares the death.
    pub mona: MonaConfig,
    /// Codec configuration for the staging data plane (DESIGN.md §13),
    /// advertised to clients via `colza.get_codec_config`
    /// ([`crate::DistributedPipelineHandle::adopt_server_codec`]). The
    /// default stages everything raw.
    pub codec: crate::codec::CodecConfig,
    /// Multi-tenant QoS policy (DESIGN.md §14): staged-byte quotas,
    /// execute-time windows, priority classes and the fair-share execute
    /// gate. Disabled by default — accounting still runs, enforcement
    /// does not.
    pub tenancy: crate::protocol::TenancyConfig,
}

impl DaemonConfig {
    /// A default configuration over the given connection file.
    pub fn new(connection_file: impl Into<PathBuf>) -> Self {
        Self {
            group: "colza".to_string(),
            connection_file: connection_file.into(),
            comm: CommMode::Mona,
            ssg: SsgConfig::default(),
            tick_interval: Duration::from_millis(2),
            rpc_timeout: Duration::from_millis(500),
            auto_repair: true,
            mona: MonaConfig::default(),
            codec: crate::codec::CodecConfig::default(),
            tenancy: crate::protocol::TenancyConfig::default(),
        }
    }
}

enum Cmd {
    Tick,
    TickSync(Sender<()>),
    SetStaticWorld(Vec<Address>),
    Stop,
    Kill,
}

/// A handle to a running staging daemon.
pub struct ColzaDaemon {
    addr: Address,
    group: Arc<SsgGroup>,
    provider: Arc<ColzaProvider>,
    cmd: Sender<Cmd>,
    handle: Option<hpcsim::cluster::SimHandle<()>>,
}

impl ColzaDaemon {
    /// Spawns a daemon on `node`. If the connection file already lists
    /// live members the daemon joins them; otherwise it bootstraps a new
    /// group. The daemon charges its virtual start-up cost
    /// (`LaunchModel::daemon_init_ns`).
    pub fn spawn(
        cluster: &hpcsim::Cluster,
        fabric: &Fabric,
        node: usize,
        cfg: DaemonConfig,
    ) -> ColzaDaemon {
        let (cmd_tx, cmd_rx) = bounded::<Cmd>(256);
        let (ready_tx, ready_rx) = bounded(1);
        let fabric = fabric.clone();
        let handle = cluster.spawn("colza-daemon", node, move || {
            let ctx = hpcsim::current();
            // A daemon spawned mid-run starts at the current wall time,
            // then pays its start-up cost.
            ctx.clock().merge(ctx.cluster().max_clock_ns());
            ctx.advance(hpcsim::fabric::presets::launch().daemon_init_ns);

            let endpoint = Arc::new(fabric.open());
            let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
            margo.set_default_timeout(Some(cfg.rpc_timeout));
            let mona = MonaInstance::from_endpoint(Arc::clone(&endpoint), cfg.mona);
            let me = margo.address();

            // Bootstrap membership from the connection file. Each contact
            // gets a few attempts: under message loss (or a transient
            // partition) a single failed join must not make the daemon
            // bootstrap a split-brain second group.
            let contacts = read_connection_file(&cfg.connection_file);
            let mut group = None;
            'contacts: for contact in contacts {
                if contact == me {
                    continue;
                }
                for attempt in 0..3 {
                    match SsgGroup::join(Arc::clone(&margo), &cfg.group, contact, cfg.ssg) {
                        Ok(g) => {
                            group = Some(g);
                            break 'contacts;
                        }
                        Err(e) if e.is_retryable() && attempt < 2 => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            }
            let group =
                group.unwrap_or_else(|| SsgGroup::create(Arc::clone(&margo), &cfg.group, cfg.ssg));
            append_connection_file(&cfg.connection_file, me);

            let comm = match cfg.comm {
                CommMode::Mona => ProviderComm::Mona,
                CommMode::MpiStatic(_) => ProviderComm::MpiStatic(parking_lot::Mutex::new(None)),
            };
            let provider = ColzaProvider::register(
                Arc::clone(&margo),
                Arc::clone(&mona),
                Arc::clone(&group),
                comm,
            );
            provider.set_codec_config(cfg.codec.clone());
            provider.set_tenancy_config(cfg.tenancy.clone());
            ready_tx
                .send((me, Arc::clone(&group), Arc::clone(&provider)))
                .expect("daemon handshake");

            // Service loop: gossip on a timer, watch for admin leave,
            // repair the staging store after membership losses.
            loop {
                if cfg.auto_repair && provider.take_repair_request() {
                    provider.repair();
                }
                match cmd_rx.recv_timeout(cfg.tick_interval) {
                    Ok(Cmd::Tick) => group.tick(),
                    Ok(Cmd::TickSync(done)) => {
                        group.tick();
                        let _ = done.send(());
                    }
                    Ok(Cmd::SetStaticWorld(members)) => {
                        if let CommMode::MpiStatic(profile) = cfg.comm {
                            provider.set_static_world(minimpi::MpiComm::from_endpoint(
                                Arc::clone(&endpoint),
                                members,
                                profile,
                            ));
                        }
                    }
                    Ok(Cmd::Stop) => {
                        // Drain before leaving: staged blocks move to
                        // their owners under the view without us. Stop is
                        // a hard shutdown — the owner is joining on this
                        // thread — so after the bounded retries inside
                        // `drain_for_leave` we must exit either way; the
                        // counter records any copies abandoned.
                        if !drain_for_leave(&provider, &group, me) {
                            hpcsim::trace::counter_add("colza.store.drain.abandoned", 1);
                        }
                        group.leave();
                        remove_connection_entry(&cfg.connection_file, me);
                        margo.finalize();
                        return;
                    }
                    Ok(Cmd::Kill) => {
                        // Crash simulation: vanish without a goodbye.
                        margo.finalize();
                        return;
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        // Background gossip must not outrun the virtual
                        // time of foreground staging work.
                        group.tick_quiet();
                        if provider.leave_requested() {
                            if drain_for_leave(&provider, &group, me) {
                                group.leave();
                                remove_connection_entry(&cfg.connection_file, me);
                                margo.finalize();
                                return;
                            }
                            // The store would not empty: leaving now would
                            // take the kept copies down with us. Call the
                            // departure off — admissions resume, and a
                            // later admin `leave` retries from scratch.
                            provider.cancel_departure();
                            hpcsim::trace::counter_add("colza.store.drain.cancelled", 1);
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        margo.finalize();
                        return;
                    }
                }
            }
        });
        let (addr, group, provider) = ready_rx.recv().expect("daemon failed to start");
        ColzaDaemon {
            addr,
            group,
            provider,
            cmd: cmd_tx,
            handle: Some(handle),
        }
    }

    /// This daemon's address.
    pub fn address(&self) -> Address {
        self.addr
    }

    /// The daemon's current membership view.
    pub fn view(&self) -> Vec<Address> {
        self.group.view()
    }

    /// The daemon's view epoch.
    pub fn view_epoch(&self) -> u64 {
        self.group.view_epoch()
    }

    /// The provider (test/diagnostic access).
    pub fn provider(&self) -> &Arc<ColzaProvider> {
        &self.provider
    }

    /// Requests one explicit SWIM tick (harness-driven experiments).
    pub fn tick(&self) {
        let _ = self.cmd.send(Cmd::Tick);
    }

    /// Runs one SWIM tick and waits for it to complete. Deterministic
    /// harnesses serialize gossip with this: ticking daemons one at a
    /// time makes the whole protocol-state evolution (and therefore the
    /// fault-injection stream) a pure function of the seed.
    pub fn tick_sync(&self) {
        let (done_tx, done_rx) = bounded(1);
        if self.cmd.send(Cmd::TickSync(done_tx)).is_ok() {
            let _ = done_rx.recv();
        }
    }

    /// Installs the static MPI world (MpiStatic deployments only).
    pub fn set_static_world(&self, members: Vec<Address>) {
        let _ = self.cmd.send(Cmd::SetStaticWorld(members));
    }

    /// Graceful shutdown: leave the group, then stop.
    pub fn stop(mut self) {
        let _ = self.cmd.send(Cmd::Stop);
        if let Some(h) = self.handle.take() {
            h.join();
        }
    }

    /// Abrupt shutdown (simulated crash).
    pub fn kill(mut self) {
        let _ = self.cmd.send(Cmd::Kill);
        if let Some(h) = self.handle.take() {
            h.join();
        }
    }

    /// Waits for the daemon to exit on its own (e.g. after an admin
    /// `request_leave`).
    pub fn wait(mut self) {
        if let Some(h) = self.handle.take() {
            h.join();
        }
    }
}

/// Launches a staging area of `n` daemons (the first bootstraps, the rest
/// join through the connection file), placed `per_node` per node starting
/// at `first_node`.
pub fn launch_group(
    cluster: &hpcsim::Cluster,
    fabric: &Fabric,
    n: usize,
    per_node: usize,
    first_node: usize,
    cfg: &DaemonConfig,
) -> Vec<ColzaDaemon> {
    let daemons: Vec<ColzaDaemon> = (0..n)
        .map(|i| {
            ColzaDaemon::spawn(
                cluster,
                fabric,
                first_node + i / per_node,
                cfg.clone(),
            )
        })
        .collect();
    // Pump gossip until every daemon sees the full group.
    settle_views(&daemons, n);
    if let CommMode::MpiStatic(_) = cfg.comm {
        let members: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        for d in &daemons {
            d.set_static_world(members.clone());
        }
    }
    daemons
}

/// Pumps ticks until all daemons agree on a view of `expect` members (or
/// a generous retry budget runs out).
pub fn settle_views(daemons: &[ColzaDaemon], expect: usize) {
    for _ in 0..2000 {
        if daemons
            .iter()
            .all(|d| d.view().len() == expect && d.view_epoch() == daemons[0].view_epoch())
        {
            return;
        }
        for d in daemons {
            d.tick();
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    panic!(
        "views failed to settle at {expect}: {:?}",
        daemons.iter().map(|d| d.view().len()).collect::<Vec<_>>()
    );
}

/// Drains the provider's store ahead of a departure, looping until it
/// empties: `drain()` deliberately keeps every block whose push failed,
/// so a single pass under message loss can leave copies behind that
/// would die with the leaver. Bounded retries with backoff ride out
/// transient loss; each pass re-reads the SSG view, so a target that
/// died mid-drain is replaced by its successor on the next pass.
///
/// Returns whether every copy is safe: the store emptied, or no
/// survivor exists to push to (the whole group is going away — there is
/// nowhere for the data to live).
fn drain_for_leave(provider: &ColzaProvider, group: &SsgGroup, me: Address) -> bool {
    const ATTEMPTS: u32 = 8;
    for attempt in 0..ATTEMPTS {
        provider.drain();
        if provider.store().is_empty() {
            return true;
        }
        if !group.view().iter().any(|&a| a != me) {
            return true;
        }
        if attempt + 1 < ATTEMPTS {
            hpcsim::trace::counter_add("colza.store.drain.retries", 1);
            std::thread::sleep(Duration::from_millis(5u64 << attempt.min(5)));
        }
    }
    provider.store().is_empty()
}

fn read_connection_file(path: &PathBuf) -> Vec<Address> {
    std::fs::read_to_string(path)
        .map(|s| s.lines().filter_map(|l| l.trim().parse().ok()).collect())
        .unwrap_or_default()
}

fn append_connection_file(path: &PathBuf, addr: Address) {
    use std::io::Write;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{addr}");
    }
}

fn remove_connection_entry(path: &PathBuf, addr: Address) {
    if let Ok(s) = std::fs::read_to_string(path) {
        let kept: Vec<&str> = s
            .lines()
            .filter(|l| l.trim() != addr.to_string())
            .collect();
        let _ = std::fs::write(path, kept.join("\n") + "\n");
    }
}
