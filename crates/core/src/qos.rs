//! Fair-share execute scheduling and QoS enforcement (DESIGN.md §14).
//!
//! Two pieces, kept separable so the scheduling decisions are pure and
//! property-testable:
//!
//! 1. [`DrrScheduler`] — a deficit-round-robin scheduler over tenants.
//!    Entirely synchronous data structure: given the same sequence of
//!    `arrive`/`dispatch` calls it produces the same dispatch order, so
//!    same-seed simulation traces stay byte-identical. Weights come from
//!    [`PriorityClass`](crate::protocol::PriorityClass); a throttled
//!    tenant (over its execute-time window quota) is scheduled at the
//!    minimum weight but *never* starved — classic DRR guarantees every
//!    non-empty lane is eventually served.
//! 2. [`ExecGate`] — the provider-side admission gate wrapping the
//!    `colza.execute` handler. When tenancy enforcement is off it is a
//!    pass-through with zero bookkeeping. When on, it limits concurrent
//!    executes to `exec_slots`, orders admission by the scheduler, and
//!    models queueing delay in *virtual* time: a request dispatched while
//!    the pool was busy has its clock merged forward to the moment the
//!    pool freed up, so per-tenant latencies in traces reflect the
//!    contention the scheduler resolved.
//!
//! ## The distributed-gate hazard
//!
//! `execute` is a *collective*: one client broadcast, one handler per
//! server, all rendezvousing in MoNA collectives. If two multi-server
//! iterations from different tenants were gated concurrently with
//! `exec_slots = 1` and the per-server DRR orders diverged (they cannot
//! diverge from the same call sequence, but arrival *order* can differ
//! per server), server A could admit tenant X while server B admits
//! tenant Y — each waiting inside a collective for the other: deadlock.
//! Deployments running concurrent multi-server collective pipelines must
//! size `exec_slots` to the number of concurrently executing tenants;
//! the paper-shaped workloads here (one execute in flight per client,
//! sequential iterations) are safe at the default of 1.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use parking_lot::{Condvar, Mutex};

use crate::protocol::{TenancyConfig, TenantConfig, TenantId};

/// One tenant's scheduling lane.
#[derive(Debug, Default, Clone)]
struct Lane {
    /// Current DRR weight (class weight, or 1 while throttled).
    weight: u64,
    /// Accumulated service credit in virtual ns.
    deficit: u64,
    /// Pending requests: `(ticket, cost)` in arrival order.
    queue: VecDeque<(u64, u64)>,
    /// Cumulative cost dispatched from this lane (fairness accounting).
    served: u64,
}

/// Deterministic deficit-round-robin scheduler over tenants.
///
/// Lanes live in a `BTreeMap`, so the cyclic visit order is the sorted
/// tenant order — a pure function of the admitted tenant set, never of
/// insertion timing. Each visit to a non-empty lane tops its deficit up
/// by `quantum × weight`; the lane's head dispatches once the deficit
/// covers its cost, and the leftover credit is capped at one quantum
/// when the lane empties (so an idle tenant cannot bank unbounded
/// credit).
#[derive(Debug)]
pub struct DrrScheduler {
    quantum: u64,
    lanes: BTreeMap<TenantId, Lane>,
    /// The lane currently being visited; the next dispatch resumes here.
    cursor: Option<TenantId>,
    /// Whether the cursor lane already received this visit's top-up. A
    /// lane keeps serving from its deficit while it can (that is what
    /// makes the quantum × weight credit a service *share*); the flag
    /// clears when the scan leaves the lane, so the next visit tops up
    /// again.
    topped: bool,
    pending: usize,
}

impl DrrScheduler {
    /// A scheduler with the given quantum (virtual ns of service per
    /// visit per unit weight; clamped to at least 1).
    pub fn new(quantum_ns: u64) -> Self {
        DrrScheduler {
            quantum: quantum_ns.max(1),
            lanes: BTreeMap::new(),
            cursor: None,
            topped: false,
            pending: 0,
        }
    }

    /// Enqueues one request. `weight` is the tenant's *current* weight
    /// (its class weight, or 1 while throttled) and re-arms the lane —
    /// throttling a tenant affects its next arrival, not requests
    /// already queued behind an earlier weight.
    pub fn arrive(&mut self, tenant: &TenantId, weight: u64, ticket: u64, cost: u64) {
        let lane = self.lanes.entry(tenant.clone()).or_default();
        lane.weight = weight.max(1);
        lane.queue.push_back((ticket, cost));
        self.pending += 1;
    }

    /// Number of queued requests.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Cumulative dispatched cost per tenant, in sorted tenant order.
    pub fn served(&self) -> Vec<(TenantId, u64)> {
        self.lanes
            .iter()
            .map(|(t, l)| (t.clone(), l.served))
            .collect()
    }

    /// Current deficit of one tenant's lane (test/diagnostic access).
    pub fn deficit(&self, tenant: &TenantId) -> u64 {
        self.lanes.get(tenant).map_or(0, |l| l.deficit)
    }

    /// Picks the next request to run: `(tenant, ticket)`. Returns `None`
    /// only when nothing is queued.
    ///
    /// Classic DRR, unrolled to one pop per call: the scan resumes at
    /// the cursor lane, which serves from its standing deficit for as
    /// long as it can afford its head (so a `quantum × weight` credit
    /// buys `weight`× the service of the base quantum); when it cannot
    /// — or empties — the scan moves on in cyclic sorted order, topping
    /// each newly visited non-empty lane up exactly once. An
    /// unaffordable head keeps its lane's accumulated deficit, which
    /// grows every cycle, so no lane waits forever (after at most
    /// `⌈max_cost / quantum⌉` cycles its head is affordable).
    pub fn dispatch(&mut self) -> Option<(TenantId, u64)> {
        if self.pending == 0 {
            return None;
        }
        loop {
            // Non-empty lanes in cyclic order. While the cursor lane's
            // visit is still open (`topped`), the scan resumes *at* it so
            // it can keep spending its credit; once its visit has closed,
            // the scan resumes strictly *after* it — restarting at a lane
            // whose visit just ended would hand it a second consecutive
            // top-up at every pass boundary, collapsing weighted sharing
            // toward round-robin whenever costs exceed the quantum.
            let order: Vec<TenantId> = {
                let inclusive = self.topped;
                let from: Vec<_> = self
                    .lanes
                    .iter()
                    .filter(|(t, l)| {
                        !l.queue.is_empty()
                            && self
                                .cursor
                                .as_ref()
                                .is_none_or(|c| if inclusive { *t >= c } else { *t > c })
                    })
                    .map(|(t, _)| t.clone())
                    .collect();
                let before: Vec<_> = self
                    .lanes
                    .iter()
                    .filter(|(t, l)| {
                        !l.queue.is_empty()
                            && self
                                .cursor
                                .as_ref()
                                .is_some_and(|c| if inclusive { *t < c } else { *t <= c })
                    })
                    .map(|(t, _)| t.clone())
                    .collect();
                from.into_iter().chain(before).collect()
            };
            for t in order {
                let resumed = self.cursor.as_ref() == Some(&t) && self.topped;
                let quantum = self.quantum;
                let lane = self.lanes.get_mut(&t).expect("lane exists");
                if !resumed {
                    lane.deficit = lane.deficit.saturating_add(quantum * lane.weight);
                }
                self.cursor = Some(t.clone());
                self.topped = true;
                let &(ticket, cost) = lane.queue.front().expect("non-empty");
                if lane.deficit >= cost {
                    lane.deficit -= cost;
                    lane.served = lane.served.saturating_add(cost);
                    lane.queue.pop_front();
                    self.pending -= 1;
                    if lane.queue.is_empty() {
                        // An emptied lane may keep at most one quantum of
                        // credit: enough not to penalize a tenant that
                        // drained exactly on a boundary, not enough to
                        // bank service while idle. Its visit also ends.
                        lane.deficit = lane.deficit.min(quantum * lane.weight);
                        self.topped = false;
                    }
                    return Some((t, ticket));
                }
                // Head unaffordable: the visit ends, the deficit stands.
                self.topped = false;
            }
        }
    }
}

/// Per-gate state behind the mutex.
struct GateInner {
    cfg: TenancyConfig,
    sched: DrrScheduler,
    /// Executes currently running.
    inflight: usize,
    /// Tickets the scheduler has dispatched whose threads have not yet
    /// woken to claim them; they hold a slot.
    granted: BTreeSet<u64>,
    next_ticket: u64,
    /// The virtual instant the serialized pool frees up — what a queued
    /// request's clock merges to, modelling its wait.
    busy_until: u64,
    /// Actual execute service per tenant in the current quota window
    /// (since the tenant's last deactivate).
    window_served: BTreeMap<TenantId, u64>,
}

/// The provider's execute admission gate. See the module docs.
pub struct ExecGate {
    inner: Mutex<GateInner>,
    cv: Condvar,
}

impl Default for ExecGate {
    fn default() -> Self {
        Self::new(TenancyConfig::default())
    }
}

impl ExecGate {
    /// A gate under the given policy.
    pub fn new(cfg: TenancyConfig) -> Self {
        let quantum = cfg.quantum_ns;
        ExecGate {
            inner: Mutex::new(GateInner {
                cfg,
                sched: DrrScheduler::new(quantum),
                inflight: 0,
                granted: BTreeSet::new(),
                next_ticket: 0,
                busy_until: 0,
                window_served: BTreeMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Swaps in a new policy (the `colza.admin.set_tenancy` path).
    pub fn set_config(&self, cfg: TenancyConfig) {
        let mut inner = self.inner.lock();
        inner.sched = DrrScheduler::new(cfg.quantum_ns);
        inner.cfg = cfg;
        self.cv.notify_all();
    }

    /// The current policy.
    pub fn config(&self) -> TenancyConfig {
        self.inner.lock().cfg.clone()
    }

    /// The limits applying to one tenant under the current policy.
    pub fn config_for(&self, tenant: &TenantId) -> TenantConfig {
        self.inner.lock().cfg.config_for(tenant)
    }

    /// Whether `tenant` is currently throttled (over its execute window).
    pub fn is_throttled(&self, tenant: &TenantId) -> bool {
        let inner = self.inner.lock();
        inner.throttled(tenant)
    }

    /// Virtual ns of execute service `tenant` consumed in its current
    /// quota window.
    pub fn window_served(&self, tenant: &TenantId) -> u64 {
        self.inner
            .lock()
            .window_served
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Resets `tenant`'s execute-quota window — called at `deactivate`,
    /// so the budget is per iteration window, and a throttled tenant
    /// recovers its class weight on its next iteration.
    pub fn window_reset(&self, tenant: &TenantId) {
        self.inner.lock().window_served.remove(tenant);
    }

    /// Runs `f` under the gate on `tenant`'s behalf. `cost_hint` is the
    /// request's expected service in virtual ns (the scheduler's DRR
    /// cost; also the floor charged against the tenant's window when the
    /// measured virtual service is smaller — e.g. under
    /// `compute_scale = 0` simulations where handlers are free).
    pub fn run<T>(
        &self,
        tenant: &TenantId,
        cost_hint: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        {
            let inner = self.inner.lock();
            if !inner.cfg.enabled {
                drop(inner);
                return f();
            }
        }
        let ctx = hpcsim::process::current();
        let queued_at = ctx.now();
        let cost = cost_hint.max(1);
        // Enqueue and wait for the scheduler to pick our ticket.
        let ticket = {
            let mut inner = self.inner.lock();
            let ticket = inner.next_ticket;
            inner.next_ticket += 1;
            let weight = inner.effective_weight(tenant);
            inner.sched.arrive(tenant, weight, ticket, cost);
            hpcsim::trace::counter_add("colza.qos.exec.queued", 1);
            loop {
                inner.pump();
                if inner.granted.remove(&ticket) {
                    break;
                }
                self.cv.wait(&mut inner);
            }
            // Claimed: the grant's slot becomes our inflight slot, and
            // our clock jumps to when the pool actually freed up — the
            // virtual queueing delay the scheduler imposed on us.
            inner.inflight += 1;
            let start = queued_at.max(inner.busy_until);
            ctx.clock().merge(start);
            ticket
        };
        let _ = ticket;
        let t0 = ctx.now();
        let out = f();
        let t1 = ctx.now();
        let mut inner = self.inner.lock();
        // Charge the measured virtual service, floored at the hint, and
        // extend the pool's busy horizon past our service.
        let served = (t1.saturating_sub(t0)).max(cost);
        inner.busy_until = inner.busy_until.max(t0).saturating_add(served);
        let total = inner
            .window_served
            .entry(tenant.clone())
            .and_modify(|s| *s = s.saturating_add(served))
            .or_insert(served);
        let total = *total;
        let quota = inner.cfg.config_for(tenant).execute_quota_ns;
        if total > quota {
            hpcsim::trace::counter_add("colza.qos.exec.throttled", 1);
        }
        hpcsim::trace::counter_add("colza.qos.exec.served_ns", served);
        inner.inflight -= 1;
        inner.pump();
        drop(inner);
        self.cv.notify_all();
        out
    }
}

impl GateInner {
    fn throttled(&self, tenant: &TenantId) -> bool {
        let quota = self.cfg.config_for(tenant).execute_quota_ns;
        self.window_served.get(tenant).copied().unwrap_or(0) > quota
    }

    /// A tenant over its execute window runs at the minimum weight until
    /// the window resets; otherwise at its class weight.
    fn effective_weight(&self, tenant: &TenantId) -> u64 {
        if self.throttled(tenant) {
            1
        } else {
            self.cfg.config_for(tenant).priority.weight()
        }
    }

    /// Dispatches queued tickets into free slots.
    fn pump(&mut self) {
        while self.inflight + self.granted.len() < self.cfg.exec_slots.max(1) {
            match self.sched.dispatch() {
                Some((_tenant, ticket)) => {
                    self.granted.insert(ticket);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str) -> TenantId {
        TenantId::new(name)
    }

    #[test]
    fn drr_respects_weights_under_contention() {
        let mut s = DrrScheduler::new(100);
        // Equal-cost work, weights 4 vs 1: gold should get ~4x service.
        for i in 0..40 {
            s.arrive(&t("gold"), 4, i, 100);
            s.arrive(&t("bronze"), 1, 100 + i, 100);
        }
        let mut gold = 0;
        let mut bronze = 0;
        for _ in 0..25 {
            match s.dispatch() {
                Some((id, _)) if id == t("gold") => gold += 1,
                Some(_) => bronze += 1,
                None => break,
            }
        }
        assert!(
            gold >= 3 * bronze,
            "gold {gold} vs bronze {bronze}: weight 4 lane must dominate"
        );
        assert!(bronze > 0, "bronze must not starve");
    }

    #[test]
    fn drr_dispatch_order_is_deterministic() {
        let run = || {
            let mut s = DrrScheduler::new(64);
            let mut order = Vec::new();
            for i in 0..10 {
                s.arrive(&t("a"), 2, i, 50 + i);
                s.arrive(&t("b"), 1, 100 + i, 80);
            }
            while let Some(pick) = s.dispatch() {
                order.push(pick);
            }
            order
        };
        assert_eq!(run(), run(), "same calls, same order");
    }

    #[test]
    fn drr_serves_fifo_within_a_lane() {
        let mut s = DrrScheduler::new(1000);
        s.arrive(&t("a"), 1, 7, 10);
        s.arrive(&t("a"), 1, 8, 10);
        s.arrive(&t("a"), 1, 9, 10);
        assert_eq!(s.dispatch(), Some((t("a"), 7)));
        assert_eq!(s.dispatch(), Some((t("a"), 8)));
        assert_eq!(s.dispatch(), Some((t("a"), 9)));
        assert_eq!(s.dispatch(), None);
    }

    #[test]
    fn gate_disabled_is_a_pass_through() {
        let gate = ExecGate::new(TenancyConfig::default());
        assert_eq!(gate.run(&TenantId::default(), 1_000, || 42), 42);
    }

    #[test]
    fn throttle_state_follows_window_and_reset() {
        let mut cfg = TenancyConfig::enforcing();
        cfg = cfg.with_tenant(
            "noisy",
            TenantConfig {
                execute_quota_ns: 1_000,
                ..TenantConfig::default()
            },
        );
        let gate = std::sync::Arc::new(ExecGate::new(cfg));
        let noisy = t("noisy");
        assert!(!gate.is_throttled(&noisy));
        let cluster = hpcsim::Cluster::default();
        cluster
            .spawn("gate", 0, {
                let gate = std::sync::Arc::clone(&gate);
                let noisy = noisy.clone();
                move || {
                    // Two executes of 600 hinted ns: the second crosses
                    // the 1000 ns window quota.
                    gate.run(&noisy, 600, || ());
                    gate.run(&noisy, 600, || ());
                }
            })
            .join();
        assert!(gate.is_throttled(&noisy), "window 1200 > quota 1000");
        assert_eq!(gate.window_served(&noisy), 1200);
        gate.window_reset(&noisy);
        assert!(!gate.is_throttled(&noisy), "deactivate resets the window");
    }
}
