//! The Colza provider: server-side RPC handlers and pipeline management.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use catalyst::{MonaVtkComm, MpiVtkComm};
use margo::{HandlerPool, MargoInstance};
use mona::MonaInstance;
use na::Address;
use ssg::SsgGroup;
use vizkit::Controller;

use crate::backend::{self, Backend, BackendCtx, StagedBlock};
use crate::protocol::*;

/// Which communication layer pipelines execute over.
pub enum ProviderComm {
    /// Elastic: a fresh MoNA communicator per iteration, built from the
    /// frozen member list.
    Mona,
    /// The `Colza+MPI` baseline: a static MPI communicator fixed at
    /// launch. No elasticity — exactly the paper's comparison mode.
    MpiStatic(Mutex<Option<minimpi::MpiComm>>),
}

struct PipelineEntry {
    backend: Arc<dyn Backend>,
}

/// Per-server provider state, registered on a margo instance.
pub struct ColzaProvider {
    margo: Arc<MargoInstance>,
    mona: Arc<MonaInstance>,
    group: Arc<SsgGroup>,
    comm: ProviderComm,
    pipelines: RwLock<HashMap<String, PipelineEntry>>,
    /// Member lists frozen by `commit_activate`, per (pipeline, iteration).
    frozen: Mutex<HashMap<(String, u64), Vec<Address>>>,
    /// Set by the admin `leave` RPC; the daemon loop acts on it.
    pub(crate) leave_requested: AtomicBool,
}

impl ColzaProvider {
    /// Creates the provider and registers all RPC handlers.
    pub fn register(
        margo: Arc<MargoInstance>,
        mona: Arc<MonaInstance>,
        group: Arc<SsgGroup>,
        comm: ProviderComm,
    ) -> Arc<Self> {
        let provider = Arc::new(Self {
            margo: Arc::clone(&margo),
            mona,
            group,
            comm,
            pipelines: RwLock::new(HashMap::new()),
            frozen: Mutex::new(HashMap::new()),
            leave_requested: AtomicBool::new(false),
        });

        // --- control-plane handlers -------------------------------------
        {
            let p = Arc::clone(&provider);
            margo.register("colza.get_view", move |_: (), _ctx| Ok(p.group.view()));
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.prepare_activate",
                move |args: PrepareActivateArgs, _ctx| {
                    p.pipeline(&args.pipeline)?;
                    // Voting freezes membership until deactivate/abort.
                    p.group.freeze();
                    Ok(PrepareActivateReply {
                        epoch: p.group.view_epoch(),
                        view: p.group.view(),
                    })
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.commit_activate",
                move |args: CommitActivateArgs, _ctx| {
                    let entry = p.pipeline(&args.pipeline)?;
                    entry.activate(args.iteration)?;
                    p.frozen
                        .lock()
                        .insert((args.pipeline, args.iteration), args.members);
                    Ok(())
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.abort_activate",
                move |_args: AbortActivateArgs, _ctx| {
                    p.group.unfreeze();
                    Ok(())
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.stage", move |args: StageArgs, ctx| {
                let entry = p.pipeline(&args.pipeline)?;
                let mut sp = hpcsim::trace::span("colza", "colza.srv.stage");
                if sp.active() {
                    sp.arg("block", args.meta.block_id);
                    sp.arg("bytes", args.meta.size);
                }
                // Pull the payload from the simulation's memory.
                let data = ctx
                    .endpoint
                    .rdma_get(args.bulk, 0, args.meta.size)
                    .map_err(|e| e.to_string())?;
                entry.stage(StagedBlock {
                    meta: args.meta,
                    data,
                })
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register_in_pool("colza.execute", HandlerPool::Heavy, move |args: ExecuteArgs, _ctx| {
                let entry = p.pipeline(&args.pipeline)?;
                let members = p
                    .frozen
                    .lock()
                    .get(&(args.pipeline.clone(), args.iteration))
                    .cloned()
                    .ok_or_else(|| "execute before activate".to_string())?;
                let ctrl = p.controller(&members, args.iteration)?;
                let mut sp = hpcsim::trace::span("colza", "colza.srv.execute");
                if sp.active() {
                    sp.arg("iteration", args.iteration);
                    sp.arg("servers", members.len());
                }
                entry.execute(args.iteration, &ctrl)
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.deactivate", move |args: DeactivateArgs, _ctx| {
                let entry = p.pipeline(&args.pipeline)?;
                entry.deactivate(args.iteration)?;
                p.frozen
                    .lock()
                    .remove(&(args.pipeline.clone(), args.iteration));
                // Processes may join/leave again until the next iteration.
                p.group.unfreeze();
                Ok(())
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.fetch_result", move |args: FetchResultArgs, _ctx| {
                Ok(p.pipeline(&args.pipeline)?.take_result())
            });
        }

        // --- admin handlers (a separate library in the paper) ------------
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.admin.create_pipeline",
                move |args: CreatePipelineArgs, _ctx| {
                    let ctx = BackendCtx {
                        self_addr: p.margo.address(),
                        config: args.config,
                    };
                    let backend =
                        backend::instantiate(&args.library, &ctx).map_err(|e| e.to_string())?;
                    p.pipelines
                        .write()
                        .insert(args.name, PipelineEntry { backend });
                    Ok(())
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.admin.destroy_pipeline",
                move |args: DestroyPipelineArgs, _ctx| {
                    match p.pipelines.write().remove(&args.name) {
                        Some(_) => Ok(()),
                        None => Err(format!("no pipeline named {:?}", args.name)),
                    }
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.admin.leave", move |_: (), _ctx| {
                p.leave_requested.store(true, Ordering::Release);
                Ok(())
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.admin.list_pipelines", move |_: (), _ctx| {
                let mut names: Vec<String> = p.pipelines.read().keys().cloned().collect();
                names.sort();
                Ok(names)
            });
        }
        {
            // Scrapes this server's trace counters (DESIGN.md §9). Always
            // registered; with tracing disabled it reports empty counters.
            margo.register("colza.admin.metrics", move |_: (), _ctx| {
                let ctx = hpcsim::process::current();
                let tracer = ctx.cluster().tracer();
                let pid = ctx.pid().0;
                Ok(MetricsReport {
                    pid,
                    enabled: tracer.is_enabled(),
                    counters: tracer.counters_for(pid),
                })
            });
        }

        provider
    }

    /// Installs the static MPI world (Colza+MPI baseline deployments).
    pub fn set_static_world(&self, comm: minimpi::MpiComm) {
        match &self.comm {
            ProviderComm::MpiStatic(slot) => *slot.lock() = Some(comm),
            ProviderComm::Mona => panic!("set_static_world on a MoNA-mode provider"),
        }
    }

    /// Whether an admin asked this server to leave.
    pub fn leave_requested(&self) -> bool {
        self.leave_requested.load(Ordering::Acquire)
    }

    /// The membership group.
    pub fn group(&self) -> &Arc<SsgGroup> {
        &self.group
    }

    fn pipeline(&self, name: &str) -> std::result::Result<Arc<dyn Backend>, String> {
        self.pipelines
            .read()
            .get(name)
            .map(|e| Arc::clone(&e.backend))
            .ok_or_else(|| format!("no pipeline named {name:?}"))
    }

    /// Builds the iteration's controller from the frozen member list.
    fn controller(
        &self,
        members: &[Address],
        iteration: u64,
    ) -> std::result::Result<Controller, String> {
        match &self.comm {
            ProviderComm::Mona => {
                let comm = self
                    .mona
                    .comm_create_with_context(members.to_vec(), iteration)
                    .map_err(|e| e.to_string())?;
                Ok(Controller::new(MonaVtkComm::new(comm)))
            }
            ProviderComm::MpiStatic(slot) => {
                let comm = slot
                    .lock()
                    .clone()
                    .ok_or("static MPI world not initialized")?;
                Ok(Controller::new(MpiVtkComm::new(comm)))
            }
        }
    }
}
